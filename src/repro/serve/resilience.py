"""Client-side resilience: deadlines, circuit breakers, safe retries.

PR 7 gave the serving stack *typed* failure — :class:`~repro.exceptions.Shed`
subclasses guarantee a refused request never entered a mechanism stream —
but no story for what a caller does next. In a PMW service a naive retry
is worse than wasteful: privacy budget is non-refundable and journaled
write-ahead, so re-submitting a request whose reply was lost mid-flight
**double-spends** the session's budget. This module closes the loop:

:class:`Deadline`
    A wall-clock-free deadline (monotonic clock) that travels from the
    client through the gateway queue, the shard RPC boundary (as
    *remaining seconds* — monotonic clocks do not cross processes), and
    into engine batching. Admission control sheds requests whose
    deadline cannot be met **at enqueue** (:class:`DeadlineUnmeetable`)
    using lane queue-wait quantiles, instead of letting them time out
    after queueing.

:class:`CircuitBreaker`
    The classic closed / open / half-open state machine, used in two
    places: client-side per shard inside :class:`ResilientClient`, and
    supervisor-side in :class:`~repro.serve.shard.ShardedService`, which
    persists breaker transitions to each shard's ``health.json`` for the
    ``repro-experiments shards`` operator verb.

:class:`ResilientClient`
    Retries :class:`~repro.exceptions.ShardUnavailable` /
    :class:`~repro.exceptions.Overloaded` with capped exponential
    backoff and **full jitter**, fails fast while a shard's breaker is
    open, and makes retries **exactly-once**: every logical request is
    minted one idempotency key, journaled through the budget ledger with
    its answer, so a retry that lands after a mid-reply SIGKILL replays
    the recorded answer bitwise instead of re-spending budget.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
import uuid

from repro.exceptions import (
    DeadlineUnmeetable,
    Overloaded,
    ShardUnavailable,
    ValidationError,
)

__all__ = [
    "Deadline",
    "CircuitBreaker",
    "ResilientClient",
    "full_jitter_delay",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]


class Deadline:
    """A point in (monotonic) time after which an answer is worthless.

    Built from a relative budget (:meth:`after`) and queried for
    :meth:`remaining` seconds; ``remaining()`` goes negative once the
    deadline has passed. Deadlines cross the shard RPC boundary as
    remaining seconds (:meth:`to_wire` / :meth:`from_wire`) because
    monotonic clocks are per-process.

    The clock is injectable for tests (any ``() -> float``); the default
    is :func:`time.monotonic`.
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(self, expires_at: float, *, clock=time.monotonic) -> None:
        self._expires_at = float(expires_at)
        self._clock = clock

    @classmethod
    def after(cls, seconds: float, *, clock=time.monotonic) -> "Deadline":
        """The deadline ``seconds`` from now."""
        if not seconds == seconds or seconds == float("inf"):  # NaN / inf
            raise ValidationError(f"deadline budget must be finite, "
                                  f"got {seconds!r}")
        return cls(clock() + float(seconds), clock=clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return self.remaining() <= 0.0

    def to_wire(self) -> float:
        """Remaining seconds, floored at 0 — the cross-process encoding."""
        return max(0.0, self.remaining())

    @classmethod
    def from_wire(cls, seconds, *, clock=time.monotonic):
        """Rebuild a deadline from :meth:`to_wire` output (``None`` maps
        to ``None`` so RPC payloads can omit the field)."""
        if seconds is None:
            return None
        return cls(clock() + max(0.0, float(seconds)), clock=clock)

    @staticmethod
    def wire_or_none(deadline: "Deadline | None") -> float | None:
        """``deadline.to_wire()`` tolerating ``None`` — the shard frame
        protocol's header encoding (a request frame carries remaining
        seconds in its fixed header with ``FLAG_DEADLINE`` set, or no
        deadline at all; see :mod:`repro.serve.shard.frames`)."""
        return None if deadline is None else deadline.to_wire()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(remaining={self.remaining():.3f}s)"


#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed / open / half-open breaker over consecutive failures.

    - **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures trip it open.
    - **open** — calls are refused without touching the target. After
      ``reset_after`` seconds (or an explicit :meth:`note_restore`, e.g.
      when the supervisor reports the shard restored) the breaker moves
      to half-open.
    - **half-open** — exactly one probe call is allowed through at a
      time; success closes the breaker, failure re-opens it.

    Thread-safe; the clock is injectable for tests.
    """

    def __init__(self, *, failure_threshold: int = 3,
                 reset_after: float = 1.0, clock=time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValidationError("failure_threshold must be >= 1, "
                                  f"got {failure_threshold}")
        if reset_after < 0:
            raise ValidationError(f"reset_after must be >= 0, "
                                  f"got {reset_after}")
        self.failure_threshold = int(failure_threshold)
        self.reset_after = float(reset_after)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        """Current state, after applying any due open→half-open reset."""
        with self._lock:
            self._maybe_reset_locked()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In half-open state this *claims* the single probe slot — a
        caller that gets ``True`` must follow up with
        :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_reset_locked()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        """A call succeeded: close the breaker, clear the failure run."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        """A call failed: count it; trip open at the threshold, and
        re-open immediately from half-open (the probe failed)."""
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN or \
                    self._failures >= self.failure_threshold:
                self._trip_locked()

    def trip(self) -> None:
        """Force the breaker open (e.g. the supervisor saw the shard die
        — no need to burn ``failure_threshold`` doomed calls first)."""
        with self._lock:
            self._failures = max(self._failures, self.failure_threshold)
            self._trip_locked()

    def note_restore(self) -> None:
        """The target was restored: move open → half-open so the next
        call probes it instead of waiting out ``reset_after``."""
        with self._lock:
            if self._state == OPEN:
                self._state = HALF_OPEN
                self._probing = False

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probing = False

    def _maybe_reset_locked(self) -> None:
        if self._state == OPEN and self._opened_at is not None and \
                self._clock() - self._opened_at >= self.reset_after:
            self._state = HALF_OPEN
            self._probing = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self.consecutive_failures})")


def full_jitter_delay(attempt: int, *, base: float, cap: float,
                      rng: random.Random) -> float:
    """Capped exponential backoff with full jitter.

    ``uniform(0, min(cap, base * 2**attempt))`` — the "full jitter"
    policy: the whole interval is randomized, which decorrelates a
    thundering herd of retrying clients far better than jittering only a
    fraction of the delay.
    """
    return rng.random() * min(cap, base * (2.0 ** attempt))


class ResilientClient:
    """A retrying, breaker-guarded, exactly-once front end for a service.

    ``target`` is anything exposing ``submit(session_id, query, **kw)``
    that accepts ``idempotency_key=`` and ``deadline=`` keywords — a
    :class:`~repro.serve.service.PMWService`, a
    :class:`~repro.serve.shard.ShardedService`, or a
    :class:`~repro.serve.gateway.ServiceGateway` over either.

    Retry policy (per logical request):

    - retried on :class:`~repro.exceptions.ShardUnavailable` and
      :class:`~repro.exceptions.Overloaded` — the two sheds whose cause
      is transient (a dying/restoring shard, a momentary queue spike);
    - **not** retried on :class:`~repro.exceptions.DeadlineUnmeetable`
      or :class:`~repro.exceptions.RequestTimeout` — the caller's
      deadline is the binding constraint there, and the deadline loop
      below already bounds total retry time;
    - capped exponential backoff with full jitter between attempts
      (:func:`full_jitter_delay`), seeded via ``rng`` for deterministic
      tests;
    - a per-shard :class:`CircuitBreaker` (shard resolved through the
      target's ``shard_of``, falling back to one breaker for unsharded
      targets): consecutive ``ShardUnavailable`` failures trip it, an
      open breaker fails fast with ``reason="breaker-open"``, and after
      ``breaker_reset`` seconds a single half-open probe rides the next
      submit.

    Exactly-once: each logical request is minted one idempotency key
    (``<client-id>:<n>``) reused verbatim across every retry. The
    service journals ``(key, answer)`` through the write-ahead budget
    ledger *before* releasing the reply, so a retry that arrives after a
    mid-reply SIGKILL — when the spend is journaled but the reply was
    lost — replays the recorded answer bitwise with zero additional
    budget spend, on the restored shard, from its ledger.
    """

    def __init__(self, target, *, max_attempts: int = 6,
                 base_delay: float = 0.05, max_delay: float = 2.0,
                 breaker_failures: int = 3, breaker_reset: float = 1.0,
                 rng=None, client_id: str | None = None,
                 sleep=time.sleep, clock=time.monotonic) -> None:
        if max_attempts < 1:
            raise ValidationError(f"max_attempts must be >= 1, "
                                  f"got {max_attempts}")
        self.target = target
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.breaker_failures = int(breaker_failures)
        self.breaker_reset = float(breaker_reset)
        self._rng = rng if isinstance(rng, random.Random) \
            else random.Random(rng)
        self.client_id = client_id if client_id is not None \
            else f"rc-{uuid.uuid4().hex[:12]}"
        self._sleep = sleep
        self._clock = clock
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        self.stats = {"requests": 0, "attempts": 0, "retries": 0,
                      "breaker_fast_fails": 0, "successes": 0}

    # -- breakers ----------------------------------------------------------

    def breaker(self, shard_id: str) -> CircuitBreaker:
        """The breaker guarding ``shard_id`` (created on first use)."""
        with self._lock:
            entry = self._breakers.get(shard_id)
            if entry is None:
                entry = CircuitBreaker(
                    failure_threshold=self.breaker_failures,
                    reset_after=self.breaker_reset, clock=self._clock)
                self._breakers[shard_id] = entry
            return entry

    @property
    def breaker_states(self) -> dict[str, str]:
        """``{shard_id: state}`` for every breaker seen so far."""
        with self._lock:
            breakers = dict(self._breakers)
        return {shard: breaker.state for shard, breaker in breakers.items()}

    def note_restore(self, shard_id: str) -> None:
        """Tell the shard's breaker its target was restored (half-open
        probe on the next submit, no ``breaker_reset`` wait)."""
        self.breaker(shard_id).note_restore()

    def _shard_key(self, session_id: str) -> str:
        for obj in (self.target, getattr(self.target, "service", None)):
            shard_of = getattr(obj, "shard_of", None)
            if callable(shard_of):
                try:
                    return str(shard_of(session_id))
                except Exception:
                    break
        return "service"

    # -- the retry loop ----------------------------------------------------

    def mint_key(self) -> str:
        """A fresh idempotency key (one per *logical* request)."""
        return f"{self.client_id}:{next(self._counter)}"

    def submit(self, session_id: str, query, *, deadline=None,
               idempotency_key: str | None = None, **kwargs):
        """Submit one logical request, retrying until it succeeds, the
        attempts are exhausted, or ``deadline`` expires.

        ``deadline`` may be a :class:`Deadline` or a float budget in
        seconds; it bounds the *whole* retried operation and is also
        forwarded to the target so admission control and engine batching
        see it. Extra keyword arguments (``use_cache=``, ``lane=``,
        ``on_halt=``, ...) are forwarded verbatim.
        """
        if isinstance(deadline, (int, float)):
            deadline = Deadline.after(deadline, clock=self._clock)
        key = idempotency_key if idempotency_key is not None \
            else self.mint_key()
        self.stats["requests"] += 1
        shard = self._shard_key(session_id)
        last_exc: Exception | None = None
        for attempt in range(self.max_attempts):
            if deadline is not None and deadline.expired:
                break
            breaker = self.breaker(shard)
            claimed = breaker.allow()
            if not claimed:
                self.stats["breaker_fast_fails"] += 1
                last_exc = ShardUnavailable(
                    f"circuit breaker open for shard {shard!r}",
                    shard_id=shard, session_id=session_id,
                    reason="breaker-open")
                if attempt == 0:
                    # Fail fast for fresh traffic against a known-bad
                    # shard; mid-loop we instead wait out the backoff
                    # for the half-open probe window.
                    raise last_exc
            else:
                self.stats["attempts"] += 1
                try:
                    result = self.target.submit(
                        session_id, query, idempotency_key=key,
                        deadline=deadline, **kwargs)
                except ShardUnavailable as exc:
                    if exc.shard_id is not None:
                        shard = str(exc.shard_id)
                    self.breaker(shard).record_failure()
                    last_exc = exc
                except Overloaded as exc:
                    # The service is alive and refusing — back off, but
                    # don't count it against the shard's breaker.
                    breaker.record_success()
                    last_exc = exc
                else:
                    breaker.record_success()
                    self.stats["successes"] += 1
                    return result
            if attempt + 1 < self.max_attempts:
                delay = full_jitter_delay(
                    attempt, base=self.base_delay, cap=self.max_delay,
                    rng=self._rng)
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline.remaining()))
                self.stats["retries"] += 1
                if delay > 0:
                    self._sleep(delay)
        if last_exc is not None:
            raise last_exc
        raise DeadlineUnmeetable(
            f"deadline expired before any attempt for session "
            f"{session_id!r}", session_id=session_id,
            deadline_remaining=deadline.remaining() if deadline else 0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResilientClient(client_id={self.client_id!r}, "
                f"max_attempts={self.max_attempts}, "
                f"stats={self.stats})")
