"""`PMWService` — the multi-tenant query-serving front door.

One service owns a set of named private datasets and serves adaptively
chosen query streams from many analysts against them:

    service = PMWService(task.dataset, ledger_path="budget.jsonl")
    sid = service.open_session(
        "pmw-convex", analyst="alice", oracle="noisy-sgd",
        scale=2.0, alpha=0.2, epsilon=1.0, delta=1e-6,
    )
    result = service.submit(sid, loss)        # one query
    results = service.answer_batch({sid: losses})   # planned batch

Division of labor:

- each :class:`~repro.serve.session.Session` wraps one mechanism with a
  lock and lifecycle;
- the :class:`~repro.serve.registry.MechanismRegistry` builds mechanisms
  from JSON-documentable configuration;
- the :class:`~repro.serve.cache.AnswerCache` replays already-released
  answers (post-processing, zero privacy cost);
- the :class:`~repro.serve.ledger.BudgetLedger` journals every accountant
  spend durably *before* the answer is released, so a killed-and-restarted
  service resumes with the exact pre-crash budget totals
  (:meth:`PMWService.restore`);
- the :mod:`~repro.serve.planner` partitions batches into free/paid lanes
  and fans independent sessions out over a thread pool.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.data.dataset import Dataset
from repro.dp.accountant import PrivacySpend
from repro.exceptions import (
    MechanismHalted,
    PrivacyBudgetExhausted,
    ValidationError,
)
from repro.obs import trace
from repro.serve.cache import AnswerCache, CachedAnswer
from repro.serve.ledger import (
    BudgetLedger,
    decode_answer_value,
    encode_answer_value,
    fsync_dir,
    replay_ledger,
)
from repro.serve.planner import concurrent_map, plan_batch
from repro.serve.registry import MechanismRegistry, default_registry
from repro.serve.session import ServeResult, Session, try_fingerprint
from repro.utils.rng import as_generator, spawn_generators

SNAPSHOT_FORMAT = "repro.serve/v1"


class PMWService:
    """Serve CM and linear queries from sessions over private datasets.

    Parameters
    ----------
    datasets:
        One :class:`Dataset` (registered as ``"default"``) or a mapping
        ``name -> Dataset``. Datasets are the private state; they are never
        serialized by snapshots or the ledger.
    registry:
        Mechanism registry; defaults to the built-ins
        (``pmw-convex``, ``pmw-linear``).
    ledger_path:
        Optional path to the budget journal. When set, every accountant
        spend is durably journaled before its answer is released.
    ledger_fsync:
        Force each journal record to stable storage before its answer is
        released (default). Turning it off trades crash-safety for
        latency — appropriate for tests and benchmarks, not production.
    ledger_validate:
        Verify the existing journal's integrity (seq contiguity) when
        opening it (default). :meth:`restore` turns it off because its
        own replay has just validated the range it trusts.
    cache:
        Optional pre-built :class:`AnswerCache` (e.g. restored from a
        snapshot); by default a fresh unbounded cache.
    cache_entries:
        Capacity bound for the default cache.
    cache_policy:
        ``"replay"`` (default): any released answer is replayed forever —
        the privacy-optimal policy, since replays are free post-processing.
        ``"track-hypothesis"``: hypothesis-derived answers (sources
        ``"hypothesis"`` and ``"no-update"``) are stamped with the
        session's hypothesis version and invalidated once the hypothesis
        moves, so repeat queries after an MW update get a fresh (more
        accurate) round; same-version repeats and oracle releases
        (``"update"``) still replay at zero cost.
    backend:
        Service-level default numeric backend (a registered name or an
        :class:`~repro.backend.base.ArrayBackend`, normalized to its
        name so session params stay journalable). Injected into every
        :meth:`open_session` that does not pass its own ``backend``
        param; ``None`` leaves resolution to the mechanism (which reads
        ``REPRO_BACKEND``, defaulting to NumPy).
    rng:
        Seed/generator from which per-session generators are spawned.
    """

    CACHE_POLICIES = ("replay", "track-hypothesis")

    def __init__(self, datasets, *, registry: MechanismRegistry | None = None,
                 ledger_path=None, ledger_fsync: bool = True,
                 ledger_validate: bool = True,
                 cache: AnswerCache | None = None,
                 cache_entries: int | None = None,
                 cache_policy: str = "replay",
                 backend: str | ArrayBackend | None = None,
                 rng=None) -> None:
        if isinstance(datasets, Dataset):
            datasets = {"default": datasets}
        if not datasets:
            raise ValidationError("PMWService needs at least one dataset")
        self.datasets: dict[str, Dataset] = dict(datasets)
        self.registry = registry or default_registry()
        self.ledger = (BudgetLedger(ledger_path, fsync=ledger_fsync,
                                    validate=ledger_validate)
                       if ledger_path is not None else None)
        self.cache = (cache if cache is not None
                      else AnswerCache(max_entries=cache_entries))
        if cache_policy not in self.CACHE_POLICIES:
            raise ValidationError(
                f"cache_policy must be one of {self.CACHE_POLICIES}, got "
                f"{cache_policy!r}"
            )
        self.cache_policy = cache_policy
        # Normalized to a registered *name* (and validated eagerly): the
        # name is what flows into session params, which the ledger
        # journals as JSON.
        self.backend = (None if backend is None
                        else resolve_backend(backend).name)
        self._rng = as_generator(rng)
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()
        self._session_counter = 0
        self._closed = False
        # Exactly-once retry support: idempotency key -> the full reply
        # already released under that key (journaled through the ledger
        # as an ``answer`` record before release, rebuilt on restore).
        self._answers: dict[str, dict] = {}

    # -- sessions ------------------------------------------------------------

    def open_session(self, mechanism: str = "pmw-convex", *,
                     dataset: str | None = None, analyst: str = "analyst",
                     session_id: str | None = None,
                     epsilon_budget: float | None = None,
                     delta_budget: float | None = None,
                     rng=None, **params) -> str:
        """Create a session and journal its configuration. Returns its id.

        ``params`` are forwarded to the registry factory (for
        ``pmw-convex``: ``scale``, ``alpha``, ``epsilon``, ``oracle``, ...).
        ``epsilon_budget``/``delta_budget`` arm the session's accountant as
        a hard odometer on top of the mechanism's own calibration.
        """
        self._check_service_open()
        dataset_name = self._resolve_dataset(dataset)
        data = self.datasets[dataset_name]
        if rng is None:
            rng = spawn_generators(self._rng, 1)[0]
        if self.backend is not None:
            # Injected into the params dict itself, so the journaled
            # session configuration (and any cold resume from it) carries
            # the backend the session actually ran on.
            params.setdefault("backend", self.backend)
        mech = self.registry.create(mechanism, data, rng=rng, **params)
        self._arm_budget(mech, epsilon_budget, delta_budget)
        with self._lock:
            # Re-checked under the lock: close() flips the flag under
            # the same lock, so a session is either registered before
            # close() reads the barrier list or refused here.
            self._check_service_open()
            sid = session_id or self._next_session_id(mechanism)
            if sid in self._sessions:
                raise ValidationError(f"session id {sid!r} already in use")
            session = Session(sid, mech, mechanism_name=mechanism,
                              params=params, analyst=analyst,
                              dataset=dataset_name)
            # Hold the session lock across registration AND journaling:
            # the moment the session enters _sessions it is visible to a
            # concurrent snapshot, which captures per session under this
            # lock — without it, a capture could see the construction
            # spends in the accountant but last_spend_seq still -1, and
            # a later suffix-replaying restore would apply those
            # journaled spends a second time.
            session.lock.acquire()
            self._sessions[sid] = session
        try:
            # Consume construction-time spends (the sparse vector's
            # lifetime budget) unconditionally, so per-query marginal
            # costs never include them — with a ledger they are
            # journaled here.
            construction_spends = session.consume_unjournaled()
            if self.ledger is not None:
                self.ledger.append_open(
                    sid, mechanism, params, analyst=analyst,
                    dataset=dataset_name,
                    universe_size=data.universe.size,
                    dataset_digest=dataset_digest(data),
                    epsilon_budget=epsilon_budget,
                    delta_budget=delta_budget,
                )
                seq = self.ledger.append_spends(sid, construction_spends)
                if seq >= 0:
                    session.last_spend_seq = seq
        finally:
            session.lock.release()
        return sid

    def session(self, session_id: str) -> Session:
        """Look up a live session."""
        with self._lock:
            if session_id not in self._sessions:
                raise ValidationError(f"unknown session {session_id!r}")
            return self._sessions[session_id]

    @property
    def session_ids(self) -> list[str]:
        """Ids of all live sessions, in creation order."""
        with self._lock:
            return list(self._sessions)

    def close_session(self, session_id: str, *,
                      drop_cache: bool = True) -> None:
        """Close a session: journal it and evict its cache entries.

        The :class:`Session` object itself stays registered (its accountant
        feeds :meth:`budget_report` and ledger reconciliation), but its
        cache entries are unreachable once closed — pass
        ``drop_cache=False`` only if a snapshot should still carry them.
        """
        session = self.session(session_id)
        session.close()
        if drop_cache:
            self.cache.drop_session(session_id)
        if self.ledger is not None:
            self.ledger.append_close(session_id)

    # -- serving ---------------------------------------------------------------

    def submit(self, session_id: str, query, *, use_cache: bool = True,
               on_halt: str = "raise", idempotency_key: str | None = None,
               deadline=None) -> ServeResult:
        """Serve one query: cache first, then a mechanism round.

        ``on_halt="hypothesis"`` downgrades a halted mechanism to the
        public-hypothesis path instead of raising
        :class:`MechanismHalted`.

        ``idempotency_key`` makes the request exactly-once under
        retries: the reply is journaled through the budget ledger under
        the key *before* release, and a later submit carrying the same
        key replays the recorded reply bitwise — zero additional budget
        spend — instead of re-running a mechanism round. Keys are
        client-minted (see
        :class:`~repro.serve.resilience.ResilientClient`).

        ``deadline`` (a :class:`~repro.serve.resilience.Deadline`) is
        accepted for call-signature uniformity across the serving stack;
        a request that has reached the mechanism is always served to
        completion (its spend is already committed), so it only
        influences optional work such as batch prewarming.
        """
        self._check_service_open()
        if idempotency_key is not None:
            recorded = self._recorded_answer(session_id, idempotency_key)
            if recorded is not None:
                return recorded
        session = self.session(session_id)
        self._check_session_open(session)
        fingerprint = try_fingerprint(query)
        if use_cache and fingerprint is not None:
            hit = self.cache.get(session_id, fingerprint,
                                 version=self._cache_version(session))
            if hit is not None:
                result = self._cache_result(session_id, fingerprint, hit)
                return self._journal_answer(idempotency_key, result)
        result = self._serve_uncached(session, query, fingerprint, on_halt,
                                      recheck_cache=use_cache)
        return self._journal_answer(idempotency_key, result)

    def _cache_version(self, session: Session) -> int | None:
        """The hypothesis version cache lookups key on, per policy.

        ``None`` under the ``"replay"`` policy (or for mechanisms without
        version tracking): any released answer hits regardless of
        hypothesis movement.
        """
        if self.cache_policy != "track-hypothesis":
            return None
        return session.hypothesis_version

    def answer_batch(self, batches, *, max_workers: int | None = None,
                     use_cache: bool = True,
                     on_halt: str = "hypothesis"):
        """Serve batches for one or many sessions, planned and concurrent.

        ``batches`` is either ``{session_id: [queries]}`` (returns
        ``{session_id: [ServeResult]}``) or a ``(session_id, [queries])``
        pair (returns ``[ServeResult]``). Sessions run in parallel on a
        thread pool; within a session the mechanism lane keeps stream
        order. The default ``on_halt="hypothesis"`` keeps batches total:
        a mid-batch halt downgrades the remainder to the free path.
        """
        single = None
        if isinstance(batches, tuple):
            single, queries = batches
            batches = {single: list(queries)}
        results = concurrent_map(
            lambda sid, queries: self.serve_session_batch(
                sid, queries, use_cache=use_cache, on_halt=on_halt),
            {sid: list(queries) for sid, queries in batches.items()},
            max_workers=max_workers,
        )
        return results[single] if single is not None else results

    def serve_session_batch(self, session_id: str, queries, *,
                            use_cache: bool = True,
                            on_halt: str = "hypothesis",
                            idempotency_keys=None,
                            deadline=None) -> list[ServeResult]:
        """Serve one session's batch: planned lanes, engine-prewarmed.

        The single-session execution path under :meth:`answer_batch`
        (which fans it out across sessions) and the unit the gateway's
        coalescer submits (:meth:`gateway`): the planner lanes the batch
        (cache / in-batch duplicates / hypothesis / mechanism), the
        session pre-warms the mechanism lane through the batched
        evaluation engine, and the lane streams in order under the
        session lock. Results align with ``queries``.

        ``idempotency_keys`` aligns with ``queries`` (``None`` entries
        allowed): a query whose key already has a journaled answer is
        replayed bitwise from the record without touching the mechanism;
        the rest are served normally and their replies journaled under
        their keys before the batch returns (see :meth:`submit`).
        ``deadline`` bounds optional work only — an expired deadline
        skips the engine prewarm, never an already-admitted query.
        """
        queries = list(queries)
        keys = (list(idempotency_keys) if idempotency_keys is not None
                else [None] * len(queries))
        if len(keys) != len(queries):
            raise ValidationError(
                f"idempotency_keys length {len(keys)} != "
                f"batch length {len(queries)}"
            )
        self._check_service_open()
        replayed: dict[int, ServeResult] = {}
        for index, key in enumerate(keys):
            if key is None:
                continue
            recorded = self._recorded_answer(session_id, key)
            if recorded is not None:
                replayed[index] = recorded
        if len(replayed) == len(queries):
            return [replayed[index] for index in range(len(queries))]
        fresh = [index for index in range(len(queries))
                 if index not in replayed]
        fresh_results = self._serve_batch_fresh(
            session_id, [queries[index] for index in fresh],
            use_cache=use_cache, on_halt=on_halt, deadline=deadline)
        out: list[ServeResult] = [None] * len(queries)  # type: ignore
        for position, index in enumerate(fresh):
            out[index] = self._journal_answer(keys[index],
                                              fresh_results[position])
        for index, result in replayed.items():
            out[index] = result
        return out

    def _serve_batch_fresh(self, session_id: str, queries, *,
                           use_cache: bool, on_halt: str,
                           deadline=None) -> list[ServeResult]:
        session = self.session(session_id)
        self._check_session_open(session)
        with trace.span("serve.plan", session=session_id,
                        queries=len(queries)):
            plan = plan_batch(session, queries,
                              cache=self.cache if use_cache else None,
                              version=self._cache_version(session))
        results: list[ServeResult | None] = [None] * plan.total
        # Hypothesis version each first-occurrence was served at, so the
        # duplicates lane can tell a merely-evicted entry (same version:
        # replay the in-memory origin for free) from a stale one (an
        # update landed since: re-serve).
        served_versions: dict[int, int | None] = {}
        with session.lock:  # one thread per session: keep stream order
            # Submit the mechanism lane as one batch: the engine
            # pre-computes its data-side minimizations in a single
            # vectorized pass before the lane streams through the
            # mechanism in order.
            # Prewarming is an optimization, not a correctness step: a
            # batch whose deadline has already passed skips it and
            # streams the lane directly (claimed work always completes —
            # the spends are committed — but there is no point paying
            # for a vectorized warm-up the waiter will never notice).
            lane = plan.mechanism_lane(queries)
            expired = (deadline is not None
                       and getattr(deadline, "expired", False))
            if len(lane) > 1 and not expired:
                with trace.span("serve.prewarm", session=session_id,
                                lane=len(lane)):
                    session.prewarm(lane)
            for index in sorted(plan.mechanism + plan.hypothesis):
                results[index] = self._serve_uncached(
                    session, queries[index], plan.fingerprints[index],
                    on_halt, recheck_cache=use_cache,
                )
                served_versions[index] = session.hypothesis_version
        for index in plan.cached:
            fingerprint = plan.fingerprints[index]
            hit = self.cache.get(session_id, fingerprint,
                                 version=self._cache_version(session))
            if hit is None:  # evicted (or gone stale) since planning
                results[index] = self._serve_uncached(
                    session, queries[index], fingerprint, on_halt,
                    recheck_cache=use_cache)
                continue
            results[index] = self._cache_result(session_id, fingerprint, hit)
        for index, first in plan.duplicates.items():
            # The first occurrence was cached the moment it was served, so
            # duplicates go through the cache (keeping hit stats honest),
            # with the in-memory result as fallback.
            fingerprint = plan.fingerprints[index]
            hit = self.cache.get(session_id, fingerprint,
                                 version=self._cache_version(session))
            if hit is None:
                origin = results[first]
                # The in-memory origin is a valid free replay unless the
                # policy tracks the hypothesis AND the origin is a
                # hypothesis-derived answer from a version that has since
                # moved (an MW update landed mid-batch). A merely-evicted
                # entry replays — re-running it would double-spend the
                # stream slot (and possibly oracle budget) for an answer
                # already in hand; oracle releases ("update") replay
                # across versions by the policy's own definition.
                replayable = (
                    self.cache_policy != "track-hypothesis"
                    or origin.source == "update"
                    or served_versions.get(first) == session.hypothesis_version
                )
                if not replayable:
                    results[index] = self._serve_uncached(
                        session, queries[index], fingerprint, on_halt,
                        recheck_cache=use_cache)
                    continue
                hit = CachedAnswer(value=origin.value, source="cache",
                                   query_index=origin.query_index)
            results[index] = self._cache_result(session_id, fingerprint, hit)
        return results

    def _serve_uncached(self, session: Session, query,
                        fingerprint: str | None, on_halt: str, *,
                        recheck_cache: bool = True) -> ServeResult:
        if on_halt not in ("raise", "hypothesis"):
            raise ValidationError(
                f"on_halt must be 'raise' or 'hypothesis', got {on_halt!r}"
            )
        with session.lock:
            # Re-checked under the session lock: close() barriers on
            # this lock after flipping the flag, so a round either
            # refuses here or completes its journaling before the
            # ledger handle is released.
            self._check_service_open()
            if recheck_cache and fingerprint is not None:
                # Double-checked under the session lock: a concurrent
                # duplicate submission may have released this answer while
                # we waited, and replaying it is free — re-running the
                # mechanism round would double-spend.
                hit = self.cache.get(session.session_id, fingerprint,
                                     version=self._cache_version(session))
                if hit is not None:
                    return self._cache_result(session.session_id,
                                              fingerprint, hit)
            try:
                # Deferred construction spends (cold resume) are recorded
                # now: this is the restarted interaction's first use, and
                # they reach the journal below, before the answer release.
                session.flush_pending_spends()
                value, source, query_index = session.answer(query)
            except (MechanismHalted, PrivacyBudgetExhausted):
                # Both exhaustions mean "no more paid rounds"; the free
                # hypothesis path stays available either way.
                if on_halt == "raise":
                    raise
                value = session.answer_from_hypothesis(query)
                source, query_index = "hypothesis", None
            records = session.consume_unjournaled()
            # Journal *before* releasing the answer: write-ahead budget
            # accounting is what makes restart totals exact.
            if self.ledger is not None:
                seq = self.ledger.append_spends(session.session_id, records)
                if seq >= 0:
                    session.last_spend_seq = seq
            # Cache inside the lock, so a waiting duplicate's recheck is
            # guaranteed to see this answer. Hypothesis-derived answers
            # are stamped with the hypothesis version they were computed
            # at (unchanged by bottom rounds), so update-aware lookups
            # can tell fresh from stale; oracle releases ("update") are
            # data-side answers and stay version-free (replay forever).
            if fingerprint is not None:
                stamped = (session.hypothesis_version
                           if source in ("hypothesis", "no-update")
                           else None)
                self.cache.put(session.session_id, fingerprint,
                               CachedAnswer(value=value, source=source,
                                            query_index=query_index,
                                            hypothesis_version=stamped))
        return ServeResult(
            session_id=session.session_id, fingerprint=fingerprint or "",
            value=value, source=source, query_index=query_index,
            epsilon_spent=float(sum(r["epsilon"] for r in records)),
            delta_spent=float(sum(r["delta"] for r in records)),
        )

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Close the service, releasing the budget ledger's file handle.

        Idempotent, and safe against in-flight serving: after new
        admissions are stopped, the close barriers on every session's
        lock, so a round that already entered its critical section
        finishes — and journals its spend — before the handle goes
        away. (Rounds re-check the closed flag under their session
        lock, so nothing new starts once the flag is up.) A closed
        service refuses new sessions and new answers; snapshots and
        budget reports still work. Call it at teardown — or use the
        service as a context manager — so many short-lived services in
        one process do not each leak an open ledger handle.
        :meth:`ServiceGateway.shutdown <repro.serve.gateway.ServiceGateway.shutdown>`
        calls it after draining the gateway.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            # Sessions registered after this point were refused by the
            # closed-flag re-check inside open_session's locked section,
            # so this list is complete for barrier purposes.
            sessions = list(self._sessions.values())
        for session in sessions:
            with session.lock:
                pass  # barrier: in-flight rounds journal before we close
        if self.ledger is not None:
            self.ledger.close()

    def __enter__(self) -> "PMWService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_service_open(self) -> None:
        if self._closed:
            raise ValidationError(
                "service is closed (its budget ledger handle has been "
                "released); build or restore a new PMWService"
            )

    def gateway(self, **knobs) -> "ServiceGateway":
        """Build a :class:`~repro.serve.gateway.ServiceGateway` front end.

        Convenience constructor: ``service.gateway(workers=8,
        max_queue_depth=32)``. The gateway owns a worker pool with
        bounded per-session FIFO queues, admission control, and batch
        coalescing — see :mod:`repro.serve.gateway`.
        """
        from repro.serve.gateway import ServiceGateway

        return ServiceGateway(self, **knobs)

    # -- accounting ------------------------------------------------------------

    def budget_report(self) -> str:
        """Per-session and total budget position plus cache stats."""
        lines = ["PMWService budget report"]
        totals: dict[str, float] = {}
        for sid in self.session_ids:
            session = self.session(sid)
            total = session.accountant.total_basic()
            totals[session.dataset] = totals.get(session.dataset, 0.0) + \
                total.epsilon
            lines.append(
                f"  {sid} [{session.analyst}] on {session.dataset!r}: "
                f"eps={total.epsilon:g} delta={total.delta:g} "
                f"({session.accountant.num_spends} spends, "
                f"{session.queries_served} rounds served, "
                f"state={session.state}, halted={session.halted})"
            )
        for name, epsilon in totals.items():
            lines.append(f"  dataset {name!r}: basic-composed eps={epsilon:g}")
        stats = self.cache.stats()
        lines.append(
            f"  cache: {stats.entries} entries, hit rate "
            f"{stats.hit_rate:.1%} ({stats.hits} hits / {stats.misses} misses)"
        )
        return "\n".join(lines)

    # -- snapshot / restore ------------------------------------------------------

    def snapshot(self, path=None) -> dict:
        """Full service state (sessions + cache), JSON-serializable.

        Never contains the private datasets. When ``path`` is given the
        snapshot is written atomically (tmp + rename + directory fsync —
        without the fsync the rename itself could be lost on power
        failure, resurrecting the previous snapshot).

        With a ledger, the snapshot is stamped with the journal's
        ``last_seq`` at capture (``"ledger_seq"``), so a restore replays
        only the ledger *suffix* past the stamp. The stamp is taken
        *first*: any spend that lands while sessions are being captured
        has ``seq > stamp`` and each session's own ``last_spend_seq``
        (captured under its lock) tells the restore whether that spend is
        already inside the snapshotted accountant. For a stamp with no
        concurrent-writer caveats at all, checkpoint through
        :class:`~repro.serve.checkpoint.Checkpointer`, which quiesces the
        gateway around the capture.
        """
        ledger_seq = self.ledger.last_seq if self.ledger is not None \
            else None
        # Capture the cache BEFORE the sessions: with concurrent serving,
        # a tear then at worst omits a just-released answer from the cache
        # while its spend is in the accountant (over-accounting, safe) —
        # never a cached answer whose spend is missing.
        cache_state = self.cache.to_state()
        digests = {name: dataset_digest(data)
                   for name, data in self.datasets.items()}
        sessions = {}
        for sid in self.session_ids:
            record = self.session(sid).snapshot()
            record["dataset_digest"] = digests.get(record.get("dataset"))
            sessions[sid] = record
        with self._lock:
            answers = {
                key: {
                    "session": record["session"],
                    "fingerprint": record["fingerprint"],
                    "value": encode_answer_value(record["value"]),
                    "source": record["source"],
                    "query_index": (record["query_index"]
                                    if record["query_index"] is not None
                                    else -1),
                    "epsilon": record["epsilon"],
                    "delta": record["delta"],
                }
                for key, record in self._answers.items()
            }
        state = {
            "format": SNAPSHOT_FORMAT,
            "session_counter": self._session_counter,
            "cache_policy": self.cache_policy,
            "ledger_seq": ledger_seq,
            "sessions": sessions,
            "cache": cache_state,
            "answers": answers,
        }
        if path is not None:
            path = os.fspath(path)
            tmp = path + ".tmp"
            try:
                with open(tmp, "w", encoding="utf-8") as handle:
                    json.dump(state, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
                fsync_dir(path)
            except BaseException:
                if os.path.exists(tmp):
                    os.remove(tmp)
                raise
        return state

    @classmethod
    def restore(cls, datasets, *, snapshot=None, ledger_path=None,
                ledger_fsync: bool = True,
                registry: MechanismRegistry | None = None,
                params_override: dict | None = None,
                cache_policy: str | None = None,
                backend: str | ArrayBackend | None = None,
                rng=None) -> "PMWService":
        """Rebuild a service after a restart (or crash).

        Two recovery tiers, composable:

        - ``snapshot`` (a dict or a path written by :meth:`snapshot`):
          full-fidelity restore — hypotheses, sparse-vector state, caches,
          and accountants all resume bit-for-bit.
        - ``ledger_path`` alone: cold resume — sessions are rebuilt fresh
          from their journaled configuration (hypotheses restart from
          uniform), but every accountant is rebuilt to the **exact**
          journaled totals, so no budget is ever double-spent or forgotten.

        When both are given, the tiers are *reconciled* on the ledger's
        ``seq`` watermark. A snapshot taken against a ledger carries a
        ``ledger_seq`` stamp; restore replays only the journal **suffix**
        past the stamp (the crash window) and applies it on top of the
        snapshotted accountants — O(crash window), not O(history). The
        ledger stays the budget authority: journaled spends the snapshot
        has not seen are never dropped, sessions opened post-snapshot are
        revived, and a stamped snapshot restored *without* its ledger (or
        against a ledger that ends before the stamp) fails loudly instead
        of silently under-reporting spent budget. Un-stamped snapshots
        (taken by a ledger-less service, or pre-stamp) keep the original
        full-replay reconciliation. If the journal was compacted after
        the stamp, per-record suffix replay is impossible (the rotation
        folded those records into baselines) and restore falls back to
        full-replay authority — which the rotation has just made cheap.

        ``params_override`` maps ``session_id -> params`` for sessions whose
        journaled configuration contained unjournalable values (e.g. a live
        oracle instance). ``cache_policy`` overrides the snapshotted
        answer-cache policy (defaults to the snapshot's, else ``"replay"``).
        ``backend`` sets the rebuilt service's default numeric backend for
        *new* sessions; restored sessions keep the backend their journaled
        params carry (override per session via ``params_override`` —
        hypothesis payloads are backend-independent float64, so a
        cross-backend restore is exact).
        """
        if snapshot is None and ledger_path is None:
            raise ValidationError(
                "restore needs a snapshot, a ledger_path, or both"
            )
        if isinstance(snapshot, (str, os.PathLike)):
            with open(snapshot, encoding="utf-8") as handle:
                snapshot = json.load(handle)
        if snapshot is not None and snapshot.get("format") != SNAPSHOT_FORMAT:
            raise ValidationError(
                f"unrecognized service snapshot format "
                f"{snapshot.get('format')!r}"
            )

        stamp = snapshot.get("ledger_seq") if snapshot is not None else None
        ledger_exists = (ledger_path is not None
                         and os.path.exists(os.fspath(ledger_path)))
        if stamp is not None and not ledger_exists:
            raise ValidationError(
                f"snapshot is stamped at ledger seq {stamp}: it was taken "
                f"against a budget ledger, which is the authority for any "
                f"spends journaled after the snapshot — restoring without "
                f"that ledger would silently under-report spent budget. "
                f"Pass ledger_path."
            )

        ledger_state = None   # full-replay authority
        suffix_state = None   # only the records past the snapshot stamp
        if ledger_exists:
            if stamp is not None:
                suffix_state = replay_ledger(ledger_path, from_seq=stamp)
                if suffix_state.last_seq < stamp:
                    raise ValidationError(
                        f"snapshot is stamped at ledger seq {stamp}, but "
                        f"{os.fspath(ledger_path)} ends at seq "
                        f"{suffix_state.last_seq}: a write-ahead journal "
                        f"never runs behind its snapshot, so this is not "
                        f"the ledger the snapshot was taken against"
                    )
                if suffix_state.compacted_through >= stamp:
                    # Rotated at-or-after the snapshot stamp: spends
                    # through the stamp are folded inside baseline
                    # records, so record-by-record suffix application is
                    # impossible. The suffix replay above already covers
                    # the whole rotated file (it opens at the rotation
                    # header), so it IS the full authority.
                    ledger_state, suffix_state = suffix_state, None
            else:
                ledger_state = replay_ledger(ledger_path)

        cache = (AnswerCache.from_state(snapshot["cache"])
                 if snapshot is not None else None)
        if cache_policy is None:
            cache_policy = (snapshot or {}).get("cache_policy", "replay")
        # The replay above already validated the journal range restore
        # trusts, so the ledger skips its own open-time integrity scan.
        service = cls(datasets, registry=registry, ledger_path=ledger_path,
                      ledger_fsync=ledger_fsync, ledger_validate=False,
                      cache=cache, cache_policy=cache_policy,
                      backend=backend, rng=rng)
        params_override = params_override or {}

        if snapshot is not None:
            service._session_counter = int(snapshot.get("session_counter", 0))
            for sid, record in snapshot["sessions"].items():
                service._restore_session_from_snapshot(
                    record, params_override.get(sid))
        if ledger_state is not None:
            # Sessions opened after the snapshot (or all of them, with no
            # snapshot) exist only in the journal: rebuild them too.
            for sid in ledger_state.session_ids:
                if sid not in service._sessions:
                    service._restore_session_from_ledger(
                        sid, ledger_state, params_override.get(sid))

        if ledger_state is not None:
            # The ledger is the budget authority: it saw every spend that
            # was acted on, including any after the last snapshot.
            for sid in service.session_ids:
                if sid in ledger_state.opens:
                    session = service.session(sid)
                    session.mechanism.accountant = \
                        ledger_state.accountant_for(sid)
                    session._journal_cursor = \
                        session.accountant.num_spends
                    spends = ledger_state.spends.get(sid, [])
                    if spends:
                        session.last_spend_seq = spends[-1]["seq"]
                if sid in ledger_state.closed:
                    service.session(sid).close()
        # Idempotency answers: the ledger is the authority (it saw every
        # keyed reply released before the crash); a stamped snapshot
        # seeds the map and the journal suffix layers the crash window
        # on top.
        if snapshot is not None:
            service._adopt_answer_records(snapshot.get("answers", {}))
        if ledger_state is not None:
            service._adopt_answer_records(ledger_state.answers)
        if suffix_state is not None:
            service._adopt_answer_records(suffix_state.answers)
            service._reconcile_ledger_suffix(suffix_state, stamp,
                                             params_override)
        if service.ledger is not None and stamp is None:
            # Sessions the journal has never seen (snapshot-restored onto a
            # new or foreign ledger) are adopted: journal their open record
            # and full spend history now, so this ledger alone can
            # reconstruct their totals at the next restore. (A stamped
            # snapshot restores against its own ledger — every session is
            # already journaled there.)
            known = set(ledger_state.opens) if ledger_state is not None else set()
            for sid in service.session_ids:
                if sid in known:
                    continue
                session = service.session(sid)
                accountant = session.accountant
                adopted_data = service.datasets.get(session.dataset)
                service.ledger.append_open(
                    sid, session.mechanism_name, session.params,
                    analyst=session.analyst, dataset=session.dataset,
                    universe_size=(adopted_data.universe.size
                                   if adopted_data is not None else None),
                    dataset_digest=(dataset_digest(adopted_data)
                                    if adopted_data is not None else None),
                    epsilon_budget=accountant.epsilon_budget,
                    delta_budget=accountant.delta_budget,
                )
                session._journal_cursor = 0
                seq = service.ledger.append_spends(
                    sid, session.consume_unjournaled())
                if seq >= 0:
                    session.last_spend_seq = seq
        # Never reissue an id: advance the minting counter past every
        # numeric suffix in use. Length-of-journal floors miss explicit
        # ids that *look* like future auto ids ("pmw-convex-0002" opened
        # by hand), and a post-restore open_session would collide.
        service._session_counter = max(service._session_counter,
                                       _max_id_counter(service.session_ids))
        return service

    def _reconcile_ledger_suffix(self, suffix, stamp: int,
                                 params_override: dict) -> None:
        """Apply the journal's crash window on top of a stamped snapshot.

        ``suffix`` holds only records with ``seq > stamp``. Three cases:

        - sessions opened in the window exist only in the journal —
          rebuild them cold (the suffix carries their complete history);
        - snapshotted sessions may have journaled spends the snapshot
          has not seen — append exactly those (each session's own
          ``last_spend_seq`` marks where its snapshotted accountant
          ends, so a spend that raced the capture is never re-applied);
        - sessions closed in the window are closed.
        """
        for sid in suffix.session_ids:
            if sid in self._sessions:
                continue
            self._restore_session_from_ledger(sid, suffix,
                                              params_override.get(sid))
            session = self.session(sid)
            session.mechanism.accountant = suffix.accountant_for(sid)
            session._journal_cursor = session.accountant.num_spends
            spends = suffix.spends.get(sid, [])
            if spends:
                session.last_spend_seq = spends[-1]["seq"]
        unknown = sorted(set(suffix.spends) - set(self._sessions))
        if unknown:
            raise ValidationError(
                f"ledger journals spends after seq {stamp} for sessions "
                f"the snapshot does not contain: {unknown}; the snapshot "
                f"and ledger disagree about the service's history"
            )
        for sid in self.session_ids:
            session = self.session(sid)
            spends = suffix.spends.get(sid, [])
            extra = [r for r in spends
                     if r["seq"] > session.last_spend_seq]
            if extra:
                # Extend in place (journal entries are trusted, like
                # from_records): appending keeps reconciliation
                # O(crash window) — rebuilding the accountant would be
                # the O(history) cost this path exists to avoid.
                session.accountant.spends.extend(
                    PrivacySpend(float(r["epsilon"]), float(r["delta"]),
                                 str(r.get("label", "")))
                    for r in extra
                )
                session._journal_cursor = session.accountant.num_spends
            if spends:
                session.last_spend_seq = max(session.last_spend_seq,
                                             spends[-1]["seq"])
            if sid in suffix.closed:
                session.close()

    # -- internals ---------------------------------------------------------------

    def _restore_session_from_snapshot(self, record: dict,
                                       override: dict | None) -> None:
        dataset_name = self._resolve_dataset(record.get("dataset") or None)
        snapshotted_digest = record.get("dataset_digest")
        if (snapshotted_digest is not None and snapshotted_digest
                != dataset_digest(self.datasets[dataset_name])):
            raise ValidationError(
                f"session {record['session_id']!r} was snapshotted over a "
                f"dataset with a different content digest than "
                f"{dataset_name!r}; refusing to resume over different data"
            )
        params = dict(override if override is not None
                      else record.get("params", {}))
        _check_journalable(record["session_id"], params)
        mechanism = self.registry.restore(
            record["mechanism"], record["mechanism_snapshot"],
            self.datasets[dataset_name],
            rng=spawn_generators(self._rng, 1)[0], **params,
        )
        session = Session.restore(record, mechanism)
        with self._lock:
            self._sessions[session.session_id] = session

    def _restore_session_from_ledger(self, sid: str, ledger_state,
                                     override: dict | None) -> None:
        record = ledger_state.opens[sid]
        dataset_name = self._resolve_dataset(record.get("dataset") or None)
        data = self.datasets[dataset_name]
        journaled_size = record.get("universe_size")
        if journaled_size is not None and journaled_size != data.universe.size:
            raise ValidationError(
                f"session {sid!r} was journaled over a universe of size "
                f"{journaled_size}, but dataset {dataset_name!r} has "
                f"{data.universe.size}; refusing to resume over different "
                f"data"
            )
        journaled_digest = record.get("dataset_digest")
        if (journaled_digest is not None
                and journaled_digest != dataset_digest(data)):
            raise ValidationError(
                f"session {sid!r} was journaled over a dataset with a "
                f"different content digest than {dataset_name!r}; refusing "
                f"to resume over different data"
            )
        params = dict(override if override is not None
                      else record.get("params", {}))
        _check_journalable(sid, params)
        mechanism = self.registry.create(
            record["mechanism"], self.datasets[dataset_name],
            rng=spawn_generators(self._rng, 1)[0], **params,
        )
        session = Session(sid, mechanism,
                          mechanism_name=record["mechanism"], params=params,
                          analyst=record.get("analyst", ""),
                          dataset=dataset_name)
        # The fresh mechanism started a *new* sparse-vector interaction;
        # its lifetime budget is owed, but only once the interaction is
        # first used — park it so resume totals stay exactly pre-crash.
        session.pending_spends = session.consume_unjournaled()
        with self._lock:
            self._sessions[sid] = session

    # -- exactly-once idempotency ------------------------------------------------

    def _recorded_answer(self, session_id: str,
                         key: str) -> ServeResult | None:
        """The reply already released under ``key``, or ``None``.

        A hit reconstructs the original :class:`ServeResult` bitwise —
        including the *original* spend figures, reported for fidelity
        (nothing is charged again) — without touching mechanism state,
        cache, or accountant.
        """
        with self._lock:
            record = self._answers.get(key)
        if record is None:
            return None
        if record["session"] != session_id:
            raise ValidationError(
                f"idempotency key {key!r} was minted for session "
                f"{record['session']!r}, not {session_id!r}; keys are "
                f"per-logical-request and must not be reused"
            )
        return ServeResult(
            session_id=session_id, fingerprint=record["fingerprint"],
            value=record["value"], source=record["source"],
            query_index=record["query_index"],
            epsilon_spent=record["epsilon"], delta_spent=record["delta"],
        )

    def _journal_answer(self, key: str | None,
                        result: ServeResult) -> ServeResult:
        """Journal ``result`` under ``key`` (durably, before the reply
        leaves the service) and remember it for replay. No-op without a
        key; idempotent for a key already journaled."""
        if key is None:
            return result
        with self._lock:
            if key in self._answers:
                return result
        if self.ledger is not None:
            self.ledger.append_answer(
                result.session_id, key, value=result.value,
                source=result.source,
                query_index=(result.query_index
                             if result.query_index is not None else -1),
                fingerprint=result.fingerprint,
                epsilon_spent=result.epsilon_spent,
                delta_spent=result.delta_spent)
        with self._lock:
            self._answers[key] = {
                "session": result.session_id,
                "fingerprint": result.fingerprint,
                "value": result.value, "source": result.source,
                "query_index": result.query_index,
                "epsilon": result.epsilon_spent,
                "delta": result.delta_spent,
            }
        return result

    def _adopt_answer_records(self, records: dict) -> None:
        """Rebuild the replay map from ledger ``answer`` records."""
        for key, record in records.items():
            query_index = int(record.get("query_index", -1))
            with self._lock:
                self._answers[key] = {
                    "session": record.get("session", ""),
                    "fingerprint": record.get("fingerprint", ""),
                    "value": decode_answer_value(record["value"]),
                    "source": record.get("source", ""),
                    "query_index": (query_index if query_index >= 0
                                    else None),
                    "epsilon": float(record.get("epsilon", 0.0)),
                    "delta": float(record.get("delta", 0.0)),
                }

    @staticmethod
    def _cache_result(session_id: str, fingerprint: str,
                      hit: CachedAnswer) -> ServeResult:
        """A zero-cost replay of an already-released answer."""
        return ServeResult(
            session_id=session_id, fingerprint=fingerprint,
            value=hit.value, source="cache", query_index=hit.query_index,
            epsilon_spent=0.0, delta_spent=0.0,
        )

    @staticmethod
    def _check_session_open(session: Session) -> None:
        if session.closed:
            raise ValidationError(
                f"session {session.session_id!r} is closed"
            )

    def _resolve_dataset(self, name: str | None) -> str:
        if name is None:
            if "default" in self.datasets:
                return "default"
            if len(self.datasets) == 1:
                return next(iter(self.datasets))
            raise ValidationError(
                f"dataset name required; available: "
                f"{sorted(self.datasets)}"
            )
        if name not in self.datasets:
            raise ValidationError(
                f"unknown dataset {name!r}; available: "
                f"{sorted(self.datasets)}"
            )
        return name

    def _next_session_id(self, mechanism: str) -> str:
        self._session_counter += 1
        return f"{mechanism}-{self._session_counter:04d}"

    @staticmethod
    def _arm_budget(mechanism, epsilon_budget, delta_budget) -> None:
        if epsilon_budget is None and delta_budget is None:
            return
        accountant = mechanism.accountant
        # Only arm what was asked for: a factory-armed budget stays armed.
        if epsilon_budget is not None:
            accountant.epsilon_budget = epsilon_budget
        if delta_budget is not None:
            accountant.delta_budget = delta_budget
        total = accountant.total_basic()
        if epsilon_budget is not None and total.epsilon > epsilon_budget:
            raise PrivacyBudgetExhausted(
                f"session construction already spent eps={total.epsilon:g} "
                f"> budget {epsilon_budget:g}",
                epsilon_spent=total.epsilon, epsilon_budget=epsilon_budget,
            )
        if delta_budget is not None and total.delta > delta_budget:
            raise PrivacyBudgetExhausted(
                f"session construction already spent delta={total.delta:g} "
                f"> budget {delta_budget:g}",
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PMWService(datasets={sorted(self.datasets)}, "
            f"sessions={len(self._sessions)}, "
            f"ledger={getattr(self.ledger, 'path', None)!r})"
        )


def dataset_digest(dataset: Dataset) -> str:
    """Content digest of a private dataset (universe + row multiset).

    Journaled in ledger ``open`` records so a restore against different
    data with a coincidentally equal universe size still fails loudly.
    Row order is irrelevant (datasets are multisets), so indices are
    sorted before hashing.
    """
    hasher = hashlib.sha256()
    hasher.update(np.ascontiguousarray(dataset.universe.points).tobytes())
    if dataset.universe.labels is not None:
        hasher.update(np.ascontiguousarray(dataset.universe.labels).tobytes())
    hasher.update(np.sort(dataset.indices).tobytes())
    return hasher.hexdigest()


#: Auto-minted ids end in ``-<counter>``; explicit ids may coincide.
_ID_SUFFIX = re.compile(r"-(\d+)$")


def _max_id_counter(session_ids) -> int:
    """Largest numeric id suffix in use (0 when none), so the minting
    counter can skip past ids a restore replayed — including explicit
    ones that merely look auto-minted."""
    best = 0
    for sid in session_ids:
        match = _ID_SUFFIX.search(sid)
        if match:
            best = max(best, int(match.group(1)))
    return best


__all__ = ["PMWService", "SNAPSHOT_FORMAT", "dataset_digest"]


def _check_journalable(session_id: str, params: dict) -> None:
    for key, value in params.items():
        if isinstance(value, dict) and "__unjournalable__" in value:
            raise ValidationError(
                f"session {session_id!r} was opened with unjournalable "
                f"param {key!r} ({value['__unjournalable__']}); supply it "
                f"via params_override to restore this session"
            )
