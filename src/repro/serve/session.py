"""Per-analyst sessions: lifecycle around one interactive mechanism.

A :class:`Session` wraps one mechanism instance (any registered type —
:class:`PrivateMWConvex`, :class:`PrivateMWLinear`, or a plug-in) with the
state a serving layer needs and the mechanism itself does not provide:

- a uniform ``answer`` / ``answer_from_hypothesis`` surface across CM and
  linear mechanisms,
- a lock serializing the analyst's interaction (mechanisms are stateful and
  order-sensitive: the sparse vector is a stream),
- a journal cursor so every new :class:`PrivacyAccountant` spend is handed
  to the budget ledger exactly once,
- lifecycle (open -> halted -> closed) and snapshot/restore.

Sessions are created by :class:`repro.serve.service.PMWService`; direct
construction is supported for tests and embedding.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.pmw_cm import PMWAnswer
from repro.exceptions import ValidationError
from repro.losses.linear import LinearQuery
from repro.obs import trace

#: Lifecycle states. ``halted`` is derived from the mechanism (its update
#: budget ran out), not stored: a halted session still serves
#: hypothesis-path and cached answers.
OPEN = "open"
CLOSED = "closed"


@dataclass(frozen=True)
class ServeResult:
    """One served query, with its provenance and marginal privacy cost.

    Attributes
    ----------
    session_id, fingerprint:
        Which session answered which canonical query.
    value:
        ``theta`` (ndarray) for CM queries, a float for linear queries.
    source:
        ``"cache"`` — replay of an already-released answer (free);
        ``"hypothesis"`` — minimized over the public hypothesis (free);
        ``"no-update"`` — mechanism round, sparse vector said bottom;
        ``"update"`` — mechanism round that triggered an oracle call.
    query_index:
        The mechanism's stream position, or ``None`` for cache/hypothesis
        answers that never entered the stream.
    epsilon_spent, delta_spent:
        Marginal accountant spend caused by this query (0 for everything
        except ``"update"`` rounds and linear measurements). The first
        mechanism round after a cold (ledger-only) resume also carries the
        restarted sparse-vector interaction's deferred lifetime budget.
    """

    session_id: str
    fingerprint: str
    value: object
    source: str
    query_index: int | None
    epsilon_spent: float
    delta_spent: float

    @property
    def free(self) -> bool:
        """Whether this answer cost zero privacy budget."""
        return self.epsilon_spent == 0.0 and self.delta_spent == 0.0


class Session:
    """One analyst's interactive run against a private dataset.

    Parameters
    ----------
    session_id:
        Stable identifier; the ledger and cache key on it.
    mechanism:
        The wrapped mechanism instance.
    mechanism_name:
        Registry name used to rebuild the mechanism on restore.
    params:
        The (JSON-documentable) parameters the mechanism was built with;
        journaled by the ledger's ``open`` record.
    analyst:
        Free-form owner tag for multi-tenant bookkeeping.
    """

    def __init__(self, session_id: str, mechanism, *,
                 mechanism_name: str = "", params: dict | None = None,
                 analyst: str = "", dataset: str = "") -> None:
        self.session_id = str(session_id)
        self.mechanism = mechanism
        self.mechanism_name = mechanism_name
        self.params = dict(params or {})
        self.analyst = analyst
        self.dataset = dataset
        self.lock = threading.RLock()
        self._state = OPEN
        self._journal_cursor = 0
        self._queries_served = 0
        #: Ledger ``seq`` of this session's newest journaled spend (``-1``
        #: before any). Snapshots carry it, so a suffix-replaying restore
        #: knows exactly which journaled spends the snapshotted accountant
        #: already contains — even when the snapshot raced other sessions'
        #: writes between the service-wide stamp and this session's
        #: capture.
        self.last_spend_seq = -1
        #: Spends owed but not yet recorded or journaled — used by cold
        #: (ledger-only) resume: the restarted mechanism's fresh
        #: sparse-vector interaction is charged the moment it is first
        #: used, not at restore time, so resume totals stay exactly the
        #: pre-crash ones until the new interaction actually touches data.
        self.pending_spends: list[dict] = []

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        """``"open"`` or ``"closed"``."""
        return self._state

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._state == CLOSED

    @property
    def halted(self) -> bool:
        """Whether the mechanism's update budget is exhausted."""
        return bool(self.mechanism.halted)

    @property
    def hypothesis_version(self) -> int | None:
        """The mechanism's monotone hypothesis version, if it has one.

        ``None`` for plug-in mechanisms without version tracking — the
        serving layer's update-aware cache then degrades gracefully to
        replay-forever for this session's hypothesis-derived answers.
        """
        version = getattr(self.mechanism, "hypothesis_version", None)
        return int(version) if version is not None else None

    @property
    def accountant(self):
        """The mechanism's :class:`PrivacyAccountant`."""
        return self.mechanism.accountant

    @property
    def queries_served(self) -> int:
        """Serving-layer rounds this session ran (mechanism + hypothesis
        answers; cache replays never reach the session). Monotone, so
        gateway metrics and load reports can diff it between polls."""
        return self._queries_served

    def close(self) -> None:
        """Mark the session closed; further answers raise."""
        with self.lock:
            self._state = CLOSED

    # -- answering ---------------------------------------------------------

    def answer(self, query) -> tuple[object, str, int]:
        """One mechanism round. Returns ``(value, source, query_index)``.

        ``source`` is ``"update"`` or ``"no-update"``. Raises
        :class:`MechanismHalted` when the update budget is exhausted —
        callers decide whether to fall back to :meth:`answer_from_hypothesis`.
        """
        with self.lock:
            self._check_open()
            with trace.span("session.answer", session=self.session_id):
                raw = self.mechanism.answer(query)
            self._queries_served += 1
        value, from_update, index = _unpack(raw)
        return value, ("update" if from_update else "no-update"), index

    def answer_from_hypothesis(self, query) -> object:
        """Answer from the public hypothesis only — pure post-processing."""
        with self.lock:
            self._check_open()
            if isinstance(query, LinearQuery):
                value = self.mechanism.hypothesis.dot(query.table)
            else:
                value = self.mechanism.answer_from_hypothesis(query).theta
            self._queries_served += 1
            return value

    def prewarm(self, queries) -> int:
        """Hand a whole mechanism lane to the engine before serving it.

        Delegates to the mechanism's ``prewarm`` hook (e.g.
        :meth:`repro.core.pmw_cm.PrivateMWConvex.prewarm`, which
        batch-computes data-side minimizations in one vectorized pass).
        Mechanisms without the hook — or lanes too small to benefit — are
        a no-op. Never a privacy event: pre-warming only reorders
        non-private evaluation work.

        Returns the number of batch-prepared entries (0 when skipped).
        """
        warm = getattr(self.mechanism, "prewarm", None)
        if warm is None:
            return 0
        with self.lock:
            self._check_open()
            return int(warm(queries))

    # -- budget journaling ---------------------------------------------------

    def consume_unjournaled(self) -> list[dict]:
        """Accountant spends not yet handed to the ledger; advances the
        cursor, so each spend is returned exactly once."""
        with self.lock:
            records = self.accountant.to_records()
            fresh = records[self._journal_cursor:]
            self._journal_cursor = len(records)
            return fresh

    def flush_pending_spends(self) -> None:
        """Record any deferred spends into the accountant (budget-checked).

        Called before the mechanism's first data access after a cold
        resume; the recorded spends surface through the next
        :meth:`consume_unjournaled`, so they reach the ledger before the
        answer they pay for is released."""
        with self.lock:
            while self.pending_spends:
                record = self.pending_spends[0]
                # Spend before dequeueing, so a budget refusal leaves the
                # remaining obligations parked rather than dropped.
                self.accountant.spend(record["epsilon"], record["delta"],
                                      label=record.get("label", ""))
                self.pending_spends.pop(0)

    # -- snapshot / restore ---------------------------------------------------

    def snapshot(self) -> dict:
        """Session metadata plus the mechanism's full snapshot.

        Params are stored in journal form: values that cannot be
        serialized (e.g. a live oracle instance) become
        ``__unjournalable__`` markers, and restoring such a session
        requires ``params_override`` — same contract as the ledger.
        """
        from repro.serve.ledger import jsonable_params

        with self.lock:
            if not hasattr(self.mechanism, "snapshot"):
                raise ValidationError(
                    f"mechanism {type(self.mechanism).__name__} does not "
                    f"support snapshots"
                )
            return {
                "session_id": self.session_id,
                "mechanism": self.mechanism_name,
                "params": jsonable_params(self.params),
                "analyst": self.analyst,
                "dataset": self.dataset,
                "state": self._state,
                "hypothesis_version": self.hypothesis_version,
                "queries_served": self._queries_served,
                "journal_cursor": self._journal_cursor,
                "last_spend_seq": self.last_spend_seq,
                "pending_spends": [dict(r) for r in self.pending_spends],
                "mechanism_snapshot": self.mechanism.snapshot(),
            }

    @classmethod
    def restore(cls, snapshot: dict, mechanism) -> "Session":
        """Rebuild around an already-restored mechanism instance."""
        session = cls(
            snapshot["session_id"], mechanism,
            mechanism_name=snapshot.get("mechanism", ""),
            params=snapshot.get("params"),
            analyst=snapshot.get("analyst", ""),
            dataset=snapshot.get("dataset", ""),
        )
        session._state = snapshot.get("state", OPEN)
        session._queries_served = int(snapshot.get("queries_served", 0))
        session._journal_cursor = int(snapshot.get("journal_cursor", 0))
        session.last_spend_seq = int(snapshot.get("last_spend_seq", -1))
        session.pending_spends = [
            dict(r) for r in snapshot.get("pending_spends", [])
        ]
        return session

    # -- internals ------------------------------------------------------------

    def _check_open(self) -> None:
        if self._state == CLOSED:
            raise ValidationError(
                f"session {self.session_id!r} is closed"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(id={self.session_id!r}, "
            f"mechanism={self.mechanism_name or type(self.mechanism).__name__}, "
            f"state={self._state!r}, halted={self.halted})"
        )


def _unpack(raw) -> tuple[object, bool, int]:
    """Normalize a mechanism answer to ``(value, from_update, index)``."""
    if isinstance(raw, PMWAnswer):
        return raw.theta, raw.from_update, raw.query_index
    return raw.value, raw.from_update, raw.query_index


def query_fingerprint(query) -> str:
    """Canonical fingerprint for any servable query type."""
    fingerprint = getattr(query, "fingerprint", None)
    if fingerprint is None:
        raise ValidationError(
            f"query of type {type(query).__name__} has no fingerprint(); "
            f"servable queries are LossFunction and LinearQuery"
        )
    return fingerprint()


def try_fingerprint(query) -> str | None:
    """``query_fingerprint`` that degrades to ``None`` for queries whose
    state cannot be fingerprinted (e.g. a custom loss storing a callable).

    Such queries are still servable — they just can't ride the answer
    cache or in-batch dedup, mirroring the mechanism layer's own
    uncached-but-answered treatment."""
    from repro.exceptions import LossSpecificationError

    try:
        return query_fingerprint(query)
    except LossSpecificationError:
        return None


__all__ = ["Session", "ServeResult", "query_fingerprint",
           "try_fingerprint", "OPEN", "CLOSED"]
