"""`repro.serve.shard` — multi-process session sharding with failover.

Sessions are partitioned across worker processes by consistent-hash
routing (:class:`ConsistentHashRouter`); each shard process owns its
own write-ahead ledger + checkpointer, so a killed shard restores from
checkpoint + journal suffix with bitwise-exact budget totals
(:class:`ShardedService`). Supervisor and workers speak a versioned
binary frame protocol over the shard pipe (:mod:`~repro.serve.shard.
frames`) with fingerprint-interned repeat queries
(:class:`InternTable`/:class:`InternMirror`) and zero-copy
shared-memory dataset views (:mod:`repro.data.shm`).
:class:`FaultPlan` gives the chaos suite deterministic in-worker kill
points. See ``docs/serve.md`` ("Sharding & failover" and "Wire
protocol") for topology, knobs, frame layout, and failure semantics.
"""

from repro.serve.shard.frames import (
    VERSION as FRAME_VERSION,
    Frame,
    decode_frame,
    encode_frame,
)
from repro.serve.shard.interning import (
    InternMiss,
    InternMirror,
    InternTable,
)
from repro.serve.shard.router import DEFAULT_VNODES, ConsistentHashRouter
from repro.serve.shard.sharded import (
    HEALTH_FILE,
    ShardedService,
    read_shard_health,
)
from repro.serve.shard.worker import FaultPlan, ShardSpec, build_service

__all__ = [
    "ConsistentHashRouter", "DEFAULT_VNODES", "FRAME_VERSION",
    "FaultPlan", "Frame", "HEALTH_FILE", "InternMiss", "InternMirror",
    "InternTable", "ShardSpec", "ShardedService", "build_service",
    "decode_frame", "encode_frame", "read_shard_health",
]
