"""`repro.serve.shard` — multi-process session sharding with failover.

Sessions are partitioned across worker processes by consistent-hash
routing (:class:`ConsistentHashRouter`); each shard process owns its
own write-ahead ledger + checkpointer, so a killed shard restores from
checkpoint + journal suffix with bitwise-exact budget totals
(:class:`ShardedService`). :class:`FaultPlan` gives the chaos suite
deterministic in-worker kill points. See ``docs/serve.md`` ("Sharding
& failover") for topology, knobs, and failure semantics.
"""

from repro.serve.shard.router import DEFAULT_VNODES, ConsistentHashRouter
from repro.serve.shard.sharded import (
    HEALTH_FILE,
    ShardedService,
    read_shard_health,
)
from repro.serve.shard.worker import FaultPlan, ShardSpec, build_service

__all__ = [
    "ConsistentHashRouter", "DEFAULT_VNODES",
    "FaultPlan", "HEALTH_FILE", "ShardSpec", "ShardedService",
    "build_service", "read_shard_health",
]
