"""Binary frame protocol for the supervisor <-> shard-worker pipe.

Until this module, every shard RPC was a pickled ``(verb, payload)``
tuple: convenient, but the pickle round trip dominated the per-call cost
(E22 measured ~300 us per cached-path call against a 36 us raw pipe
RTT), and the wire format was whatever pickle happened to emit — no
versioning, no way to refuse a frame from a different build, and no way
to audit what crossed the boundary. This module replaces it with a
hand-rolled, versioned binary format:

Frame layout (little-endian)::

    offset  size  field
    ------  ----  -----
    0       2     magic  b"RF"
    2       1     protocol version (``VERSION``)
    3       1     kind: 1=request, 2=reply-ok, 3=reply-err
    4       1     verb code (``VERBS``; 0 in replies to a bad frame)
    5       1     flags (pickled / deadline / idempotent bits)
    6       2     section count (u16)
    8       8     deadline, remaining seconds (f64; valid iff
                  ``FLAG_DEADLINE`` — monotonic clocks do not cross
                  processes, so deadlines travel as remaining time)
    16      ...   sections: u32 byte length + value-codec payload, each

Every section is one value encoded with a type-tagged codec covering the
RPC vocabulary structurally — ``None``/bools/ints/floats/str/bytes,
lists/tuples/dicts, C-contiguous ndarrays (dtype + shape + raw bytes),
and :class:`~repro.serve.session.ServeResult` — so the hot serving path
(requests in, result batches out) crosses the pipe without pickle.
Pickle survives only as an explicit escape hatch (``_T_PICKLE``) for
objects outside that vocabulary: first-sight query objects (wrapped in
``_T_QDEF`` so the worker interns them — see
:mod:`repro.serve.shard.interning`) and exceptions riding reply-err
frames. Decoders can refuse the escape hatch outright
(``allow_pickle=False``), which is how ``tools/check_wire_protocol.py``
proves the golden fixtures pickle-free.

Decoding failures are typed (:class:`~repro.exceptions.FrameTruncated`,
:class:`~repro.exceptions.FrameCorrupt`,
:class:`~repro.exceptions.FrameVersionMismatch`) — never a bare
``struct.error`` or ``KeyError`` — because the supervisor's handling
depends on which it is: a truncated frame on a live pipe means the pipe
is desynchronized and the handle must be retired.
"""

from __future__ import annotations

import dataclasses
import pickle
import struct

import numpy as np

from repro.exceptions import (
    FrameCorrupt,
    FrameTruncated,
    FrameVersionMismatch,
)
from repro.serve.session import ServeResult

MAGIC = b"RF"
VERSION = 1

KIND_REQUEST = 1
KIND_REPLY_OK = 2
KIND_REPLY_ERR = 3
_KINDS = frozenset({KIND_REQUEST, KIND_REPLY_OK, KIND_REPLY_ERR})

#: Flag bits. ``FLAG_PICKLED`` marks frames whose sections contain at
#: least one pickle escape hatch (``_T_PICKLE``/``_T_QDEF``) — an audit
#: aid, not a decode precondition. ``FLAG_IDEMPOTENT`` marks serving
#: requests that carry idempotency keys.
FLAG_PICKLED = 0x01
FLAG_DEADLINE = 0x02
FLAG_IDEMPOTENT = 0x04

#: Verb codes. Code 0 is reserved for replies to frames whose verb could
#: not be decoded. New verbs append — codes are wire-stable.
VERBS = {
    "ping": 1,
    "open_session": 2,
    "close_session": 3,
    "session_ids": 4,
    "session_info": 5,
    "serve_batch": 6,
    "submit": 7,
    "budget_records": 8,
    "checkpoint": 9,
    "metrics": 10,
    "shutdown": 11,
}
VERB_NAMES = {code: name for name, code in VERBS.items()}

_HEADER = struct.Struct("<2sBBBBHd")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

#: Value-codec type tags (wire-stable; new tags append).
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3       # i64
_T_BIGINT = 4    # u32 length + signed little-endian bytes
_T_FLOAT = 5     # f64
_T_STR = 6       # u32 length + utf-8
_T_BYTES = 7     # u32 length + raw
_T_LIST = 8      # u32 count + values
_T_TUPLE = 9     # u32 count + values
_T_DICT = 10     # u32 count + key/value value pairs
_T_NDARRAY = 11  # dtype str + u8 ndim + i64 dims + raw C-order bytes
_T_RESULT = 12   # ServeResult: 7 fields, declaration order
_T_QREF = 13     # 16-byte query fingerprint (must be interned already)
_T_QDEF = 14     # 16-byte fingerprint + u32 length + pickled query
_T_PICKLE = 15   # u32 length + pickle (the escape hatch)

#: Interned query fingerprints are the first 16 bytes of the query's
#: canonical SHA-256 (:func:`repro.losses.fingerprint.fingerprint_of`).
FINGERPRINT_BYTES = 16

_RESULT_FIELDS = ("session_id", "fingerprint", "value", "source",
                  "query_index", "epsilon_spent", "delta_spent")

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


class _Encoder:
    """One value-codec section under construction.

    ``intern`` is the supervisor's interning hook (see
    :meth:`repro.serve.shard.interning.InternMirror.encoder`): called
    with every object the structural codec does not recognize, it
    returns ``(define, fingerprint)`` to emit a ``_T_QDEF``/``_T_QREF``,
    or ``None`` to fall through to the pickle escape hatch.
    """

    __slots__ = ("out", "intern", "pickled")

    def __init__(self, intern=None) -> None:
        self.out = bytearray()
        self.intern = intern
        self.pickled = False

    def value(self, obj) -> None:  # noqa: C901 - one branch per tag
        out = self.out
        if obj is None:
            out.append(_T_NONE)
        elif obj is True:
            out.append(_T_TRUE)
        elif obj is False:
            out.append(_T_FALSE)
        elif type(obj) is int:
            if _INT64_MIN <= obj <= _INT64_MAX:
                out.append(_T_INT)
                out += _I64.pack(obj)
            else:
                raw = obj.to_bytes((obj.bit_length() + 8) // 8,
                                   "little", signed=True)
                out.append(_T_BIGINT)
                out += _U32.pack(len(raw))
                out += raw
        elif type(obj) is float:
            out.append(_T_FLOAT)
            out += _F64.pack(obj)
        elif type(obj) is str:
            raw = obj.encode("utf-8")
            out.append(_T_STR)
            out += _U32.pack(len(raw))
            out += raw
        elif type(obj) is bytes:
            out.append(_T_BYTES)
            out += _U32.pack(len(obj))
            out += obj
        elif type(obj) is list:
            out.append(_T_LIST)
            out += _U32.pack(len(obj))
            for item in obj:
                self.value(item)
        elif type(obj) is tuple:
            out.append(_T_TUPLE)
            out += _U32.pack(len(obj))
            for item in obj:
                self.value(item)
        elif type(obj) is dict:
            out.append(_T_DICT)
            out += _U32.pack(len(obj))
            for key, item in obj.items():
                self.value(key)
                self.value(item)
        elif isinstance(obj, np.ndarray) and not obj.dtype.hasobject:
            # ascontiguousarray promotes 0-d to 1-d; 0-d is already
            # contiguous, so only copy when the layout demands it.
            array = obj if obj.flags.c_contiguous \
                else np.ascontiguousarray(obj)
            dtype = array.dtype.str.encode("ascii")
            out.append(_T_NDARRAY)
            out.append(len(dtype))
            out += dtype
            out.append(array.ndim)
            for dim in array.shape:
                out += _I64.pack(dim)
            out += array.tobytes()
        elif type(obj) is ServeResult:
            out.append(_T_RESULT)
            for name in _RESULT_FIELDS:
                self.value(getattr(obj, name))
        elif isinstance(obj, (bool, np.bool_)):  # bool subclasses, np.bool_
            out.append(_T_TRUE if obj else _T_FALSE)
        elif isinstance(obj, (int, np.integer)):
            self.value(int(obj))
        elif isinstance(obj, (float, np.floating)):
            self.value(float(obj))
        else:
            self._fallback(obj)

    def _fallback(self, obj) -> None:
        """Interning hook first, pickle escape hatch last."""
        if self.intern is not None:
            action = self.intern(obj)
            if action is not None:
                define, fingerprint = action
                if define:
                    blob = pickle.dumps(obj, protocol=5)
                    self.out.append(_T_QDEF)
                    self.out += fingerprint
                    self.out += _U32.pack(len(blob))
                    self.out += blob
                    self.pickled = True
                else:
                    self.out.append(_T_QREF)
                    self.out += fingerprint
                return
        blob = pickle.dumps(obj, protocol=5)
        self.out.append(_T_PICKLE)
        self.out += _U32.pack(len(blob))
        self.out += blob
        self.pickled = True


class _Decoder:
    """Bounds-checked reader over one section's bytes.

    ``table`` is the worker's :class:`~repro.serve.shard.interning.
    InternTable`; required to resolve ``_T_QREF`` (its ``lookup`` raises
    :class:`~repro.serve.shard.interning.InternMiss` for unknown
    fingerprints — an application-level error the worker reports in a
    reply-err frame, distinct from frame corruption).
    """

    __slots__ = ("buf", "pos", "end", "allow_pickle", "table")

    def __init__(self, buf, start: int, end: int, *,
                 allow_pickle: bool = True, table=None) -> None:
        self.buf = buf
        self.pos = start
        self.end = end
        self.allow_pickle = allow_pickle
        self.table = table

    def _take(self, count: int) -> bytes:
        if self.end - self.pos < count:
            raise FrameTruncated(
                f"frame section ended {count - (self.end - self.pos)} "
                f"bytes early")
        raw = bytes(self.buf[self.pos:self.pos + count])
        self.pos += count
        return raw

    def _u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def value(self):  # noqa: C901 - one branch per tag
        tag = self._take(1)[0]
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return _I64.unpack(self._take(8))[0]
        if tag == _T_BIGINT:
            return int.from_bytes(self._take(self._u32()), "little",
                                  signed=True)
        if tag == _T_FLOAT:
            return _F64.unpack(self._take(8))[0]
        if tag == _T_STR:
            raw = self._take(self._u32())
            try:
                return raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise FrameCorrupt(f"invalid utf-8 in string: {exc}") \
                    from None
        if tag == _T_BYTES:
            return self._take(self._u32())
        if tag == _T_LIST:
            return [self.value() for _ in range(self._u32())]
        if tag == _T_TUPLE:
            return tuple(self.value() for _ in range(self._u32()))
        if tag == _T_DICT:
            count = self._u32()
            out = {}
            for _ in range(count):
                key = self.value()
                try:
                    out[key] = self.value()
                except TypeError as exc:  # unhashable decoded key
                    raise FrameCorrupt(f"unhashable dict key: {exc}") \
                        from None
            return out
        if tag == _T_NDARRAY:
            dtype_raw = self._take(self._take(1)[0])
            try:
                dtype = np.dtype(dtype_raw.decode("ascii"))
            except (TypeError, ValueError, SyntaxError,
                    UnicodeDecodeError):
                # numpy parses comma-separated dtype strings through a
                # literal-eval, so corrupt bytes can surface SyntaxError
                # alongside the expected TypeError/ValueError.
                raise FrameCorrupt(
                    f"invalid ndarray dtype {dtype_raw!r}") from None
            if dtype.hasobject:
                raise FrameCorrupt("object-dtype ndarray on the wire")
            if dtype.itemsize == 0:
                # A zero-itemsize dtype (e.g. ``V0``) would zero out the
                # payload-length check below and let absurd dims through
                # to reshape.
                raise FrameCorrupt(
                    f"zero-itemsize ndarray dtype {dtype!r}")
            ndim = self._take(1)[0]
            shape = tuple(_I64.unpack(self._take(8))[0]
                          for _ in range(ndim))
            if any(dim < 0 for dim in shape):
                raise FrameCorrupt(f"negative ndarray dim in {shape}")
            count = 1
            for dim in shape:
                count *= dim
            raw = self._take(count * dtype.itemsize)
            try:
                # frombuffer over the frame bytes: the array is a
                # read-only view, no copy — results are treated as
                # immutable values.
                return np.frombuffer(raw, dtype=dtype).reshape(shape)
            except ValueError as exc:
                # The byte-length check above can pass while numpy still
                # balks (a zero-product shape with one absurd dim).
                raise FrameCorrupt(
                    f"ndarray reconstruction failed: {exc}") from None
        if tag == _T_RESULT:
            fields = {name: self.value() for name in _RESULT_FIELDS}
            return ServeResult(**fields)
        if tag == _T_QREF:
            fingerprint = self._take(FINGERPRINT_BYTES)
            if self.table is None:
                raise FrameCorrupt(
                    "interned query reference but no intern table")
            return self.table.lookup(fingerprint)
        if tag == _T_QDEF:
            fingerprint = self._take(FINGERPRINT_BYTES)
            obj = self._unpickle(self._take(self._u32()))
            if self.table is not None:
                self.table.define(fingerprint, obj)
            return obj
        if tag == _T_PICKLE:
            return self._unpickle(self._take(self._u32()))
        raise FrameCorrupt(f"unknown value tag {tag}")

    def _unpickle(self, blob: bytes):
        if not self.allow_pickle:
            raise FrameCorrupt(
                "pickled section refused (decoder ran with "
                "allow_pickle=False)")
        try:
            return pickle.loads(blob)
        except Exception as exc:  # noqa: BLE001 - any unpickle failure
            raise FrameCorrupt(f"undecodable pickle section: {exc}") \
                from None


@dataclasses.dataclass(frozen=True)
class Frame:
    """One decoded frame: header fields plus decoded section values.

    ``deadline`` is remaining seconds (the wire form) or ``None``;
    rebuild a live :class:`~repro.serve.resilience.Deadline` with
    ``Deadline.from_wire``.
    """

    kind: int
    verb: int
    flags: int
    deadline: float | None
    values: tuple

    @property
    def verb_name(self) -> str:
        return VERB_NAMES.get(self.verb, f"verb-{self.verb}")


def encode_frame(kind: int, verb: int, values, *, deadline=None,
                 intern=None, flags: int = 0) -> bytes:
    """Encode one frame; ``values`` become its sections, in order.

    ``deadline`` is remaining seconds (``Deadline.to_wire()``) or
    ``None``; ``intern`` is forwarded to the value codec (requests
    only). ``flags`` are OR-ed with the computed ``FLAG_PICKLED`` /
    ``FLAG_DEADLINE`` bits.
    """
    sections = []
    pickled = False
    for value in values:
        encoder = _Encoder(intern=intern)
        encoder.value(value)
        pickled = pickled or encoder.pickled
        sections.append(encoder.out)
    if pickled:
        flags |= FLAG_PICKLED
    wire_deadline = 0.0
    if deadline is not None:
        flags |= FLAG_DEADLINE
        wire_deadline = float(deadline)
    out = bytearray(_HEADER.pack(MAGIC, VERSION, kind, verb, flags,
                                 len(sections), wire_deadline))
    for section in sections:
        out += _U32.pack(len(section))
        out += section
    return bytes(out)


def decode_frame(data, *, allow_pickle: bool = True, table=None) -> Frame:
    """Decode one frame produced by :func:`encode_frame`.

    Raises :class:`~repro.exceptions.FrameTruncated` when ``data`` ends
    before its declared sections do, :class:`~repro.exceptions.
    FrameVersionMismatch` on a foreign protocol version, and
    :class:`~repro.exceptions.FrameCorrupt` for everything else that is
    structurally wrong (bad magic, unknown kind or tag, trailing bytes,
    refused pickles).
    """
    if len(data) < _HEADER.size:
        raise FrameTruncated(
            f"frame header needs {_HEADER.size} bytes, got {len(data)}")
    magic, version, kind, verb, flags, count, wire_deadline = \
        _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise FrameCorrupt(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise FrameVersionMismatch(
            f"frame protocol version {version}, this build speaks only "
            f"{VERSION} — mixed supervisor/worker installs are refused",
            got=version, expected=VERSION)
    if kind not in _KINDS:
        raise FrameCorrupt(f"unknown frame kind {kind}")
    values = []
    pos = _HEADER.size
    for _ in range(count):
        if len(data) - pos < 4:
            raise FrameTruncated("frame ended inside a section header")
        (length,) = _U32.unpack_from(data, pos)
        pos += 4
        if len(data) - pos < length:
            raise FrameTruncated(
                f"section declares {length} bytes, "
                f"{len(data) - pos} remain")
        decoder = _Decoder(data, pos, pos + length,
                           allow_pickle=allow_pickle, table=table)
        values.append(decoder.value())
        if decoder.pos != pos + length:
            raise FrameCorrupt(
                f"section has {pos + length - decoder.pos} trailing "
                f"bytes after its value")
        pos += length
    if pos != len(data):
        raise FrameCorrupt(
            f"frame has {len(data) - pos} trailing bytes after its "
            f"last section")
    deadline = wire_deadline if flags & FLAG_DEADLINE else None
    return Frame(kind=kind, verb=verb, flags=flags, deadline=deadline,
                 values=tuple(values))


__all__ = [
    "FINGERPRINT_BYTES", "FLAG_DEADLINE", "FLAG_IDEMPOTENT",
    "FLAG_PICKLED", "Frame", "KIND_REPLY_ERR", "KIND_REPLY_OK",
    "KIND_REQUEST", "MAGIC", "VERBS", "VERB_NAMES", "VERSION",
    "decode_frame", "encode_frame",
]
