"""Fingerprint-keyed query interning across the shard RPC boundary.

Query objects are the one thing on the serving hot path the frame codec
cannot encode structurally: a loss is an arbitrary registered class, so
first sight of a query ships as a pickled ``_T_QDEF`` section (~1 KB for
the E22 quadratic family). But analysts repeat queries — the whole PMW
serving layer is built around fingerprint-keyed answer caches — so the
supervisor should not re-pickle a query the worker has already seen.
Interning makes repeats cheap: after first sight, the same query crosses
the pipe as its 16-byte canonical fingerprint (``_T_QREF``).

Both ends keep an LRU table keyed by the first 16 bytes of the query's
canonical SHA-256 (:func:`repro.losses.fingerprint.fingerprint_of` —
class + domain + numerical parameters, cosmetic state excluded, so two
analyst-rebuilt but mathematically equal queries intern to one entry).
The supervisor's :class:`InternMirror` holds only fingerprints; the
worker's :class:`InternTable` holds the live objects. The mirror stays
exact without any acknowledgement traffic because the pipe is
one-in-flight per shard and encoding happens under the handle lock: the
worker decodes define/reference operations in exactly the order the
supervisor encoded them, so identical LRU discipline on both ends
produces identical eviction sequences.

That determinism is the fast path, not the correctness story. If the
ends ever disagree — the canonical case is a worker restart, which
starts an empty table while the old mirror is retired with its handle;
a defensive case is any eviction drift — the worker answers a
``_T_QREF`` it cannot resolve with a typed :class:`InternMiss`, and the
supervisor resets its mirror and resends the request once with every
query as a full definition. A miss therefore costs one extra round
trip, never a wrong answer.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.exceptions import ReproError
from repro.losses.fingerprint import fingerprint_of, memoized_fingerprint

#: Entries per intern table. Evictions are deterministic and mirrored,
#: so the capacity only bounds worker memory (en-tabled query objects);
#: a workload cycling through more than this many distinct queries
#: degrades to definition resends, not errors.
DEFAULT_CAPACITY = 512

#: Wire fingerprints are the first 16 bytes of the canonical SHA-256.
FINGERPRINT_BYTES = 16


class InternMiss(ReproError):
    """A worker was asked to resolve a fingerprint it has not interned.

    Crosses the pipe as a reply-err payload, so it must stay picklable
    with its fingerprint intact (hence ``__reduce__``). The supervisor
    treats it as a protocol-level retry signal — reset the mirror,
    resend with definitions — never as an application error.
    """

    def __init__(self, fingerprint_hex: str) -> None:
        super().__init__(
            f"no interned query for fingerprint {fingerprint_hex}; "
            f"supervisor must resend the definition")
        self.fingerprint_hex = fingerprint_hex

    def __reduce__(self):
        return (InternMiss, (self.fingerprint_hex,))


def wire_fingerprint(obj) -> bytes | None:
    """The 16-byte wire fingerprint of a query, or ``None``.

    ``None`` means the object is not canonically fingerprintable (an
    object-dtype array in its state, a ``__slots__`` class that cannot
    memoize, ...) and must use the plain pickle escape hatch instead of
    interning. Never raises: interning is an optimization, and an
    un-fingerprintable object is simply not a candidate.
    """
    try:
        digest = memoized_fingerprint(obj)
    except Exception:  # noqa: BLE001 - memo attr may be unsettable
        try:
            digest = fingerprint_of(obj)
        except Exception:  # noqa: BLE001 - not fingerprintable at all
            return None
    return bytes.fromhex(digest)[:FINGERPRINT_BYTES]


class InternTable:
    """Worker-side LRU of live query objects, keyed by fingerprint.

    ``define`` and ``lookup`` must be called in wire order (the worker
    loop is single-threaded, so this is free) — the eviction sequence is
    part of the protocol, mirrored by the supervisor's
    :class:`InternMirror`.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[bytes, object] = OrderedDict()

    def define(self, fingerprint: bytes, obj) -> None:
        entries = self._entries
        if fingerprint in entries:
            entries.move_to_end(fingerprint)
            entries[fingerprint] = obj
        else:
            entries[fingerprint] = obj
            while len(entries) > self.capacity:
                entries.popitem(last=False)

    def lookup(self, fingerprint: bytes):
        entries = self._entries
        try:
            obj = entries[fingerprint]
        except KeyError:
            raise InternMiss(fingerprint.hex()) from None
        entries.move_to_end(fingerprint)
        return obj

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: bytes) -> bool:
        return fingerprint in self._entries


class InternMirror:
    """Supervisor-side deterministic mirror of a worker's intern table.

    Holds fingerprints only (the supervisor never needs the objects
    back) and replays the exact LRU discipline of :class:`InternTable`,
    so "is this fingerprint still interned worker-side?" is answerable
    locally. One mirror per shard-handle incarnation: a restarted worker
    gets a fresh handle and with it a fresh, empty mirror — that is the
    invalidation story, no epoch numbers on the wire.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = int(capacity)
        self._known: OrderedDict[bytes, None] = OrderedDict()

    def note(self, fingerprint: bytes, *, force_define: bool = False) -> bool:
        """Record one encode of ``fingerprint``; ``True`` = send a
        definition, ``False`` = a bare reference suffices.

        ``force_define`` (the post-:class:`InternMiss` resend) emits a
        definition even for known fingerprints; the worker's ``define``
        is an upsert, so the mirrored LRU sequence stays identical.
        """
        known = self._known
        if fingerprint in known:
            known.move_to_end(fingerprint)
            return True if force_define else False
        known[fingerprint] = None
        while len(known) > self.capacity:
            known.popitem(last=False)
        return True

    def encoder(self, *, force_define: bool = False):
        """The value-codec interning hook for one request encode.

        Returns a callable mapping an un-encodable object to
        ``(define, fingerprint)`` — or ``None`` for objects that are not
        fingerprintable (those fall through to the pickle escape hatch,
        uninterned).
        """
        def hook(obj):
            fingerprint = wire_fingerprint(obj)
            if fingerprint is None:
                return None
            return (self.note(fingerprint, force_define=force_define),
                    fingerprint)
        return hook

    def reset(self) -> None:
        """Forget everything (the :class:`InternMiss` recovery path)."""
        self._known.clear()

    def __len__(self) -> int:
        return len(self._known)

    def __contains__(self, fingerprint: bytes) -> bool:
        return fingerprint in self._known


__all__ = [
    "DEFAULT_CAPACITY", "FINGERPRINT_BYTES", "InternMiss", "InternMirror",
    "InternTable", "wire_fingerprint",
]
