"""Consistent-hash session→shard routing.

The sharded service must answer "which process owns this session?"
with three properties:

- **Deterministic across restarts.** Routing is a pure function of the
  session id and the shard topology — no routing table to persist, no
  way for a restarted supervisor to send a session's queries to a shard
  whose ledger never heard of it.
- **Stable under resharding.** Adding or removing one shard remaps
  roughly ``1/n`` of the sessions, not all of them — the classic
  consistent-hashing bound. Each shard owns ``vnodes`` pseudo-random
  arcs of a hash ring, so removing a shard hands its arcs to whichever
  shards happen to be clockwise-next, and adding one only *steals* arcs
  (a session never moves between two surviving shards).
- **Balanced.** With the default 128 virtual nodes per shard the
  per-shard load spread is a few percent, good enough that the
  benchmark's per-shard rps stays within noise of even.

Hashing is the first 8 bytes of SHA-256 — stable across processes and
Python builds (``hash()`` is salted per process and would break
determinism), and uniform enough that no rebalancing heuristics are
needed. The property suite (``tests/property/test_shard_router.py``)
pins all three properties over Hypothesis-generated session-id sets.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.exceptions import ValidationError

#: Virtual nodes per shard. 128 keeps the max/mean load ratio under
#: ~1.25 for realistic shard counts while the ring stays tiny
#: (n_shards * 128 entries).
DEFAULT_VNODES = 128


def _hash64(key: str) -> int:
    """First 8 bytes of SHA-256 as an integer — process-stable."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRouter:
    """Hash ring mapping session ids to shard ids.

    Parameters
    ----------
    shard_ids:
        Initial shard identity strings (order-insensitive: the ring
        layout depends only on the *set* of ids and ``vnodes``).
    vnodes:
        Virtual nodes per shard (see module docstring).
    """

    def __init__(self, shard_ids, *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValidationError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._shards: set[str] = set()
        self._ring: list[tuple[int, str]] = []
        self._keys: list[int] = []
        for shard_id in shard_ids:
            self.add_shard(shard_id)
        if not self._shards:
            raise ValidationError("router needs at least one shard")

    # -- topology ------------------------------------------------------------

    @property
    def shards(self) -> list[str]:
        """Current shard ids, sorted."""
        return sorted(self._shards)

    def add_shard(self, shard_id: str) -> None:
        """Add a shard's virtual nodes to the ring."""
        if not isinstance(shard_id, str) or not shard_id:
            raise ValidationError(
                f"shard id must be a non-empty str, got {shard_id!r}")
        if shard_id in self._shards:
            raise ValidationError(f"shard {shard_id!r} already on the ring")
        self._shards.add(shard_id)
        for index in range(self.vnodes):
            point = _hash64(f"shard:{shard_id}:vnode:{index}")
            at = bisect.bisect_left(self._keys, point)
            # SHA-256 collisions between distinct vnode keys are not a
            # realistic event; ties break by shard id for determinism.
            while (at < len(self._keys) and self._keys[at] == point
                   and self._ring[at][1] < shard_id):
                at += 1
            self._keys.insert(at, point)
            self._ring.insert(at, (point, shard_id))

    def remove_shard(self, shard_id: str) -> None:
        """Remove a shard's virtual nodes from the ring."""
        if shard_id not in self._shards:
            raise ValidationError(f"shard {shard_id!r} not on the ring")
        if len(self._shards) == 1:
            raise ValidationError("cannot remove the last shard")
        self._shards.discard(shard_id)
        keep = [entry for entry in self._ring if entry[1] != shard_id]
        self._ring = keep
        self._keys = [point for point, _ in keep]

    # -- routing -------------------------------------------------------------

    def route(self, session_id: str) -> str:
        """The shard owning ``session_id`` (pure, deterministic)."""
        point = _hash64(f"session:{session_id}")
        at = bisect.bisect_right(self._keys, point)
        if at == len(self._ring):
            at = 0  # wrap: the ring is circular
        return self._ring[at][1]

    def assignments(self, session_ids) -> dict[str, str]:
        """``{session_id: shard_id}`` for a batch of sessions."""
        return {sid: self.route(sid) for sid in session_ids}


__all__ = ["ConsistentHashRouter", "DEFAULT_VNODES"]
