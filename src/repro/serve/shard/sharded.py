"""`ShardedService` — sessions partitioned across worker processes.

The single-process gateway (E19) tops out near 257 rps because every
multiplicative-weights update competes for one GIL. This module escapes
it: sessions are partitioned across ``shards`` worker **processes** by
consistent-hash routing (:mod:`~repro.serve.shard.router`), each shard
owning its own write-ahead ledger + checkpointer directory
(:mod:`~repro.serve.shard.worker`). The parent supervises: it mints
session ids, routes each call to the owning shard over a per-shard
pipe, watches process sentinels for deaths, and — because routing is a
pure function of (session id, topology) — restores a killed shard onto
the *same* directory, where checkpoint + journal-suffix replay rebuilds
bitwise-exact accountant totals.

``ShardedService`` exposes the same serving surface the gateway
coalesces against (``session``/``serve_session_batch``/``close``), so
``sharded.gateway(workers=...)`` gives admission control, per-session
FIFO, and coalesced batches across all shards with zero gateway
changes — gateway worker threads spend their time blocked in pipe
``recv`` (no GIL held), so parent-side threading scales with shard
count.

Failure semantics
-----------------
A request routed to a dead shard — or in flight when its shard dies —
raises :class:`~repro.exceptions.ShardUnavailable`: a typed shed,
never silent loss. The restored shard's ledger is the authority on
whether the dying request's spends landed; because every spend is
journaled *before* its answer is released and checkpoints are taken
*after* the journal advances, re-asking the same query after restore
either replays the released answer from the restored cache (zero new
budget) or serves it fresh — never a double spend. The chaos suite
(``tests/chaos/``) pins this with deterministic kill points, SIGKILL
under load, and torn-journal injection.

Observability
-------------
The supervisor's own registry carries topology metrics —
``shard.alive`` gauges, ``shard.deaths``/``shard.restarts`` counters,
all shard-labeled. :meth:`ShardedService.metrics_snapshot` pulls each
live shard's registry snapshot over RPC and merges everything into one
:class:`~repro.obs.MetricsRegistry` document
(:meth:`~repro.obs.MetricsRegistry.merge_snapshot` — exact bucket-wise
histogram addition), caching the last pull per shard so a dead shard's
final numbers survive into later snapshots.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from multiprocessing import connection

from repro.data.shm import SharedDatasetExport
from repro.exceptions import (
    FrameError,
    ShardUnavailable,
    ValidationError,
)
from repro.obs.registry import MetricsRegistry
from repro.serve.resilience import CLOSED, CircuitBreaker, Deadline
from repro.serve.shard.frames import (
    FLAG_IDEMPOTENT,
    KIND_REPLY_ERR,
    KIND_REQUEST,
    VERBS,
    decode_frame,
    encode_frame,
)
from repro.serve.shard.interning import InternMiss, InternMirror
from repro.serve.shard.router import DEFAULT_VNODES, ConsistentHashRouter
from repro.serve.shard.worker import (
    FaultPlan,
    ShardSpec,
    shard_worker_main,
)

_TOPOLOGY_FORMAT = "repro.serve.shard/v1"
_TOPOLOGY_FILE = "topology.json"
_HEALTH_FORMAT = "repro.serve.shard-health/v1"
HEALTH_FILE = "health.json"


def read_shard_health(directory) -> dict[str, dict]:
    """``{shard_id: health record}`` for a deployment directory.

    Reads the per-shard ``health.json`` files the supervisor persists on
    every breaker transition (death → ``open``, restore → ``half-open``,
    first successful call → ``closed``), so an operator — or the
    ``repro-experiments shards`` verb — can inspect breaker state and
    last-death timestamps *without* a live supervisor. Shards that never
    got a health file (pre-resilience deployments, or a supervisor killed
    before its first write) are reported with ``{"breaker": "unknown"}``.
    """
    directory = os.fspath(directory)
    topo_path = os.path.join(directory, _TOPOLOGY_FILE)
    shard_ids: list[str] = []
    if os.path.exists(topo_path):
        with open(topo_path, encoding="utf-8") as handle:
            shard_ids = list(json.load(handle).get("shards", []))
    else:
        shard_ids = sorted(
            entry for entry in os.listdir(directory)
            if os.path.isdir(os.path.join(directory, entry)))
    health: dict[str, dict] = {}
    for shard_id in shard_ids:
        path = os.path.join(directory, shard_id, HEALTH_FILE)
        try:
            with open(path, encoding="utf-8") as handle:
                health[shard_id] = json.load(handle)
        except (OSError, ValueError):
            health[shard_id] = {"format": _HEALTH_FORMAT,
                                "shard_id": shard_id, "breaker": "unknown",
                                "deaths": 0, "restarts": 0,
                                "last_death_unix": None}
    return health


def _mp_context():
    """Prefer ``forkserver`` (workers fork from a clean, pre-imported
    template process — no parent gateway threads to inherit locks
    from, and ~one import cost total), fall back to ``spawn``. Plain
    ``fork`` is never used: forking a parent that runs gateway worker
    threads can clone a held lock into the child and deadlock it."""
    try:
        ctx = multiprocessing.get_context("forkserver")
        ctx.set_forkserver_preload(
            ["repro.serve.service", "repro.serve.shard.worker"])
        return ctx
    except ValueError:  # platform without forkserver
        return multiprocessing.get_context("spawn")


class _SessionStub:
    """Parent-side stand-in for a session living in a shard process.

    Carries exactly what the gateway and supervisor need locally —
    identity, owning shard, and the ``closed`` flag (tracked at the
    supervisor, which is the only path that closes sessions). The live
    :class:`~repro.serve.session.Session` (mechanism, accountant, lock)
    exists only inside the shard process.
    """

    __slots__ = ("session_id", "shard_id", "mechanism_name", "analyst",
                 "closed")

    def __init__(self, session_id: str, shard_id: str,
                 mechanism_name: str, analyst: str) -> None:
        self.session_id = session_id
        self.shard_id = shard_id
        self.mechanism_name = mechanism_name
        self.analyst = analyst
        self.closed = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"_SessionStub({self.session_id!r} on {self.shard_id!r}, "
                f"closed={self.closed})")


class _ShardHandle:
    """One worker process + its RPC pipe + liveness state.

    ``call`` serializes requests on a per-handle lock (the protocol is
    one-in-flight per pipe); a broken pipe or EOF marks the handle dead
    and raises :class:`ShardUnavailable`. Handles are immutable about
    identity: a restarted shard gets a *new* handle object — and with it
    a fresh :class:`~repro.serve.shard.interning.InternMirror` and a
    fresh shared-memory export — so a caller blocked on a dying handle
    can never observe the replacement's state, and a restarted worker's
    empty intern table is never referenced against stale mirror state.
    """

    def __init__(self, shard_id: str, process, conn, *,
                 shm_export: SharedDatasetExport | None = None) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.alive = True
        self.mirror = InternMirror()
        self.shm_export = shm_export
        # Death accounting is separate from ``alive``: a caller thread
        # that trips over the corpse (EOF mid-call) marks the handle
        # dead immediately, but only the supervisor's _note_death may
        # count the death — exactly once per handle incarnation.
        self.death_counted = False

    def call(self, verb: str, payload=None, *, deadline: float | None = None,
             flags: int = 0, timeout: float | None = None):
        """One frame RPC; ``deadline`` is remaining seconds (wire form).

        Request encoding (and with it the intern mirror's bookkeeping)
        happens under the handle lock, so mirror state advances in
        exactly the order the worker decodes — the invariant that keeps
        the two LRU tables identical. An :class:`InternMiss` reply is
        retried once with every query sent as a full definition; any
        other error reply is raised as the application error it carries.
        """
        verb_code = VERBS[verb]
        for force_define in (False, True):
            with self.lock:
                if not self.alive:
                    raise ShardUnavailable(
                        f"shard {self.shard_id!r} is down",
                        shard_id=self.shard_id, reason="dead")
                request = encode_frame(
                    KIND_REQUEST, verb_code,
                    [payload] if payload is not None else [],
                    deadline=deadline, flags=flags,
                    intern=self.mirror.encoder(force_define=force_define))
                try:
                    self.conn.send_bytes(request)
                    if timeout is not None and not self.conn.poll(timeout):
                        # The shard is alive but slow; the request stays
                        # in flight and the pipe is now desynchronized,
                        # so the handle must be retired, not reused.
                        self.mark_dead()
                        raise ShardUnavailable(
                            f"shard {self.shard_id!r} did not reply to "
                            f"{verb!r} within {timeout}s",
                            shard_id=self.shard_id, reason="timeout")
                    data = self.conn.recv_bytes()
                except (EOFError, OSError, BrokenPipeError):
                    self.mark_dead()
                    raise ShardUnavailable(
                        f"shard {self.shard_id!r} died during {verb!r}",
                        shard_id=self.shard_id, reason="died-in-flight",
                    ) from None
            try:
                reply = decode_frame(data)
            except FrameError:
                # The two ends no longer agree byte-for-byte; the pipe
                # cannot be resynchronized, so retire the handle.
                self.mark_dead()
                raise
            if reply.kind != KIND_REPLY_ERR:
                return reply.values[0] if reply.values else None
            error = (reply.values[0] if reply.values
                     else ValidationError("empty shard error reply"))
            if isinstance(error, InternMiss) and not force_define:
                # The worker's intern table lost entries the mirror
                # still believed in (restart race, eviction drift):
                # forget everything and resend with full definitions.
                self.mirror.reset()
                continue
            raise error

    def mark_dead(self) -> None:
        self.alive = False
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def release_shm(self) -> None:
        """Unlink this incarnation's shared-memory segment (idempotent).

        Called by the supervisor on death detection and at close — the
        ownership discipline that makes a SIGKILL'd worker unable to
        leak a segment (it only ever held an attachment).
        """
        if self.shm_export is not None:
            self.shm_export.close()


class ShardedService:
    """Partition sessions across worker processes with failover.

    Parameters
    ----------
    datasets:
        Dataset or ``{name: Dataset}`` mapping, as for
        :class:`~repro.serve.service.PMWService`. Shipped (pickled) to
        every shard at spawn.
    directory:
        Deployment root. Each shard owns ``<directory>/<shard_id>/``
        with its ledger and checkpoint dir inside;
        ``topology.json`` pins the shard count + vnodes so a restarted
        supervisor cannot silently reattach with a different ring (and
        misroute every session).
    shards:
        Worker process count.
    vnodes:
        Virtual nodes per shard on the hash ring.
    checkpoint_every:
        Per-shard :class:`~repro.serve.checkpoint.Checkpointer`
        journal-advance threshold (records past the last stamp);
        ``None`` disables periodic checkpoints.
    ledger_fsync:
        Per-record fsync on shard ledgers. Records are flushed to the
        OS either way (they survive a killed process — the chaos suite
        relies on it); fsync additionally survives power loss.
    cache_policy, rng:
        Forwarded to each shard's service; ``rng`` must be an integer
        seed (it crosses a process boundary), shard ``i`` derives
        ``rng + i``.
    backend:
        Default numeric backend *name* for every shard's service
        (crosses the spawn pickle, so instances are not accepted);
        ``None`` lets each worker resolve ``REPRO_BACKEND`` itself.
    auto_restore:
        When ``True`` (default) a monitor thread watches process
        sentinels and restores any shard that dies unexpectedly onto
        its directory. ``False`` leaves dead shards down until
        :meth:`restore_shard`.
    shared_datasets:
        When ``True`` (default) each worker incarnation receives its
        datasets — universe arrays, row indices, and the frozen
        histogram view — through a supervisor-owned shared-memory
        segment (:mod:`repro.data.shm`) and attaches them zero-copy;
        the spec pickle then carries only scalars. The supervisor
        unlinks a shard's segment when it detects the shard's death
        and at close. ``False`` ships pickled dataset copies (the
        pre-frames behavior; also the automatic fallback on platforms
        without shared memory).
    registry:
        Optional supervisor :class:`~repro.obs.MetricsRegistry` for
        topology metrics (fresh one by default).
    fault_plans:
        ``{shard_id: FaultPlan}`` chaos kill points, test use only.
    """

    def __init__(self, datasets, directory, *, shards: int = 2,
                 vnodes: int = DEFAULT_VNODES,
                 checkpoint_every: int | None = None,
                 ledger_fsync: bool = True, cache_policy: str = "replay",
                 backend: str | None = None,
                 rng: int | None = 0, auto_restore: bool = True,
                 shared_datasets: bool = True,
                 registry: MetricsRegistry | None = None,
                 fault_plans: dict[str, FaultPlan] | None = None) -> None:
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        if rng is not None and not isinstance(rng, int):
            raise ValidationError(
                "ShardedService rng must be an integer seed (it is "
                f"shipped across process boundaries), got {type(rng)!r}")
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.shard_ids = [f"shard-{index:02d}" for index in range(shards)]
        self._check_topology(shards, vnodes)
        self.router = ConsistentHashRouter(self.shard_ids, vnodes=vnodes)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._datasets = datasets
        self._rng = rng
        self._checkpoint_every = checkpoint_every
        self._ledger_fsync = bool(ledger_fsync)
        self._cache_policy = cache_policy
        if backend is not None and not isinstance(backend, str):
            raise ValidationError(
                f"sharded backend must be a registered name (the spec "
                f"crosses a process boundary), got "
                f"{type(backend).__name__}")
        self._backend = backend
        self._fault_plans = dict(fault_plans or {})
        # Per-incarnation shared-memory exports: ``True`` ships each
        # worker its datasets + frozen histogram view as a read-only
        # segment instead of a pickled copy; spawn falls back to the
        # pickle path when the platform refuses shared memory.
        self._shared_datasets = bool(shared_datasets)
        self._spawn_serial = 0
        self._ctx = _mp_context()
        self._lock = threading.Lock()
        self._handles: dict[str, _ShardHandle] = {}
        self._sessions: dict[str, _SessionStub] = {}
        self._session_counter = 0
        self._last_shard_snapshot: dict[str, dict] = {}
        self._closed = False
        self.auto_restore = bool(auto_restore)
        # Supervisor-side breakers: a death trips a shard's breaker open
        # immediately (threshold 1 — the supervisor *saw* the corpse, no
        # need to burn doomed calls), restore moves it to half-open, and
        # the first successful routed call closes it. reset_after=inf
        # makes transitions purely event-driven: an un-restored shard
        # stays open forever. Every transition is persisted to the
        # shard's ``health.json`` for offline operator inspection.
        self._breakers = {
            shard_id: CircuitBreaker(failure_threshold=1,
                                     reset_after=float("inf"))
            for shard_id in self.shard_ids}
        self._death_counts = dict.fromkeys(self.shard_ids, 0)
        self._restart_counts = dict.fromkeys(self.shard_ids, 0)
        self._last_death_unix: dict[str, float | None] = (
            dict.fromkeys(self.shard_ids))
        for shard_id in self.shard_ids:
            self._handles[shard_id] = self._spawn(
                shard_id, fault_plan=self._fault_plans.get(shard_id))
            self._write_health(shard_id)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-monitor", daemon=True)
        self._monitor.start()

    # -- topology ------------------------------------------------------------

    def _check_topology(self, shards: int, vnodes: int) -> None:
        """Pin (or validate) the deployment's ring shape on disk."""
        path = os.path.join(self.directory, _TOPOLOGY_FILE)
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                state = json.load(handle)
            if (state.get("format") != _TOPOLOGY_FORMAT
                    or state.get("shards") != self.shard_ids
                    or state.get("vnodes") != vnodes):
                raise ValidationError(
                    f"deployment at {self.directory!r} was created with "
                    f"topology {state.get('shards')!r} x "
                    f"{state.get('vnodes')} vnodes; reattaching with "
                    f"{self.shard_ids!r} x {vnodes} would misroute "
                    f"sessions — use a matching topology or a fresh "
                    f"directory")
            return
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"format": _TOPOLOGY_FORMAT,
                       "shards": self.shard_ids, "vnodes": vnodes}, handle)
        os.replace(tmp, path)

    def shard_dir(self, shard_id: str) -> str:
        """A shard's ledger/checkpoint directory."""
        if shard_id not in self.shard_ids:
            raise ValidationError(f"unknown shard {shard_id!r}")
        return os.path.join(self.directory, shard_id)

    def _spawn(self, shard_id: str,
               fault_plan: FaultPlan | None = None) -> _ShardHandle:
        seed = None if self._rng is None else (
            self._rng + self.shard_ids.index(shard_id))
        export = None
        if self._shared_datasets:
            self._spawn_serial += 1
            try:
                export = SharedDatasetExport(
                    self._datasets, owner_pid=os.getpid(),
                    tag=f"{shard_id}_g{self._spawn_serial}")
            except OSError:  # platform without usable shared memory
                export = None
        spec = ShardSpec(
            shard_id=shard_id, directory=self.shard_dir(shard_id),
            datasets=None if export is not None else self._datasets,
            rng=seed,
            checkpoint_every=self._checkpoint_every,
            ledger_fsync=self._ledger_fsync,
            cache_policy=self._cache_policy, backend=self._backend,
            fault_plan=fault_plan,
            shm_manifest=export.manifest if export is not None else None)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=shard_worker_main, args=(child_conn, spec),
            name=f"repro-{shard_id}", daemon=True)
        try:
            process.start()
        except BaseException:
            if export is not None:
                export.close()
            raise
        # Drop the parent's copy of the child end: the worker's death
        # must read as EOF on parent_conn, not a half-open socket.
        child_conn.close()
        self.registry.gauge("shard.alive", {"shard": shard_id}).set(1)
        return _ShardHandle(shard_id, process, parent_conn,
                            shm_export=export)

    # -- liveness ------------------------------------------------------------

    def _write_health(self, shard_id: str) -> None:
        """Persist a shard's breaker state + death accounting to its
        ``health.json`` (atomic replace). Called on every transition so
        the file is always current for offline inspection."""
        shard_dir = self.shard_dir(shard_id)
        os.makedirs(shard_dir, exist_ok=True)
        path = os.path.join(shard_dir, HEALTH_FILE)
        record = {
            "format": _HEALTH_FORMAT,
            "shard_id": shard_id,
            "breaker": self._breakers[shard_id].state,
            "deaths": self._death_counts[shard_id],
            "restarts": self._restart_counts[shard_id],
            "last_death_unix": self._last_death_unix[shard_id],
            "updated_unix": time.time(),
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        os.replace(tmp, path)

    def breaker_states(self) -> dict[str, str]:
        """``{shard_id: breaker state}`` for the whole deployment."""
        return {shard_id: breaker.state
                for shard_id, breaker in self._breakers.items()}

    def _note_success(self, shard_id: str) -> None:
        """A routed call succeeded: close a non-closed breaker (the
        half-open probe passed — or the shard recovered out of band)."""
        breaker = self._breakers.get(shard_id)
        if breaker is None or breaker.state == CLOSED:
            return
        breaker.record_success()
        self._write_health(shard_id)

    def _monitor_loop(self) -> None:
        while not self._closed:
            with self._lock:
                watched = {handle.process.sentinel: handle
                           for handle in self._handles.values()
                           if handle.alive}
            if not watched:
                time.sleep(0.05)
                continue
            ready = connection.wait(list(watched), timeout=0.2)
            if self._closed:
                return
            for sentinel in ready:
                handle = watched[sentinel]
                self._note_death(handle)
                if self.auto_restore and not self._closed:
                    try:
                        self.restore_shard(handle.shard_id)
                    except ValidationError:  # pragma: no cover - races close
                        return

    def _note_death(self, handle: _ShardHandle) -> None:
        """Record a shard death exactly once per handle incarnation
        (the handle may already be marked dead by a caller thread that
        got EOF mid-call — the counter must still tick)."""
        with self._lock:
            if handle.death_counted:
                return
            handle.death_counted = True
            handle.mark_dead()
            self.registry.counter(
                "shard.deaths", {"shard": handle.shard_id}).inc()
            self.registry.gauge(
                "shard.alive", {"shard": handle.shard_id}).set(0)
            self._death_counts[handle.shard_id] += 1
            self._last_death_unix[handle.shard_id] = time.time()
            self._breakers[handle.shard_id].trip()
        # The dead incarnation's shared-memory segment is garbage the
        # moment the corpse is seen: the worker only ever held an
        # attachment (reclaimed by the kernel with the process), so the
        # supervisor unlinking here is what guarantees a SIGKILL'd
        # worker never strands a segment.
        handle.release_shm()
        self._write_health(handle.shard_id)

    def kill_shard(self, shard_id: str) -> int:
        """SIGKILL a shard process (chaos primitive). Returns the pid.

        Waits for the process to actually die before returning, so a
        caller can immediately assert on failure behavior; restore is
        the monitor's job (``auto_restore``) or the caller's
        (:meth:`restore_shard`).
        """
        handle = self._handle(shard_id)
        pid = handle.process.pid
        os.kill(pid, signal.SIGKILL)
        handle.process.join()
        self._note_death(handle)
        return pid

    def restore_shard(self, shard_id: str) -> None:
        """Relaunch a dead shard onto its directory (checkpoint +
        journal-suffix restore happens inside the new worker). No-op
        when the shard is already alive."""
        with self._lock:
            if self._closed:
                raise ValidationError("service is closed")
            handle = self._handles.get(shard_id)
            if handle is None:
                raise ValidationError(f"unknown shard {shard_id!r}")
            if handle.alive:
                return
            self._handles[shard_id] = self._spawn(shard_id)
            self.registry.counter(
                "shard.restarts", {"shard": shard_id}).inc()
            self._restart_counts[shard_id] += 1
            self._breakers[shard_id].note_restore()
        self._write_health(shard_id)

    def wait_alive(self, shard_id: str, *, timeout: float = 30.0) -> None:
        """Block until a shard answers a ping (post-restore barrier)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self._handle(shard_id).call("ping")
                self._note_success(shard_id)
                return
            except ShardUnavailable:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)

    def ping(self, shard_id: str) -> dict:
        """One worker's liveness/identity report: pid, session count,
        intern-table size, cumulative in-worker serve seconds, and last
        journal seq. The serve-seconds clock is what the E22 benchmark
        subtracts from supervisor-observed wall time to price the frame
        protocol itself."""
        result = self._handle(shard_id).call("ping")
        self._note_success(shard_id)
        return result

    def shard_states(self) -> dict[str, bool]:
        """``{shard_id: alive}`` right now."""
        with self._lock:
            return {shard_id: handle.alive
                    for shard_id, handle in self._handles.items()}

    def _handle(self, shard_id: str) -> _ShardHandle:
        with self._lock:
            handle = self._handles.get(shard_id)
        if handle is None:
            raise ValidationError(f"unknown shard {shard_id!r}")
        return handle

    # -- sessions ------------------------------------------------------------

    def open_session(self, mechanism: str = "pmw-convex", *,
                     dataset: str | None = None, analyst: str = "analyst",
                     session_id: str | None = None,
                     epsilon_budget: float | None = None,
                     delta_budget: float | None = None,
                     rng: int | None = None, **params) -> str:
        """Open a session on the shard the router assigns it to.

        Mirrors :meth:`PMWService.open_session
        <repro.serve.service.PMWService.open_session>`, with one
        process-boundary restriction: ``rng`` must be an integer seed
        or ``None`` (``None`` derives a deterministic per-session seed
        from the service seed and the session id, so reopening the same
        id after a full restart yields the same stream).
        """
        self._check_open()
        if rng is not None and not isinstance(rng, int):
            raise ValidationError(
                "sharded open_session needs an integer rng seed "
                f"(it crosses a process boundary), got {type(rng)!r}")
        with self._lock:
            if session_id is None:
                self._session_counter += 1
                session_id = f"{mechanism}-{self._session_counter:04d}"
            if session_id in self._sessions:
                raise ValidationError(
                    f"session id {session_id!r} already in use")
        shard_id = self.router.route(session_id)
        if rng is None and self._rng is not None:
            # Stable across restarts and independent of open order —
            # unlike the single-process service's spawn-in-open-order
            # stream, which a concurrent topology could not reproduce.
            rng = (self._rng * 1_000_003 + len(session_id)
                   + sum(session_id.encode())) % (2**31)
        payload = {"mechanism": mechanism, "dataset": dataset,
                   "analyst": analyst, "session_id": session_id,
                   "epsilon_budget": epsilon_budget,
                   "delta_budget": delta_budget, "rng": rng, **params}
        self._handle(shard_id).call("open_session", payload)
        with self._lock:
            self._sessions[session_id] = _SessionStub(
                session_id, shard_id, mechanism, analyst)
        return session_id

    def session(self, session_id: str) -> _SessionStub:
        """The parent-side stub for a session (gateway contract)."""
        with self._lock:
            if session_id not in self._sessions:
                raise ValidationError(f"unknown session {session_id!r}")
            return self._sessions[session_id]

    @property
    def session_ids(self) -> list[str]:
        """Ids of all sessions, in open order."""
        with self._lock:
            return list(self._sessions)

    def shard_of(self, session_id: str) -> str:
        """The shard owning a session."""
        return self.session(session_id).shard_id

    def close_session(self, session_id: str) -> None:
        """Close a session on its shard and mark the stub closed."""
        stub = self.session(session_id)
        self._route_call(stub, "close_session", {"session_id": session_id})
        stub.closed = True

    # -- serving -------------------------------------------------------------

    def serve_session_batch(self, session_id: str, queries, *,
                            use_cache: bool = True,
                            on_halt: str = "hypothesis",
                            idempotency_keys=None, deadline=None):
        """Serve one session's batch on its owning shard.

        The unit the gateway's coalescer submits; answers align with
        ``queries``. Raises :class:`ShardUnavailable` when the owning
        shard is down or dies mid-batch (the request may or may not
        have journaled — the restored ledger is the authority; see the
        module docstring). ``idempotency_keys`` (one per query, or
        ``None``) cross the RPC boundary verbatim, flagged in the frame
        header; ``deadline`` rides the header as remaining seconds
        (monotonic clocks are per-process) and is rebuilt worker-side.
        Repeat queries cross as 16-byte interned fingerprints rather
        than re-serialized objects (:mod:`~repro.serve.shard.
        interning`).
        """
        self._check_open()
        stub = self.session(session_id)
        keys = list(idempotency_keys) if idempotency_keys is not None \
            else None
        return self._route_call(stub, "serve_batch", {
            "session_id": session_id, "queries": list(queries),
            "use_cache": use_cache, "on_halt": on_halt,
            "idempotency_keys": keys},
            deadline=Deadline.wire_or_none(deadline),
            flags=FLAG_IDEMPOTENT if keys is not None else 0)

    def submit(self, session_id: str, query, *, use_cache: bool = True,
               on_halt: str = "raise", idempotency_key: str | None = None,
               deadline=None):
        """Serve one query on the session's owning shard."""
        self._check_open()
        stub = self.session(session_id)
        return self._route_call(stub, "submit", {
            "session_id": session_id, "query": query,
            "use_cache": use_cache, "on_halt": on_halt,
            "idempotency_key": idempotency_key},
            deadline=Deadline.wire_or_none(deadline),
            flags=FLAG_IDEMPOTENT if idempotency_key is not None else 0)

    def _route_call(self, stub: _SessionStub, verb: str, payload, *,
                    deadline: float | None = None, flags: int = 0):
        try:
            result = self._handle(stub.shard_id).call(
                verb, payload, deadline=deadline, flags=flags)
        except ShardUnavailable as exc:
            exc.session_id = stub.session_id
            raise
        self._note_success(stub.shard_id)
        return result

    def gateway(self, **knobs):
        """A :class:`~repro.serve.gateway.ServiceGateway` fronting this
        sharded service — admission control, per-session FIFO, and
        coalesced batches across all shards, unchanged."""
        from repro.serve.gateway import ServiceGateway

        return ServiceGateway(self, **knobs)

    # -- durability ----------------------------------------------------------

    def checkpoint(self) -> dict[str, str]:
        """Force a checkpoint on every live shard; ``{shard: path}``."""
        self._check_open()
        paths = {}
        for shard_id in self.shard_ids:
            try:
                paths[shard_id] = self._handle(shard_id).call("checkpoint")
            except ShardUnavailable:
                continue
        return paths

    def budget_records(self) -> dict[str, list[dict]]:
        """``{session_id: accountant records}`` across all live shards —
        the bitwise ground truth the chaos suite compares against a
        single-process oracle."""
        merged: dict[str, list[dict]] = {}
        for shard_id in self.shard_ids:
            try:
                merged.update(self._handle(shard_id).call("budget_records"))
            except ShardUnavailable:
                continue
        return merged

    # -- observability -------------------------------------------------------

    def metrics_snapshot(self, *, per_shard: bool = True) -> dict:
        """One merged registry snapshot for the whole deployment.

        Pulls each live shard's registry over RPC (caching the result,
        so a shard that dies later still contributes its last-known
        numbers), then merges supervisor topology metrics and every
        shard snapshot into a fresh registry. ``per_shard=True`` labels
        each shard's series with ``{"shard": id}``; ``False`` merges
        unlabeled, so counters and histogram buckets sum across shards
        into one aggregate series (exactly —
        :meth:`~repro.obs.MetricsRegistry.merge_snapshot`).
        """
        for shard_id in self.shard_ids:
            try:
                self._last_shard_snapshot[shard_id] = (
                    self._handle(shard_id).call("metrics"))
            except (ShardUnavailable, ValidationError):
                continue  # keep the cached last pull, if any
        merged = MetricsRegistry()
        merged.merge_snapshot(self.registry.snapshot())
        for shard_id, snap in sorted(self._last_shard_snapshot.items()):
            labels = {"shard": shard_id} if per_shard else None
            merged.merge_snapshot(snap, labels=labels)
        return merged.snapshot()

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError("ShardedService is closed")

    def close(self) -> None:
        """Graceful teardown: final metrics pull + clean worker exit.

        Each live shard gets a ``shutdown`` RPC whose reply *is* its
        final registry snapshot (cached for post-mortem
        :meth:`metrics_snapshot` calls) — the ordering fix the
        single-process gateway got in this PR, applied per shard: the
        last telemetry pull happens strictly before the shard's ledger
        handle is released. Idempotent.
        """
        if self._closed:
            return
        self._closed = True  # monitor loop: stop restoring
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            if not handle.alive:
                handle.release_shm()
                continue
            try:
                final = handle.call("shutdown")
                self._last_shard_snapshot[handle.shard_id] = final
            except (ShardUnavailable, ValidationError, FrameError):
                pass
            handle.mark_dead()
            handle.process.join(timeout=10.0)
            if handle.process.is_alive():  # pragma: no cover - stuck child
                handle.process.terminate()
                handle.process.join()
            handle.release_shm()
            self.registry.gauge(
                "shard.alive", {"shard": handle.shard_id}).set(0)
        if self._monitor.is_alive():
            self._monitor.join(timeout=2.0)

    shutdown = close

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        states = self.shard_states()
        return (f"ShardedService(shards={len(states)}, "
                f"alive={sum(states.values())}, "
                f"sessions={len(self._sessions)}, "
                f"directory={self.directory!r})")


__all__ = ["HEALTH_FILE", "ShardedService", "read_shard_health"]
