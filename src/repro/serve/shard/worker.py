"""Shard worker: the child-process side of the sharded service.

Each shard process owns one :class:`~repro.serve.service.PMWService`
with its *own* write-ahead :class:`~repro.serve.ledger.BudgetLedger`
and :class:`~repro.serve.checkpoint.Checkpointer` directory — the full
PR 5 durability stack, one instance per shard. The supervisor speaks a
synchronous request/response protocol of binary frames
(:mod:`~repro.serve.shard.frames`) over a duplex pipe::

    parent                             worker
    ------                             ------
    send_bytes(request frame)  ---->   decode, dispatch verb
    recv_bytes()               <----   reply-ok | reply-err frame

One request is in flight per pipe at a time (the supervisor serializes
per-shard calls under a handle lock), so the protocol needs no request
ids or reordering logic; concurrency across shards comes from having
many shards, and concurrency within the parent from the gateway's
worker pool. If the worker dies mid-request the parent's ``recv_bytes``
sees EOF and surfaces :class:`~repro.exceptions.ShardUnavailable`.

**Queries are interned.** The request decoder resolves interned query
references against a per-incarnation :class:`~repro.serve.shard.
interning.InternTable`; a reference this incarnation has never seen
(worker restarted, table evicted) answers with a typed
:class:`~repro.serve.shard.interning.InternMiss` reply, and the
supervisor resends the request with full definitions — one extra round
trip, never a wrong answer.

**Datasets arrive by shared memory.** When the spec carries a
``shm_manifest``, the worker attaches the supervisor's segment
read-only (:func:`repro.data.shm.attach_datasets`) instead of
unpickling dataset copies: universe, indices, and the frozen histogram
view are zero-copy, bitwise the supervisor's arrays.

**Startup is restore-or-fresh, decided by the directory.** If the
shard directory already holds checkpoints or a budget journal, the
worker restores from the newest checkpoint plus the journal suffix
(bitwise-exact accountant totals — the PR 5 guarantee); otherwise it
starts a fresh service. A restarted shard therefore needs no flags: the
supervisor just launches the same spec at the same directory.

**Fault injection.** :class:`FaultPlan` gives the chaos suite
deterministic kill points: ``exit_after_batch=N`` kills the process
with ``os._exit`` immediately *after* the Nth batch's reply is flushed
to the pipe (client saw the answer; process state dies), and
``exit_before_reply=N`` kills *after* the Nth batch is served and
journaled/checkpointed but *before* the reply is sent (client sees
``ShardUnavailable``; the ledger already holds the spends — the
double-spend-on-retry trap a restore must survive). ``os._exit``
bypasses ``atexit``/flush handlers, so nothing graceful happens — by
design, this is a crash.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.exceptions import ValidationError
from repro.serve.resilience import Deadline
from repro.serve.shard.frames import (
    KIND_REPLY_ERR,
    KIND_REPLY_OK,
    decode_frame,
    encode_frame,
)
from repro.serve.shard.interning import InternTable

#: Exit codes for injected faults, so a supervisor (or a confused
#: operator reading ``dmesg``) can tell a planned chaos kill from a
#: real crash.
EXIT_AFTER_BATCH = 41
EXIT_BEFORE_REPLY = 42

#: File/dir names inside each shard directory.
LEDGER_NAME = "budget.jsonl"
CHECKPOINT_DIR = "checkpoints"


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Deterministic kill points for chaos tests (see module docstring).

    Batch numbers are 1-based counts of serving requests
    (``serve_batch`` and ``submit``) handled by this worker incarnation;
    a restarted worker gets a fresh plan (normally ``None``), so faults
    do not re-trigger after restore.
    """

    exit_after_batch: int | None = None
    exit_before_reply: int | None = None

    def __post_init__(self) -> None:
        for name in ("exit_after_batch", "exit_before_reply"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValidationError(
                    f"{name} must be >= 1 or None, got {value}")


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to build (or restore) its
    service. Pickled and shipped to the child at spawn time, so every
    field must be picklable — in particular ``rng`` is an integer seed,
    not a live generator, and mechanism construction is config-driven
    through the default registry. When ``shm_manifest`` is set the
    worker attaches datasets from the supervisor's shared-memory
    segment and ``datasets`` may be ``None`` (nothing bulky rides the
    spec pickle)."""

    shard_id: str
    directory: str
    datasets: dict | None
    rng: int | None = None
    checkpoint_every: int | None = None
    ledger_fsync: bool = True
    cache_policy: str = "replay"
    #: Service-level default numeric backend *name* (never an instance —
    #: the spec is pickled, and the journaled session params must stay
    #: JSON). ``None`` lets the worker's environment decide.
    backend: str | None = None
    fault_plan: FaultPlan | None = None
    shm_manifest: dict | None = None


def build_service(spec: ShardSpec):
    """Restore-or-fresh service construction for one shard.

    Returns ``(service, checkpointer)``. Shared by the worker entry
    point and by in-process oracle/verification code (the chaos suite
    replays a shard directory through this exact path to assert the
    restored totals).
    """
    from repro.serve.checkpoint import Checkpointer, discover_checkpoints
    from repro.serve.service import PMWService

    datasets = spec.datasets
    if spec.shm_manifest is not None:
        from repro.data.shm import attach_datasets

        datasets = attach_datasets(spec.shm_manifest)
    if datasets is None:
        raise ValidationError(
            f"shard {spec.shard_id!r} spec carries neither datasets nor "
            f"a shared-memory manifest")
    ledger_path = os.path.join(spec.directory, LEDGER_NAME)
    ckpt_dir = os.path.join(spec.directory, CHECKPOINT_DIR)
    os.makedirs(spec.directory, exist_ok=True)
    has_history = (bool(discover_checkpoints(ckpt_dir))
                   or os.path.exists(ledger_path))
    if has_history:
        service = Checkpointer.restore(
            datasets, ckpt_dir, ledger_path=ledger_path,
            ledger_fsync=spec.ledger_fsync,
            cache_policy=spec.cache_policy, backend=spec.backend,
            rng=spec.rng)
    else:
        service = PMWService(
            datasets, ledger_path=ledger_path,
            ledger_fsync=spec.ledger_fsync,
            cache_policy=spec.cache_policy, backend=spec.backend,
            rng=spec.rng)
    checkpointer = Checkpointer(service, ckpt_dir,
                                every_records=spec.checkpoint_every)
    return service, checkpointer


def shard_worker_main(conn, spec: ShardSpec) -> None:
    """Child-process entry point: serve the RPC loop until shutdown.

    Every dispatch is wrapped so an application error (budget
    exhausted, halted mechanism, unknown session, intern miss) travels
    back inside a reply-err frame and the loop continues — only
    ``shutdown``, EOF on the pipe (parent died), or an injected fault
    ends the process. Request frames that cannot be decoded also answer
    with reply-err (``send_bytes`` preserves message boundaries, so a
    bad frame does not desynchronize the pipe).
    """
    from repro.obs.registry import MetricsRegistry
    from repro.obs.telemetry import publish_service

    service, checkpointer = build_service(spec)
    intern_table = InternTable()
    registry = MetricsRegistry()
    batches = registry.counter("shard.batches")
    requests = registry.counter("shard.requests")
    interned = registry.counter("shard.interned_queries")
    fault = spec.fault_plan or FaultPlan()
    batch_count = 0
    # Cumulative wall time inside service calls, on the worker's own
    # clock. The supervisor reads it via ``ping``; wall-minus-serve is
    # the protocol's true boundary cost (E22 prices frames with it).
    serve_seconds = 0.0

    def metrics_snapshot() -> dict:
        publish_service(registry, service)
        return registry.snapshot()

    def send_reply(kind: int, verb_code: int, value) -> None:
        try:
            conn.send_bytes(encode_frame(kind, verb_code, [value]))
        except Exception:  # noqa: BLE001 - unencodable result/exception
            # Degrade to a typed, always-encodable error rather than
            # killing the shard.
            conn.send_bytes(encode_frame(
                KIND_REPLY_ERR, verb_code,
                [ValidationError(
                    f"shard reply for verb {verb_code} was not "
                    f"encodable: {value!r}")]))

    try:
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                break  # supervisor is gone; release the ledger handle
            verb_code = 0
            verb = ""
            reply_value = None
            failed = None
            try:
                table_before = len(intern_table)
                frame = decode_frame(data, table=intern_table)
                if len(intern_table) > table_before:
                    interned.inc(len(intern_table) - table_before)
                verb_code = frame.verb
                verb = frame.verb_name
                payload = frame.values[0] if frame.values else None
                deadline = Deadline.from_wire(frame.deadline)
                if verb == "serve_batch":
                    batch_count += 1
                    serve_started = time.perf_counter()
                    results = service.serve_session_batch(
                        payload["session_id"], payload["queries"],
                        use_cache=payload.get("use_cache", True),
                        on_halt=payload.get("on_halt", "hypothesis"),
                        idempotency_keys=payload.get("idempotency_keys"),
                        deadline=deadline)
                    serve_seconds += time.perf_counter() - serve_started
                    batches.inc()
                    requests.inc(len(payload["queries"]))
                    checkpointer.maybe_checkpoint()
                    if fault.exit_before_reply == batch_count:
                        os._exit(EXIT_BEFORE_REPLY)
                    reply_value = results
                elif verb == "submit":
                    batch_count += 1
                    serve_started = time.perf_counter()
                    result = service.submit(
                        payload["session_id"], payload["query"],
                        use_cache=payload.get("use_cache", True),
                        on_halt=payload.get("on_halt", "raise"),
                        idempotency_key=payload.get("idempotency_key"),
                        deadline=deadline)
                    serve_seconds += time.perf_counter() - serve_started
                    requests.inc()
                    checkpointer.maybe_checkpoint()
                    if fault.exit_before_reply == batch_count:
                        os._exit(EXIT_BEFORE_REPLY)
                    reply_value = result
                elif verb == "open_session":
                    mechanism = payload.pop("mechanism")
                    sid = service.open_session(mechanism, **payload)
                    checkpointer.maybe_checkpoint()
                    reply_value = sid
                elif verb == "close_session":
                    service.close_session(payload["session_id"])
                    reply_value = None
                elif verb == "session_ids":
                    reply_value = service.session_ids
                elif verb == "session_info":
                    session = service.session(payload["session_id"])
                    reply_value = {
                        "closed": session.closed,
                        "mechanism": session.mechanism_name,
                        "analyst": session.analyst,
                    }
                elif verb == "budget_records":
                    reply_value = {
                        sid: service.session(sid).accountant.to_records()
                        for sid in service.session_ids
                    }
                elif verb == "checkpoint":
                    reply_value = checkpointer.checkpoint()
                elif verb == "metrics":
                    reply_value = metrics_snapshot()
                elif verb == "ping":
                    reply_value = {
                        "shard_id": spec.shard_id,
                        "pid": os.getpid(),
                        "sessions": len(service.session_ids),
                        "interned": len(intern_table),
                        "serve_seconds": serve_seconds,
                        "ledger_seq": (service.ledger.last_seq
                                       if service.ledger else -1),
                    }
                elif verb == "shutdown":
                    final = metrics_snapshot()
                    service.close()
                    send_reply(KIND_REPLY_OK, verb_code, final)
                    return
                else:
                    failed = ValidationError(
                        f"unknown shard verb {verb!r}")
            except BaseException as exc:  # noqa: BLE001 - RPC boundary
                failed = exc
            if failed is not None:
                send_reply(KIND_REPLY_ERR, verb_code, failed)
            else:
                send_reply(KIND_REPLY_OK, verb_code, reply_value)
            if fault.exit_after_batch == batch_count and \
                    verb in ("serve_batch", "submit"):
                os._exit(EXIT_AFTER_BATCH)
    finally:
        service.close()


__all__ = [
    "CHECKPOINT_DIR", "EXIT_AFTER_BATCH", "EXIT_BEFORE_REPLY",
    "FaultPlan", "LEDGER_NAME", "ShardSpec", "build_service",
    "shard_worker_main",
]
