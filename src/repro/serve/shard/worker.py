"""Shard worker: the child-process side of the sharded service.

Each shard process owns one :class:`~repro.serve.service.PMWService`
with its *own* write-ahead :class:`~repro.serve.ledger.BudgetLedger`
and :class:`~repro.serve.checkpoint.Checkpointer` directory — the full
PR 5 durability stack, one instance per shard. The supervisor speaks a
synchronous request/response protocol over a duplex pipe::

    parent                         worker
    ------                         ------
    send((verb, payload))  ---->   dispatch verb
    recv()                 <----   ("ok", result) | ("error", exc)

One request is in flight per pipe at a time (the supervisor serializes
per-shard calls under a handle lock), so the protocol needs no request
ids or reordering logic; concurrency across shards comes from having
many shards, and concurrency within the parent from the gateway's
worker pool. If the worker dies mid-request the parent's ``recv`` sees
EOF and surfaces :class:`~repro.exceptions.ShardUnavailable`.

**Startup is restore-or-fresh, decided by the directory.** If the
shard directory already holds checkpoints or a budget journal, the
worker restores from the newest checkpoint plus the journal suffix
(bitwise-exact accountant totals — the PR 5 guarantee); otherwise it
starts a fresh service. A restarted shard therefore needs no flags: the
supervisor just launches the same spec at the same directory.

**Fault injection.** :class:`FaultPlan` gives the chaos suite
deterministic kill points: ``exit_after_batch=N`` kills the process
with ``os._exit`` immediately *after* the Nth batch's reply is flushed
to the pipe (client saw the answer; process state dies), and
``exit_before_reply=N`` kills *after* the Nth batch is served and
journaled/checkpointed but *before* the reply is sent (client sees
``ShardUnavailable``; the ledger already holds the spends — the
double-spend-on-retry trap a restore must survive). ``os._exit``
bypasses ``atexit``/flush handlers, so nothing graceful happens — by
design, this is a crash.
"""

from __future__ import annotations

import dataclasses
import os

from repro.exceptions import ValidationError
from repro.serve.resilience import Deadline

#: Exit codes for injected faults, so a supervisor (or a confused
#: operator reading ``dmesg``) can tell a planned chaos kill from a
#: real crash.
EXIT_AFTER_BATCH = 41
EXIT_BEFORE_REPLY = 42

#: File/dir names inside each shard directory.
LEDGER_NAME = "budget.jsonl"
CHECKPOINT_DIR = "checkpoints"


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Deterministic kill points for chaos tests (see module docstring).

    Batch numbers are 1-based counts of serving requests
    (``serve_batch`` and ``submit``) handled by this worker incarnation;
    a restarted worker gets a fresh plan (normally ``None``), so faults
    do not re-trigger after restore.
    """

    exit_after_batch: int | None = None
    exit_before_reply: int | None = None

    def __post_init__(self) -> None:
        for name in ("exit_after_batch", "exit_before_reply"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValidationError(
                    f"{name} must be >= 1 or None, got {value}")


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to build (or restore) its
    service. Pickled and shipped to the child at spawn time, so every
    field must be picklable — in particular ``rng`` is an integer seed,
    not a live generator, and mechanism construction is config-driven
    through the default registry."""

    shard_id: str
    directory: str
    datasets: dict
    rng: int | None = None
    checkpoint_every: int | None = None
    ledger_fsync: bool = True
    cache_policy: str = "replay"
    fault_plan: FaultPlan | None = None


def build_service(spec: ShardSpec):
    """Restore-or-fresh service construction for one shard.

    Returns ``(service, checkpointer)``. Shared by the worker entry
    point and by in-process oracle/verification code (the chaos suite
    replays a shard directory through this exact path to assert the
    restored totals).
    """
    from repro.serve.checkpoint import Checkpointer, discover_checkpoints
    from repro.serve.service import PMWService

    ledger_path = os.path.join(spec.directory, LEDGER_NAME)
    ckpt_dir = os.path.join(spec.directory, CHECKPOINT_DIR)
    os.makedirs(spec.directory, exist_ok=True)
    has_history = (bool(discover_checkpoints(ckpt_dir))
                   or os.path.exists(ledger_path))
    if has_history:
        service = Checkpointer.restore(
            spec.datasets, ckpt_dir, ledger_path=ledger_path,
            ledger_fsync=spec.ledger_fsync,
            cache_policy=spec.cache_policy, rng=spec.rng)
    else:
        service = PMWService(
            spec.datasets, ledger_path=ledger_path,
            ledger_fsync=spec.ledger_fsync,
            cache_policy=spec.cache_policy, rng=spec.rng)
    checkpointer = Checkpointer(service, ckpt_dir,
                                every_records=spec.checkpoint_every)
    return service, checkpointer


def shard_worker_main(conn, spec: ShardSpec) -> None:
    """Child-process entry point: serve the RPC loop until shutdown.

    Every dispatch is wrapped so an application error (budget
    exhausted, halted mechanism, unknown session) travels back as a
    pickled exception and the loop continues — only ``shutdown``, EOF
    on the pipe (parent died), or an injected fault ends the process.
    """
    from repro.obs.registry import MetricsRegistry
    from repro.obs.telemetry import publish_service

    service, checkpointer = build_service(spec)
    registry = MetricsRegistry()
    batches = registry.counter("shard.batches")
    requests = registry.counter("shard.requests")
    fault = spec.fault_plan or FaultPlan()
    batch_count = 0

    def metrics_snapshot() -> dict:
        publish_service(registry, service)
        return registry.snapshot()

    try:
        while True:
            try:
                verb, payload = conn.recv()
            except (EOFError, OSError):
                break  # supervisor is gone; release the ledger handle
            try:
                if verb == "serve_batch":
                    batch_count += 1
                    results = service.serve_session_batch(
                        payload["session_id"], payload["queries"],
                        use_cache=payload.get("use_cache", True),
                        on_halt=payload.get("on_halt", "hypothesis"),
                        idempotency_keys=payload.get("idempotency_keys"),
                        deadline=Deadline.from_wire(payload.get("deadline")))
                    batches.inc()
                    requests.inc(len(payload["queries"]))
                    checkpointer.maybe_checkpoint()
                    if fault.exit_before_reply == batch_count:
                        os._exit(EXIT_BEFORE_REPLY)
                    reply = ("ok", results)
                elif verb == "submit":
                    batch_count += 1
                    result = service.submit(
                        payload["session_id"], payload["query"],
                        use_cache=payload.get("use_cache", True),
                        on_halt=payload.get("on_halt", "raise"),
                        idempotency_key=payload.get("idempotency_key"),
                        deadline=Deadline.from_wire(payload.get("deadline")))
                    requests.inc()
                    checkpointer.maybe_checkpoint()
                    if fault.exit_before_reply == batch_count:
                        os._exit(EXIT_BEFORE_REPLY)
                    reply = ("ok", result)
                elif verb == "open_session":
                    mechanism = payload.pop("mechanism")
                    sid = service.open_session(mechanism, **payload)
                    checkpointer.maybe_checkpoint()
                    reply = ("ok", sid)
                elif verb == "close_session":
                    service.close_session(payload["session_id"])
                    reply = ("ok", None)
                elif verb == "session_ids":
                    reply = ("ok", service.session_ids)
                elif verb == "session_info":
                    session = service.session(payload["session_id"])
                    reply = ("ok", {
                        "closed": session.closed,
                        "mechanism": session.mechanism_name,
                        "analyst": session.analyst,
                    })
                elif verb == "budget_records":
                    reply = ("ok", {
                        sid: service.session(sid).accountant.to_records()
                        for sid in service.session_ids
                    })
                elif verb == "checkpoint":
                    reply = ("ok", checkpointer.checkpoint())
                elif verb == "metrics":
                    reply = ("ok", metrics_snapshot())
                elif verb == "ping":
                    reply = ("ok", {
                        "shard_id": spec.shard_id,
                        "pid": os.getpid(),
                        "sessions": len(service.session_ids),
                        "ledger_seq": (service.ledger.last_seq
                                       if service.ledger else -1),
                    })
                elif verb == "shutdown":
                    final = metrics_snapshot()
                    service.close()
                    conn.send(("ok", final))
                    return
                else:
                    reply = ("error", ValidationError(
                        f"unknown shard verb {verb!r}"))
            except BaseException as exc:  # noqa: BLE001 - RPC boundary
                reply = ("error", exc)
            try:
                conn.send(reply)
            except (TypeError, AttributeError, ValueError):
                # Unpicklable result or exception: degrade to a typed,
                # always-picklable error rather than killing the shard.
                conn.send(("error", ValidationError(
                    f"shard reply for {verb!r} was not picklable: "
                    f"{reply[1]!r}")))
            if fault.exit_after_batch == batch_count and \
                    verb in ("serve_batch", "submit"):
                os._exit(EXIT_AFTER_BATCH)
    finally:
        service.close()


__all__ = [
    "CHECKPOINT_DIR", "EXIT_AFTER_BATCH", "EXIT_BEFORE_REPLY",
    "FaultPlan", "LEDGER_NAME", "ShardSpec", "build_service",
    "shard_worker_main",
]
