"""Shared utilities: RNG plumbing and argument validation."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_finite_array,
    check_positive,
    check_probability,
    check_unit_interval,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "check_finite_array",
    "check_positive",
    "check_probability",
    "check_unit_interval",
]
