"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``rng`` argument that can
be ``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`. :func:`as_generator` normalizes all three to
a ``Generator`` so downstream code never touches the legacy global numpy
RNG, and experiments are reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(rng=None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for fresh OS entropy, an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"rng must be None, an int seed, a SeedSequence, or a Generator; "
        f"got {type(rng).__name__}"
    )


def spawn_generators(rng, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used when one seeded experiment drives several independent stochastic
    components (e.g. the sparse-vector noise stream and the ERM oracle)
    whose draws must not interleave, so that changing how often one
    component samples does not perturb the other.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
