"""Argument validation helpers.

These raise :class:`repro.exceptions.ValidationError` with messages that name
the offending parameter, so mechanism constructors can validate eagerly and
fail close to the user error.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``; return it as ``float``."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValidationError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_unit_interval(value: float, name: str, *, open_left: bool = True) -> float:
    """Require ``value`` in ``(0, 1]`` (or ``[0, 1]`` if ``open_left=False``)."""
    value = float(value)
    lower_ok = value > 0.0 if open_left else value >= 0.0
    if not np.isfinite(value) or not lower_ok or value > 1.0:
        bracket = "(0, 1]" if open_left else "[0, 1]"
        raise ValidationError(f"{name} must lie in {bracket}, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``value`` in ``[0, 1]``."""
    return check_unit_interval(value, name, open_left=False)


def root_base(array: np.ndarray) -> np.ndarray:
    """The array that owns the memory at the bottom of a view chain.

    Used wherever view-aliasing matters: a query may keep a zero-copy
    view of a buffer only if the *owning* array is frozen, and the
    engine's loss-matrix stacking detects tables that are rows of one
    shared matrix by walking to the same root.
    """
    while isinstance(array.base, np.ndarray):
        array = array.base
    return array


def check_finite_array(array, name: str, *, ndim: int | None = None) -> np.ndarray:
    """Coerce to ``ndarray`` of floats and require all entries finite."""
    array = np.asarray(array, dtype=float)
    if ndim is not None and array.ndim != ndim:
        raise ValidationError(
            f"{name} must be {ndim}-dimensional, got shape {array.shape}"
        )
    if array.size and not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains non-finite entries")
    return array
