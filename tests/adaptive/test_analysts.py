"""Tests for analyst strategies."""

import numpy as np
import pytest

from repro.adaptive.analysts import (
    CyclingAnalyst,
    StaticAnalyst,
    WorstCaseAnalyst,
)
from repro.data.histogram import Histogram
from repro.exceptions import ValidationError
from repro.losses.families import random_quadratic_family


class TestStaticAnalyst:
    def test_plays_in_order(self, cube_universe):
        losses = random_quadratic_family(cube_universe, 3, rng=0)
        analyst = StaticAnalyst(losses)
        played = [analyst.next_loss(None) for _ in range(3)]
        assert played == losses
        assert analyst.remaining == 0

    def test_exhausted_raises(self, cube_universe):
        analyst = StaticAnalyst(random_quadratic_family(cube_universe, 1,
                                                        rng=0))
        analyst.next_loss(None)
        with pytest.raises(ValidationError, match="no queries left"):
            analyst.next_loss(None)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            StaticAnalyst([])


class TestCyclingAnalyst:
    def test_cycles(self, cube_universe):
        losses = random_quadratic_family(cube_universe, 2, rng=0)
        analyst = CyclingAnalyst(losses)
        played = [analyst.next_loss(None) for _ in range(5)]
        assert played == [losses[0], losses[1], losses[0], losses[1],
                          losses[0]]


class TestWorstCaseAnalyst:
    def test_picks_worst_answered_loss(self, cube_universe, cube_dataset):
        losses = random_quadratic_family(cube_universe, 4, rng=1)
        data = cube_dataset.histogram()
        analyst = WorstCaseAnalyst(losses, data)
        # Against a point-mass hypothesis the analyst must pick the loss
        # with the largest Definition-2.3 error.
        hypothesis = Histogram.point_mass(cube_universe, 0)
        from repro.core.accuracy import database_error
        errors = [database_error(loss, data, hypothesis).error
                  for loss in losses]
        choice = analyst.next_loss(hypothesis)
        assert choice is losses[int(np.argmax(errors))]

    def test_first_round_without_hypothesis(self, cube_universe,
                                            cube_dataset):
        losses = random_quadratic_family(cube_universe, 3, rng=2)
        analyst = WorstCaseAnalyst(losses, cube_dataset.histogram())
        assert analyst.next_loss(None) is losses[0]

    def test_observe_is_noop(self, cube_universe, cube_dataset):
        losses = random_quadratic_family(cube_universe, 2, rng=3)
        analyst = WorstCaseAnalyst(losses, cube_dataset.histogram())
        analyst.observe(losses[0], np.zeros(3))  # must not raise
