"""Tests for the answer-driven (query-constructing) adaptive analyst."""

import numpy as np
import pytest

from repro.adaptive.analysts import AnswerDrivenAnalyst
from repro.adaptive.game import play_accuracy_game
from repro.core.pmw_cm import PrivateMWConvex
from repro.data.synthetic import make_classification_dataset
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.losses.logistic import LogisticLoss


@pytest.fixture(scope="module")
def task():
    return make_classification_dataset(n=20_000, d=3, universe_size=80,
                                       rng=0)


class TestConstruction:
    def test_constructs_fresh_losses(self, task):
        analyst = AnswerDrivenAnalyst(dim=3, rng=0)
        a = analyst.next_loss(None)
        b = analyst.next_loss(None)
        assert isinstance(a, LogisticLoss)
        assert a is not b
        assert a.name != b.name

    def test_rotations_orthogonal(self, task):
        analyst = AnswerDrivenAnalyst(dim=3, rng=1)
        analyst.observe(None, np.array([0.3, -0.2, 0.5]))
        loss = analyst.next_loss(None)
        rotation = loss.rotation
        np.testing.assert_allclose(rotation @ rotation.T, np.eye(3),
                                   atol=1e-10)

    def test_first_axis_follows_last_answer(self, task):
        analyst = AnswerDrivenAnalyst(dim=3, rng=2)
        theta = np.array([0.0, 1.0, 0.0])
        analyst.observe(None, theta)
        loss = analyst.next_loss(None)
        # Row 0 of the rotation should be highly aligned with theta.
        cosine = abs(loss.rotation[0] @ theta)
        assert cosine > 0.9

    def test_queries_stay_in_family(self, task):
        """Every constructed loss satisfies the 1-Lipschitz GLM contract."""
        analyst = AnswerDrivenAnalyst(dim=3, rng=3)
        rng = np.random.default_rng(0)
        for _ in range(5):
            loss = analyst.next_loss(None)
            observed = loss.max_gradient_norm(task.universe, samples=16,
                                              rng=rng)
            assert observed <= 1.0 + 1e-6
            analyst.observe(loss, loss.domain.random_point(rng))


class TestInsideGame:
    def test_full_game_stays_accurate(self, task):
        """Definition 2.4 against a query-constructing adversary."""
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6,
                                            steps=30)
        mechanism = PrivateMWConvex(
            task.dataset, oracle, scale=2.0, alpha=0.3, epsilon=1.0,
            delta=1e-6, schedule="calibrated", max_updates=15,
            solver_steps=250, rng=4,
        )
        analyst = AnswerDrivenAnalyst(dim=3, rng=5)
        result = play_accuracy_game(mechanism, analyst, k=15,
                                    solver_steps=300)
        assert result.queries_played == 15 or result.halted_early
        assert result.max_error <= 0.4

    def test_issued_losses_retained(self, task):
        analyst = AnswerDrivenAnalyst(dim=3, rng=6)
        for _ in range(4):
            analyst.next_loss(None)
        assert len(analyst.issued) == 4
