"""Tests for the Figure 1 sample-accuracy game runner."""

import pytest

from repro.adaptive.analysts import CyclingAnalyst, StaticAnalyst
from repro.adaptive.game import play_accuracy_game
from repro.core.pmw_cm import PrivateMWConvex
from repro.erm.oracle import NonPrivateOracle
from repro.exceptions import ValidationError
from repro.losses.families import random_quadratic_family


def make_mechanism(dataset, **overrides):
    params = dict(scale=4.0, alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
                  schedule="calibrated", max_updates=10, solver_steps=200,
                  rng=0)
    params.update(overrides)
    return PrivateMWConvex(dataset, NonPrivateOracle(200), **params)


class TestGame:
    def test_records_every_round(self, cube_dataset):
        losses = random_quadratic_family(cube_dataset.universe, 6, rng=0)
        mechanism = make_mechanism(cube_dataset)
        result = play_accuracy_game(mechanism, StaticAnalyst(losses), k=6)
        assert result.queries_played == 6
        assert not result.halted_early

    def test_max_error_definition(self, cube_dataset):
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=1)
        mechanism = make_mechanism(cube_dataset)
        result = play_accuracy_game(mechanism, StaticAnalyst(losses), k=5)
        assert result.max_error == max(r.error for r in result.records)
        assert result.mean_error <= result.max_error

    def test_accuracy_definition_2_4(self, cube_dataset):
        """The realized max error should be within the alpha target."""
        losses = random_quadratic_family(cube_dataset.universe, 8, rng=2)
        mechanism = make_mechanism(cube_dataset, alpha=0.3)
        result = play_accuracy_game(mechanism, CyclingAnalyst(losses), k=16)
        assert result.max_error <= 0.3 + 0.05

    def test_early_halt_flagged(self, cube_dataset):
        import numpy as np
        from repro.data.dataset import Dataset
        indices = np.concatenate([np.full(240, 5), np.arange(8).repeat(8)[:60]])
        concentrated = Dataset(cube_dataset.universe, indices)
        mechanism = make_mechanism(concentrated, max_updates=1,
                                   noise_multiplier=0.0)
        losses = random_quadratic_family(cube_dataset.universe, 10, rng=3)
        result = play_accuracy_game(mechanism, StaticAnalyst(losses), k=10)
        assert result.halted_early
        assert result.queries_played < 10
        assert result.updates_performed == 1

    def test_empty_game_rejected(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        with pytest.raises(ValidationError):
            play_accuracy_game(mechanism, StaticAnalyst([None]), k=0)

    def test_update_flags_recorded(self, cube_dataset):
        losses = random_quadratic_family(cube_dataset.universe, 6, rng=4)
        mechanism = make_mechanism(cube_dataset)
        result = play_accuracy_game(mechanism, StaticAnalyst(losses), k=6)
        updates_in_game = sum(r.from_update for r in result.records)
        assert updates_in_game == mechanism.updates_performed
