"""Tests for population generalization error (Section 1.3)."""

import numpy as np
import pytest

from repro.adaptive.generalization import generalization_gap, population_error
from repro.data.dataset import Dataset
from repro.data.histogram import Histogram
from repro.losses.quadratic import QuadraticLoss
from repro.optimize.minimize import minimize_loss
from repro.optimize.projections import L2Ball


@pytest.fixture
def population(cube_universe, rng):
    weights = rng.dirichlet(np.full(cube_universe.size, 1.0))
    return Histogram(cube_universe, weights)


@pytest.fixture
def sample(cube_universe, population, rng):
    indices = rng.choice(cube_universe.size, size=5_000,
                         p=population.weights)
    return Dataset(cube_universe, indices).histogram()


class TestPopulationError:
    def test_zero_at_population_optimum(self, cube_universe, population):
        loss = QuadraticLoss(L2Ball(3))
        optimum = minimize_loss(loss, population).theta
        assert population_error(loss, population, optimum) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_positive_off_optimum(self, cube_universe, population):
        loss = QuadraticLoss(L2Ball(3))
        assert population_error(loss, population,
                                np.array([1.0, 0.0, 0.0])) > 0.0


class TestGeneralizationGap:
    def test_small_for_sample_optimum_with_large_n(self, cube_universe,
                                                   population, sample):
        """An iid sample of 5k rows keeps the gap of any fixed answer small."""
        loss = QuadraticLoss(L2Ball(3))
        theta = minimize_loss(loss, sample).theta
        gap = generalization_gap(loss, population, sample, theta)
        assert gap < 0.05

    def test_zero_when_sample_is_population(self, cube_universe, population):
        loss = QuadraticLoss(L2Ball(3))
        theta = np.array([0.2, 0.0, -0.1])
        assert generalization_gap(loss, population, population,
                                  theta) == pytest.approx(0.0, abs=1e-12)

    def test_adaptive_overfitting_shows_larger_gap(self, cube_universe, rng):
        """A sample-tuned answer on a tiny sample generalizes worse than on
        a big one — the phenomenon DP protects against."""
        loss = QuadraticLoss(L2Ball(3))
        weights = rng.dirichlet(np.full(cube_universe.size, 1.0))
        population = Histogram(cube_universe, weights)

        gaps = []
        for n in (20, 20_000):
            sample = Dataset(
                cube_universe,
                rng.choice(cube_universe.size, size=n, p=population.weights),
            ).histogram()
            theta = minimize_loss(loss, sample).theta  # overfit to sample
            gaps.append(generalization_gap(loss, population, sample, theta))
        assert gaps[0] > gaps[1]
