"""Registry semantics: precedence, env var, pickling, extension point."""

import pickle

import numpy as np
import pytest

from repro.backend import (
    DEFAULT_BACKEND,
    ENV_VAR,
    ArrayBackend,
    Float32Backend,
    NumpyBackend,
    available_backends,
    backend_of,
    get_backend,
    jax_available,
    register_backend,
    resolve_backend,
)
from repro.backend.registry import _FACTORIES, _INSTANCES
from repro.data.histogram import Histogram
from repro.data.universe import Universe
from repro.exceptions import ValidationError


class TestResolutionPrecedence:
    def test_instance_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "float32")
        instance = get_backend("numpy")
        assert resolve_backend(instance) is instance

    def test_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "float32")
        assert resolve_backend("numpy").name == "numpy"

    def test_none_reads_env_at_resolution_time(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend(None).name == DEFAULT_BACKEND
        monkeypatch.setenv(ENV_VAR, "float32")
        assert resolve_backend(None).name == "float32"

    def test_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        assert resolve_backend(None).name == DEFAULT_BACKEND

    def test_unknown_name_is_typed(self):
        with pytest.raises(ValidationError, match="unknown backend"):
            get_backend("cuda")

    def test_non_string_spec_is_typed(self):
        with pytest.raises(ValidationError, match="ArrayBackend"):
            resolve_backend(3.14)

    def test_env_with_unknown_name_fails_at_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "not-a-backend")
        with pytest.raises(ValidationError, match="unknown backend"):
            resolve_backend(None)


class TestRegistryShape:
    def test_singletons_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("float32") is get_backend("float32")

    def test_default_backends_always_available(self):
        names = available_backends()
        assert "numpy" in names
        assert "float32" in names

    def test_jax_gated_on_import(self):
        if jax_available():
            assert get_backend("jax").name == "jax"
        else:
            assert "jax" not in available_backends()
            with pytest.raises(ValidationError, match="jax"):
                get_backend("jax")

    def test_dtypes(self):
        assert np.dtype(get_backend("numpy").dtype) == np.float64
        assert np.dtype(get_backend("float32").dtype) == np.float32

    def test_pickle_round_trips_to_the_singleton(self):
        # Backends cross the shard process boundary by *name*: jitted
        # closures (jax) are unpicklable, so __reduce__ ships the name
        # and unpickling re-resolves against the local registry.
        for name in available_backends():
            backend = get_backend(name)
            clone = pickle.loads(pickle.dumps(backend))
            assert clone is backend

    def test_register_backend_extension_point(self):
        class TracingBackend(NumpyBackend):
            name = "tracing"

        register_backend("tracing", TracingBackend)
        try:
            assert get_backend("tracing").name == "tracing"
            assert "tracing" in available_backends()
        finally:
            _FACTORIES.pop("tracing", None)
            _INSTANCES.pop("tracing", None)


class TestBackendOf:
    def test_reads_histogram_backend(self):
        universe = Universe(np.arange(4, dtype=float)[:, None], name="u4")
        histogram = Histogram(universe, np.ones(4), backend="float32")
        assert backend_of(histogram) is get_backend("float32")

    def test_plain_objects_get_the_default(self):
        assert backend_of(object()) is get_backend(DEFAULT_BACKEND)
        assert backend_of(None) is get_backend(DEFAULT_BACKEND)


class TestProtocolSurface:
    @pytest.mark.parametrize("name", available_backends())
    def test_registered_backends_satisfy_the_protocol(self, name):
        backend = get_backend(name)
        assert isinstance(backend, ArrayBackend)
        assert isinstance(backend.name, str)
        assert isinstance(backend.fused, bool)

    def test_float32_widening_is_exact(self):
        # The durable-format rule leans on this: float32 -> float64 is
        # value-preserving, so a snapshot taken on the float32 backend
        # restores bitwise into any backend.
        backend = Float32Backend()
        values = np.random.default_rng(0).random(256)
        native = backend.from_float64(values)
        widened = backend.to_float64(native)
        assert widened.dtype == np.float64
        np.testing.assert_array_equal(widened,
                                      native.astype(np.float64))
