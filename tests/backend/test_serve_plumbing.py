"""Backend plumbing through serving layers: shard specs and telemetry."""

import numpy as np
import pytest

from repro.backend import get_backend
from repro.data import make_classification_dataset
from repro.exceptions import ValidationError
from repro.losses.families import random_linear_queries
from repro.obs import MetricsRegistry
from repro.obs.telemetry import publish_service
from repro.serve.service import PMWService
from repro.serve.shard.sharded import ShardedService
from repro.serve.shard.worker import ShardSpec


@pytest.fixture(scope="module")
def task():
    return make_classification_dataset(n=1_000, d=2, universe_size=64,
                                       rng=0)


class TestShardSpecBackend:
    def test_spec_carries_a_name(self, task, tmp_path):
        spec = ShardSpec(shard_id="shard-00",
                         directory=str(tmp_path / "shard-00"),
                         datasets={"default": task.dataset},
                         backend="float32")
        assert spec.backend == "float32"

    def test_sharded_service_rejects_instances(self, task, tmp_path):
        # The spec crosses a process boundary (pickled into the worker
        # spawn) and its params land in the budget journal as JSON, so
        # only registered *names* are accepted at the fleet level.
        with pytest.raises(ValidationError, match="registered name"):
            ShardedService(task.dataset, tmp_path / "dep", shards=1,
                           backend=get_backend("float32"))

    def test_sharded_service_accepts_a_name(self, task, tmp_path):
        with ShardedService(task.dataset, tmp_path / "dep", shards=1,
                            backend="float32") as service:
            sid = service.open_session("pmw-linear", alpha=0.3,
                                       epsilon=2.0, delta=1e-6,
                                       max_updates=3)
            queries = random_linear_queries(task.universe, 4, rng=1)
            results = service.serve_session_batch(sid, queries)
            assert len(results) == 4
            assert all(np.isfinite(result.value).all()
                       for result in results)


class TestBackendTelemetry:
    def test_backend_info_gauge(self, task):
        registry = MetricsRegistry()
        with PMWService(task.dataset, backend="float32",
                        rng=0) as service:
            sid = service.open_session("pmw-linear", alpha=0.3,
                                       epsilon=2.0, delta=1e-6,
                                       max_updates=3)
            publish_service(registry, service)
        rendered = registry.render_prometheus()
        assert "mechanism.backend_info" in rendered.replace(":", ".") \
            or "mechanism_backend_info" in rendered
        snapshot = registry.snapshot()
        gauges = [entry for entry in snapshot["gauges"]
                  if entry["name"] == "mechanism.backend_info"]
        assert gauges, "backend info gauge was not published"
        assert gauges[0]["labels"] == {"session": sid,
                                       "backend": "float32"}
        assert gauges[0]["value"] == 1
