"""Durable formats are backend-independent: train accelerated, restore
anywhere, bitwise.

The contract under test (see ``docs/architecture.md``): snapshots,
checkpoints, and ledger params always carry NumPy ``float64`` payloads
regardless of the arithmetic backend that produced them, and the
snapshotted ``"backend"`` key records arithmetic — not state — so a
restore may override it freely. float32 -> float64 widening is exact,
which makes every cross-backend restore *bitwise*, not merely close.
"""

import numpy as np
import pytest

from repro.core.pmw_cm import PrivateMWConvex
from repro.core.pmw_linear import PrivateMWLinear
from repro.data import make_classification_dataset
from repro.erm.oracle import NonPrivateOracle
from repro.losses.families import random_linear_queries, random_logistic_family
from repro.serve.service import PMWService

LINEAR_PARAMS = dict(alpha=0.15, epsilon=2.0, delta=1e-6, max_updates=8)
CM_PARAMS = dict(scale=2.0, alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
                 max_updates=3, solver_steps=40)


@pytest.fixture(scope="module")
def task():
    return make_classification_dataset(n=2_000, d=3, universe_size=96,
                                       rng=0)


def trained_linear(task, backend):
    mechanism = PrivateMWLinear(task.dataset, rng=7, backend=backend,
                                **LINEAR_PARAMS)
    queries = random_linear_queries(task.universe, 25, rng=1)
    mechanism.answer_all(queries, on_halt="hypothesis")
    return mechanism


class TestLinearRoundTrip:
    def test_snapshot_payloads_are_float64(self, task):
        snapshot = trained_linear(task, "float32").snapshot()
        assert snapshot["backend"] == "float32"
        log_weights = np.asarray(
            snapshot["hypothesis_core"]["log_weights"])
        assert log_weights.dtype == np.float64

    def test_accelerated_restores_bitwise_into_numpy(self, task):
        mechanism = trained_linear(task, "float32")
        assert mechanism.updates_performed > 0  # not a vacuous snapshot
        snapshot = mechanism.snapshot()
        restored = PrivateMWLinear.restore(snapshot, task.dataset,
                                           backend="numpy")
        assert restored.backend_name == "numpy"
        # The durable state lands bitwise: re-snapshotting on the other
        # backend reproduces the identical float64 log-weight payload.
        np.testing.assert_array_equal(
            np.asarray(restored.snapshot()["hypothesis_core"]
                       ["log_weights"]),
            np.asarray(snapshot["hypothesis_core"]["log_weights"]))
        # Materialization (exp + normalize) runs on the *restoring*
        # backend, so across backends it agrees to the contract band...
        np.testing.assert_allclose(
            np.asarray(restored.hypothesis.weights, dtype=float),
            np.asarray(mechanism.hypothesis.weights, dtype=float),
            atol=1e-6, rtol=0)
        # ...and a same-backend restore reproduces the weights bitwise.
        round_trip = PrivateMWLinear.restore(snapshot, task.dataset,
                                             backend="float32")
        np.testing.assert_array_equal(
            np.asarray(round_trip.hypothesis.weights, dtype=float),
            np.asarray(mechanism.hypothesis.weights, dtype=float))

    def test_restore_defaults_to_snapshotted_backend(self, task):
        snapshot = trained_linear(task, "float32").snapshot()
        restored = PrivateMWLinear.restore(snapshot, task.dataset)
        assert restored.backend_name == "float32"

    def test_pre_backend_snapshot_restores_on_default(self, task,
                                                      monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        snapshot = trained_linear(task, "float32").snapshot()
        del snapshot["backend"]  # a snapshot written before the refactor
        restored = PrivateMWLinear.restore(snapshot, task.dataset)
        assert restored.backend_name == "numpy"

    def test_restored_mechanism_keeps_serving(self, task):
        mechanism = trained_linear(task, "float32")
        snapshot = mechanism.snapshot()
        restored = PrivateMWLinear.restore(snapshot, task.dataset,
                                           backend="numpy")
        tail = random_linear_queries(task.universe, 5, rng=2)
        answers = restored.answer_all(tail, on_halt="hypothesis")
        assert len(answers) == 5


class TestConvexRoundTrip:
    def test_accelerated_restores_bitwise_into_numpy(self, task):
        oracle = NonPrivateOracle(120)
        mechanism = PrivateMWConvex(task.dataset, oracle, rng=5,
                                    backend="float32", **CM_PARAMS)
        losses = random_logistic_family(task.universe, 6, rng=3)
        mechanism.answer_all(losses, on_halt="hypothesis")
        snapshot = mechanism.snapshot()
        assert snapshot["backend"] == "float32"
        restored = PrivateMWConvex.restore(snapshot, task.dataset,
                                           oracle, backend="numpy")
        assert restored.backend_name == "numpy"
        np.testing.assert_array_equal(
            np.asarray(restored.snapshot()["hypothesis_core"]
                       ["log_weights"]),
            np.asarray(snapshot["hypothesis_core"]["log_weights"]))
        np.testing.assert_allclose(
            np.asarray(restored.hypothesis.weights, dtype=float),
            np.asarray(mechanism.hypothesis.weights, dtype=float),
            atol=1e-6, rtol=0)


class TestServiceRoundTrip:
    def test_session_params_journal_the_backend(self, task):
        with PMWService(task.dataset, backend="float32",
                        rng=0) as service:
            assert service.backend == "float32"
            sid = service.open_session("pmw-linear", **LINEAR_PARAMS)
            session = service.session(sid)
            assert session.params["backend"] == "float32"
            assert session.mechanism.backend_name == "float32"

    def test_explicit_session_backend_beats_service_default(self, task):
        with PMWService(task.dataset, backend="float32",
                        rng=0) as service:
            sid = service.open_session("pmw-linear", backend="numpy",
                                       **LINEAR_PARAMS)
            assert service.session(sid).mechanism.backend_name == "numpy"

    def test_service_snapshot_restores_journaled_backend(self, task,
                                                         tmp_path):
        queries = random_linear_queries(task.universe, 10, rng=4)
        with PMWService(task.dataset, backend="float32",
                        rng=0) as service:
            sid = service.open_session("pmw-linear", **LINEAR_PARAMS)
            service.serve_session_batch(sid, queries)
            weights = np.asarray(
                service.session(sid).mechanism.hypothesis.weights,
                dtype=float)
            snapshot = service.snapshot()

        with PMWService.restore(task.dataset,
                                snapshot=snapshot) as restored:
            mechanism = restored.session(sid).mechanism
            assert mechanism.backend_name == "float32"
            np.testing.assert_array_equal(
                np.asarray(mechanism.hypothesis.weights, dtype=float),
                weights)

        # params_override (full replacement, keyed by session) retargets
        # the arithmetic on restore; the durable payload is float64
        # either way, so the hypothesis lands within the contract band.
        with PMWService.restore(
                task.dataset, snapshot=snapshot,
                params_override={sid: {**LINEAR_PARAMS,
                                       "backend": "numpy"}}) as onto_numpy:
            mechanism = onto_numpy.session(sid).mechanism
            assert mechanism.backend_name == "numpy"
            np.testing.assert_allclose(
                np.asarray(mechanism.hypothesis.weights, dtype=float),
                weights, atol=1e-6, rtol=0)
