"""Chaos-suite fixtures: hard per-test timeouts and small datasets.

Kill-injection tests must never hang the suite: a bug that leaves a
parent blocked on a pipe to a dead (or never-restored) shard would
otherwise stall CI forever. There is no ``pytest-timeout`` in the
environment, so the watchdog is a dependency-free SIGALRM: tests run
in the main thread, and an alarm interrupts even a blocked
``Connection.recv``.
"""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.data.builders import signed_cube
from repro.data.dataset import Dataset

#: Hard wall-clock ceiling per chaos test (seconds). Generous — a
#: normal run is a few seconds; this only exists to turn a hang into a
#: loud failure.
CHAOS_TEST_TIMEOUT = 180


def pytest_collection_modifyitems(items):
    """Everything under ``tests/chaos/`` is chaos-marked: the marker is
    positional, not opt-in, so a new test file cannot forget it (CI
    runs ``-m chaos`` as its own job)."""
    for item in items:
        if "/tests/chaos/" in str(item.fspath).replace("\\", "/"):
            item.add_marker(pytest.mark.chaos)


@pytest.fixture(autouse=True)
def chaos_watchdog():
    def _expired(signum, frame):
        raise TimeoutError(
            f"chaos test exceeded the {CHAOS_TEST_TIMEOUT}s hard "
            f"timeout — a shard restore or pipe read is likely hung")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(CHAOS_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def cube_dataset():
    universe = signed_cube(3)
    rng = np.random.default_rng(12345)
    weights = rng.dirichlet(np.full(universe.size, 0.7))
    indices = rng.choice(universe.size, size=300, p=weights)
    return Dataset(universe, indices)
