"""Reusable fault-injection harness for the sharded serving stack.

The chaos suite's claims are *oracle-relative*: a sharded run that
loses a shard mid-load and restores it must end bitwise-identical — in
per-session accountant records and in released answer values — to a
single-process :class:`~repro.serve.service.PMWService` run that never
crashed. This module provides the shared pieces:

- deterministic workload **plans** (an ordered list of per-session
  batches with seeded queries),
- the **oracle runner** (single process, same per-session integer
  seeds, same batch order),
- a **plan driver** for the sharded service that retries
  :class:`~repro.exceptions.ShardUnavailable` through a caller-supplied
  recovery hook (restore-and-retry is the documented client contract),
- a multi-threaded **flood driver** for SIGKILL-under-load scenarios,
  which records every outcome so the test can assert "typed shedding
  or success — never silent loss".

Determinism notes: every session gets an explicit integer rng seed
(identical in both topologies — the single-process service's
spawn-in-open-order default streams could not be reproduced across a
different topology), and the oracle serves batches in the same
per-session order the plan lists. Sessions are independent state
machines, so cross-session interleaving differences cannot affect
per-session streams.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.exceptions import ShardUnavailable
from repro.losses.families import random_quadratic_family
from repro.serve.service import PMWService

#: Deterministic mechanism config shared by sharded runs and oracles.
CHAOS_PARAMS = dict(
    oracle="non-private", scale=4.0, alpha=0.3, beta=0.1, epsilon=2.0,
    delta=1e-6, schedule="calibrated", max_updates=4, solver_steps=30,
)


def session_seed(sid: str) -> int:
    """Stable per-session integer seed, identical in every topology."""
    return 10_000 + sum(sid.encode())


def chaos_session_ids(count: int) -> list[str]:
    return [f"an-{index:02d}" for index in range(count)]


def open_chaos_sessions(service, sids) -> None:
    for sid in sids:
        service.open_session("pmw-convex", session_id=sid, analyst=sid,
                             rng=session_seed(sid), **CHAOS_PARAMS)


def build_plan(universe, sids, *, rounds: int = 3,
               batch_size: int = 2) -> list[tuple[str, list]]:
    """Round-robin batch plan: ``rounds`` seeded batches per session."""
    plan = []
    for round_index in range(rounds):
        for sid in sids:
            queries = random_quadratic_family(
                universe, batch_size,
                rng=round_index * 1000 + session_seed(sid))
            plan.append((sid, queries))
    return plan


def oracle_run(dataset, sids, plan, ledger_path):
    """The crash-free ground truth: one process, same seeds, same plan.

    Returns ``(budget_records, answers)`` where ``answers[i]`` is the
    list of released values for ``plan[i]``.
    """
    answers = []
    with PMWService(dataset, ledger_path=ledger_path,
                    ledger_fsync=False) as service:
        open_chaos_sessions(service, sids)
        for sid, queries in plan:
            results = service.serve_session_batch(sid, queries)
            answers.append([result.value for result in results])
        records = {sid: service.session(sid).accountant.to_records()
                   for sid in sids}
    return records, answers


def drive_plan(service, plan, *, on_unavailable):
    """Run a plan against a sharded service, recovering through
    ``on_unavailable(exc)`` (which must leave the shard serveable —
    e.g. restore + wait) and retrying the failed batch. Returns
    ``(answers, sheds)`` where ``sheds`` lists every typed failure
    observed — the caller asserts both the values *and* that failures
    were the expected typed kind at the expected point."""
    answers = []
    sheds = []
    for sid, queries in plan:
        try:
            results = service.serve_session_batch(sid, queries)
        except ShardUnavailable as exc:
            sheds.append(exc)
            on_unavailable(exc)
            results = service.serve_session_batch(sid, queries)
        answers.append([result.value for result in results])
    return answers, sheds


def assert_answers_equal(actual, expected) -> None:
    assert len(actual) == len(expected)
    for batch_index, (got, want) in enumerate(zip(actual, expected)):
        assert len(got) == len(want), f"batch {batch_index} length"
        for value_index, (a, b) in enumerate(zip(got, want)):
            assert np.array_equal(np.asarray(a), np.asarray(b)), (
                f"batch {batch_index} answer {value_index} diverged")


class FloodResult:
    """Outcome log of one flooding thread: every batch either completed
    or raised — the lists here are the proof there was no third,
    silent, outcome."""

    def __init__(self) -> None:
        self.completed = 0
        self.shed: list[ShardUnavailable] = []
        self.unexpected: list[BaseException] = []


class Flood:
    """Hammer every session from its own thread until told to stop.

    Usage::

        storm = Flood(service, sids, universe)
        storm.start()
        ...  # inject faults from the main thread
        results = storm.finish()

    :class:`ShardUnavailable` is recorded and the thread backs off
    briefly and retries (the documented client contract); anything else
    is recorded as unexpected and fails the test.
    """

    def __init__(self, service, sids, universe, *,
                 batch_size: int = 2) -> None:
        self.service = service
        self.sids = list(sids)
        self.universe = universe
        self.batch_size = batch_size
        self.stop = threading.Event()
        self.results = [FloodResult() for _ in self.sids]
        self._threads = [
            threading.Thread(target=self._run, args=(sid, outcome))
            for sid, outcome in zip(self.sids, self.results)
        ]

    def _run(self, sid: str, outcome: FloodResult) -> None:
        round_index = 0
        while not self.stop.is_set():
            queries = random_quadratic_family(
                self.universe, self.batch_size,
                rng=round_index * 1000 + session_seed(sid))
            round_index += 1
            try:
                self.service.serve_session_batch(sid, queries)
                outcome.completed += 1
            except ShardUnavailable as exc:
                outcome.shed.append(exc)
                self.stop.wait(0.05)
            except BaseException as exc:  # noqa: BLE001 - recorded+asserted
                outcome.unexpected.append(exc)
                return

    def start(self) -> "Flood":
        for thread in self._threads:
            thread.start()
        return self

    def finish(self) -> list[FloodResult]:
        self.stop.set()
        for thread in self._threads:
            thread.join()
        return self.results
