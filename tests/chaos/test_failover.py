"""Chaos suite: kill shards, restore them, demand bitwise equality.

The sharded service's headline claim (ISSUE 7): a killed shard is
restored from checkpoint + journal suffix with *bitwise-exact* ledger
totals, in-flight requests on the dead shard fail with a typed
:class:`~repro.exceptions.ShardUnavailable` (never silent loss), and a
retry after restore never double-spends. Every test here compares
against ground truth — a single-process oracle run or the shard's own
write-ahead journal — not against "looks plausible".

Kill mechanics covered:

- deterministic in-worker kill points (``FaultPlan``): ``os._exit``
  after the reply is flushed, and after the spend is journaled but
  *before* the reply — the double-spend-on-retry trap;
- SIGKILL from outside under multi-threaded load, with auto-restore;
- a torn (half-written) journal record injected after the kill, which
  restore must truncate and survive.
"""

import os
import threading
import time

import pytest

from harness import (
    Flood,
    assert_answers_equal,
    build_plan,
    chaos_session_ids,
    drive_plan,
    open_chaos_sessions,
    oracle_run,
)
from repro.exceptions import ShardUnavailable
from repro.serve.ledger import replay_ledger
from repro.serve.shard import FaultPlan, ShardedService
from repro.serve.shard.router import ConsistentHashRouter
from repro.serve.shard.worker import LEDGER_NAME

pytestmark = pytest.mark.chaos

SIDS = chaos_session_ids(6)
#: Routing is a pure function of (session id, topology), so the victim
#: shard — the one owning SIDS[0] — is known before any process exists.
VICTIM = ConsistentHashRouter(["shard-00", "shard-01"]).route(SIDS[0])


class TestDeterministicKillPoints:
    def run_killpoint(self, cube_dataset, tmp_path, fault: FaultPlan):
        plan = build_plan(cube_dataset.universe, SIDS, rounds=3)
        oracle_records, oracle_answers = oracle_run(
            cube_dataset, SIDS, plan, tmp_path / "oracle.jsonl")

        service = ShardedService(
            cube_dataset, tmp_path / "dep", shards=2, checkpoint_every=1,
            ledger_fsync=False, rng=0, auto_restore=False,
            fault_plans={VICTIM: fault})
        try:
            open_chaos_sessions(service, SIDS)

            def recover(exc: ShardUnavailable):
                assert exc.shard_id == VICTIM
                service.restore_shard(VICTIM)
                service.wait_alive(VICTIM)

            answers, sheds = drive_plan(service, plan,
                                        on_unavailable=recover)
            records = service.budget_records()
        finally:
            service.close()
        return oracle_records, oracle_answers, records, answers, sheds

    def test_kill_after_journal_before_reply(self, cube_dataset, tmp_path):
        """The worker journals + checkpoints the batch, then dies before
        replying. The client sees a typed shed and retries the same
        batch after restore; the restored cache replays the released
        answers at zero budget — bitwise-equal totals AND values versus
        the crash-free oracle, with no double-spend."""
        oracle_records, oracle_answers, records, answers, sheds = (
            self.run_killpoint(cube_dataset, tmp_path,
                               FaultPlan(exit_before_reply=2)))
        assert len(sheds) == 1
        assert sheds[0].reason in ("died-in-flight", "dead")
        assert records == oracle_records
        assert_answers_equal(answers, oracle_answers)

    def test_kill_after_reply(self, cube_dataset, tmp_path):
        """The worker dies right after flushing a reply. The *next*
        batch routed to it sheds typed; after restore the continuation
        serves fresh from exactly the pre-kill state — bitwise-equal to
        the oracle."""
        oracle_records, oracle_answers, records, answers, sheds = (
            self.run_killpoint(cube_dataset, tmp_path,
                               FaultPlan(exit_after_batch=2)))
        assert len(sheds) == 1
        assert records == oracle_records
        assert_answers_equal(answers, oracle_answers)


class TestSigkillUnderLoad:
    def test_sigkill_auto_restore_exact_totals(self, cube_dataset,
                                               tmp_path):
        service = ShardedService(
            cube_dataset, tmp_path / "dep", shards=2, checkpoint_every=1,
            ledger_fsync=False, rng=0, auto_restore=True)
        try:
            open_chaos_sessions(service, SIDS)
            storm = Flood(service, SIDS, cube_dataset.universe).start()
            try:
                # Let batches flow on both shards before pulling the rug.
                deadline = time.monotonic() + 10.0
                while (min(r.completed for r in storm.results) < 1
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
                service.kill_shard(VICTIM)
                service.wait_alive(VICTIM, timeout=60)
                time.sleep(0.3)  # post-restore traffic on the new worker
            finally:
                results = storm.finish()

            # 1. Never silent loss: every batch completed or shed typed.
            for outcome in results:
                assert outcome.unexpected == []
            assert sum(r.completed for r in results) > 0
            all_sheds = [exc for r in results for exc in r.shed]
            assert all_sheds, "the kill landed but nothing was shed"
            assert {exc.shard_id for exc in all_sheds} == {VICTIM}

            # 2. The supervisor saw exactly one death and one restore.
            snapshot = service.metrics_snapshot()
            by_name = {}
            for record in snapshot["counters"]:
                by_name.setdefault(record["name"], {})[
                    record["labels"].get("shard")] = record["value"]
            assert by_name["shard.deaths"][VICTIM] == 1
            assert by_name["shard.restarts"][VICTIM] == 1

            # 3. No double-spend, no lost spend: every live accountant
            # is bitwise what replaying its shard's write-ahead journal
            # produces.
            records = service.budget_records()
            assert set(records) == set(SIDS)
            for shard_id in service.shard_ids:
                ledger_path = os.path.join(service.shard_dir(shard_id),
                                           LEDGER_NAME)
                state = replay_ledger(ledger_path)
                for sid in state.session_ids:
                    assert (state.accountant_for(sid).to_records()
                            == records[sid]), (
                        f"{sid} on {shard_id}: journal and accountant "
                        f"disagree after SIGKILL + restore")

            # 4. The deployment still serves on every shard.
            follow_up = build_plan(cube_dataset.universe, SIDS, rounds=1)
            for sid, queries in follow_up:
                assert len(service.serve_session_batch(sid, queries)) == 2
        finally:
            service.close()


class TestTornWriteInjection:
    def test_torn_journal_tail_is_truncated_on_restore(self, cube_dataset,
                                                       tmp_path):
        """SIGKILL, then corrupt the dead shard's journal with a
        half-written record (what a crash mid-``write`` leaves). The
        restored worker must truncate the torn tail and come back with
        the pre-kill totals exactly."""
        service = ShardedService(
            cube_dataset, tmp_path / "dep", shards=1, checkpoint_every=3,
            ledger_fsync=False, rng=0, auto_restore=False)
        try:
            open_chaos_sessions(service, SIDS[:3])
            plan = build_plan(cube_dataset.universe, SIDS[:3], rounds=2)
            for sid, queries in plan:
                service.serve_session_batch(sid, queries)
            before = service.budget_records()

            service.kill_shard("shard-00")
            ledger_path = os.path.join(service.shard_dir("shard-00"),
                                       LEDGER_NAME)
            with open(ledger_path, "ab") as handle:
                handle.write(b'{"type": "spend", "session": "an-00", "ep')
            service.restore_shard("shard-00")
            service.wait_alive("shard-00")

            assert service.budget_records() == before
            sid, queries = plan[0]
            results = service.serve_session_batch(sid, queries)
            assert [r.source for r in results] == ["cache", "cache"]
        finally:
            service.close()


class TestConcurrentMetricsPull:
    def test_metrics_snapshot_is_safe_under_load(self, cube_dataset,
                                                 tmp_path):
        """Pulling merged metrics while every shard is serving must
        neither deadlock nor tear: counters only grow between pulls."""
        service = ShardedService(
            cube_dataset, tmp_path / "dep", shards=2,
            ledger_fsync=False, rng=0, auto_restore=True)
        try:
            open_chaos_sessions(service, SIDS)
            storm = Flood(service, SIDS, cube_dataset.universe).start()
            try:
                seen = []
                for _ in range(5):
                    snapshot = service.metrics_snapshot(per_shard=False)
                    total = sum(
                        record["value"]
                        for record in snapshot["counters"]
                        if record["name"] == "shard.requests")
                    seen.append(total)
                    time.sleep(0.05)
            finally:
                results = storm.finish()
            for outcome in results:
                assert outcome.unexpected == []
            assert seen == sorted(seen), "merged request counter regressed"
        finally:
            service.close()


def test_harness_flood_threads_are_daemonless(cube_dataset, tmp_path):
    """The harness itself must not leak: after ``finish()`` no flood
    thread survives (a leaked thread would hold a pipe handle and wedge
    ``close``)."""
    service = ShardedService(cube_dataset, tmp_path / "dep", shards=1,
                             ledger_fsync=False, rng=0)
    try:
        open_chaos_sessions(service, SIDS[:2])
        storm = Flood(service, SIDS[:2], cube_dataset.universe).start()
        time.sleep(0.2)
        storm.finish()
        assert all(not t.is_alive() for t in storm._threads)
        assert threading.active_count() < 20
    finally:
        service.close()
