"""Exactly-once retries across a journal-then-die kill point.

The nastiest failure for a PMW service: the shard journals the spend
*and* the answer, then dies before the reply crosses the pipe. The
client saw nothing; a naive retry would re-run the round and
double-spend non-refundable budget. :class:`ResilientClient` retries
with the *same* minted idempotency key, and the restored shard — whose
ledger replay rebuilt the answer journal — replays the recorded answer
bitwise instead of serving fresh. These tests pin that contract
oracle-relative: a crash-free single-process run must end with the
same answers and the same accountant records.
"""

from __future__ import annotations

import os

import numpy as np

from repro.losses.families import random_quadratic_family
from repro.serve.ledger import replay_ledger
from repro.serve.resilience import ResilientClient
from repro.serve.service import PMWService
from repro.serve.shard import FaultPlan, ShardedService, read_shard_health
from repro.serve.shard.worker import LEDGER_NAME

from harness import CHAOS_PARAMS, session_seed

SID = "an-00"
ROUNDS = 4


def build_queries(universe):
    return [random_quadratic_family(universe, 1,
                                    rng=index * 1000 + session_seed(SID))[0]
            for index in range(ROUNDS)]


def oracle_submits(dataset, queries, ledger_path):
    """Crash-free ground truth: same seeds, same single-query submits."""
    with PMWService(dataset, ledger_path=ledger_path,
                    ledger_fsync=False) as service:
        service.open_session("pmw-convex", session_id=SID, analyst=SID,
                             rng=session_seed(SID), **CHAOS_PARAMS)
        answers = [service.submit(SID, query, on_halt="hypothesis").value
                   for query in queries]
        records = {SID: service.session(SID).accountant.to_records()}
    return records, answers


def test_retry_after_journal_then_sigkill_replays_bitwise(cube_dataset,
                                                          tmp_path):
    """Request 2 journals its spend and its answer, then the worker dies
    before replying. The client's retry (same idempotency key) must get
    the *recorded* answer from the restored shard — totals and values
    bitwise-equal to the oracle, zero double-spend."""
    queries = build_queries(cube_dataset.universe)
    oracle_records, oracle_answers = oracle_submits(
        cube_dataset, queries, tmp_path / "oracle.jsonl")

    service = ShardedService(
        cube_dataset, tmp_path / "dep", shards=1, checkpoint_every=1,
        ledger_fsync=False, rng=0, auto_restore=True,
        fault_plans={"shard-00": FaultPlan(exit_before_reply=2)})
    try:
        service.open_session("pmw-convex", session_id=SID, analyst=SID,
                             rng=session_seed(SID), **CHAOS_PARAMS)
        client = ResilientClient(service, rng=0, max_attempts=10,
                                 base_delay=0.2, max_delay=1.0,
                                 breaker_failures=8, client_id="chaos")
        answers = [client.submit(SID, query, on_halt="hypothesis").value
                   for query in queries]
        records = service.budget_records()
        ledger_path = os.path.join(service.shard_dir("shard-00"),
                                   LEDGER_NAME)
    finally:
        service.close()

    # The kill actually happened and the client actually retried.
    assert client.stats["attempts"] > client.stats["requests"]
    assert client.stats["successes"] == ROUNDS

    # Every submit journaled its answer under the client's minted key,
    # and the journal survived the SIGKILL.
    state = replay_ledger(ledger_path)
    assert len(state.answers) == ROUNDS
    assert all(key.startswith("chaos:") for key in state.answers)

    # Oracle-relative exactness: same values, same accountant records —
    # the retried request replayed instead of double-spending.
    for got, want in zip(answers, oracle_answers):
        assert np.array_equal(np.asarray(got), np.asarray(want))
    assert records == oracle_records

    # The supervisor persisted the death + recovery into health.json.
    health = read_shard_health(service.directory)["shard-00"]
    assert health["deaths"] == 1
    assert health["restarts"] == 1
    assert health["last_death_unix"] is not None
    assert health["breaker"] in ("half-open", "closed")


def test_breaker_opens_and_shards_verb_reports_it(cube_dataset, tmp_path):
    """With auto-restore off, a killed shard leaves its breaker open in
    health.json — the state the `repro-experiments shards` verb turns
    into a nonzero exit."""
    from repro.experiments.sharding import shard_status

    service = ShardedService(cube_dataset, tmp_path / "dep", shards=2,
                             ledger_fsync=False, rng=0,
                             auto_restore=False)
    try:
        service.open_session("pmw-convex", session_id=SID, analyst=SID,
                             rng=session_seed(SID), **CHAOS_PARAMS)
        victim = service.shard_of(SID)
        assert service.breaker_states()[victim] == "closed"
        service.kill_shard(victim)
        assert service.breaker_states()[victim] == "open"
        health = read_shard_health(service.directory)[victim]
        assert health["breaker"] == "open"
        assert health["deaths"] == 1
        assert shard_status(str(service.directory)) != 0

        # Restore: breaker half-opens, then the first successful call
        # closes it and the verb goes green again.
        service.restore_shard(victim)
        assert service.breaker_states()[victim] == "half-open"
        service.wait_alive(victim)
        assert service.breaker_states()[victim] == "closed"
        assert read_shard_health(service.directory)[victim][
            "breaker"] == "closed"
        assert shard_status(str(service.directory)) == 0
    finally:
        service.close()
