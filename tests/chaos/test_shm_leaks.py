"""Shared-memory ownership under SIGKILL: segments never leak.

The zero-copy dataset path (:mod:`repro.data.shm`) moves bulk arrays
into POSIX shared memory, which — unlike heap — survives process death.
The ownership discipline that makes this safe is the supervisor's:
workers only ever hold attachments (reclaimed by the kernel with the
process), and the supervisor unlinks each incarnation's segment on
death detection and at close. These tests SIGKILL workers mid-request
under threaded load and then stare at ``/dev/shm``: the one acceptable
steady state is *exactly one segment per live shard, zero after close*.
"""

import os
import pathlib
import time

from harness import (
    Flood,
    build_plan,
    chaos_session_ids,
    open_chaos_sessions,
)
from repro.data.shm import SEGMENT_PREFIX
from repro.serve.shard import ShardedService
from repro.serve.shard.router import ConsistentHashRouter

SIDS = chaos_session_ids(4)
VICTIM = ConsistentHashRouter(["shard-00", "shard-01"]).route(SIDS[0])


def owned_segments() -> set[str]:
    """Names under ``/dev/shm`` owned by this (supervisor) process."""
    prefix = f"{SEGMENT_PREFIX}_{os.getpid()}_"
    return {path.name
            for path in pathlib.Path("/dev/shm").glob(f"{prefix}*")}


def test_sigkill_mid_request_strands_no_segment(cube_dataset, tmp_path):
    before_any = owned_segments()
    service = ShardedService(cube_dataset, tmp_path / "dep", shards=2,
                             checkpoint_every=1, ledger_fsync=False,
                             rng=0, auto_restore=True)
    try:
        live = owned_segments() - before_any
        assert len(live) == 2, "one segment per live shard"

        open_chaos_sessions(service, SIDS)
        storm = Flood(service, SIDS, cube_dataset.universe).start()
        try:
            deadline = time.monotonic() + 10.0
            while (min(r.completed for r in storm.results) < 1
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            # SIGKILL with requests in flight: the worker dies holding
            # an attachment to the supervisor's segment.
            service.kill_shard(VICTIM)
            service.wait_alive(VICTIM, timeout=60)
        finally:
            results = storm.finish()
        for outcome in results:
            assert outcome.unexpected == []

        after_restore = owned_segments() - before_any
        # Death detection unlinked the dead incarnation's segment and
        # the restore exported a fresh one: still exactly one per shard,
        # and the victim's is a *new* name (incarnation serial).
        assert len(after_restore) == 2
        assert after_restore != live

        # The deployment still serves on the fresh segment.
        for sid, queries in build_plan(cube_dataset.universe, SIDS,
                                       rounds=1):
            assert len(service.serve_session_batch(sid, queries)) == 2
    finally:
        service.close()
    assert owned_segments() - before_any == set(), \
        "close() must unlink every segment this deployment created"


def test_repeated_kill_restore_cycles_never_accumulate(cube_dataset,
                                                       tmp_path):
    before_any = owned_segments()
    service = ShardedService(cube_dataset, tmp_path / "dep", shards=1,
                             checkpoint_every=1, ledger_fsync=False,
                             rng=0, auto_restore=False)
    try:
        open_chaos_sessions(service, SIDS[:2])
        for cycle in range(3):
            service.kill_shard("shard-00")
            # The corpse is noted synchronously by kill_shard: its
            # segment must already be gone, before any restore.
            assert owned_segments() - before_any == set(), \
                f"cycle {cycle}: dead incarnation's segment survived"
            service.restore_shard("shard-00")
            service.wait_alive("shard-00")
            assert len(owned_segments() - before_any) == 1
    finally:
        service.close()
    assert owned_segments() - before_any == set()
