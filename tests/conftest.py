"""Shared fixtures for the test-suite.

Fixtures are intentionally tiny (universes of tens of elements, datasets of
hundreds of rows) so the full suite runs in seconds; scaling behaviour is
exercised by the benchmarks, not the unit tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.builders import labeled_universe, random_ball_net, signed_cube
from repro.data.dataset import Dataset
from repro.data.synthetic import make_classification_dataset
from repro.losses.logistic import LogisticLoss
from repro.losses.quadratic import QuadraticLoss
from repro.optimize.projections import L2Ball


@pytest.fixture
def rng():
    """A deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def cube_universe():
    """The signed cube {±1/sqrt(3)}^3 — 8 unit-norm points."""
    return signed_cube(3)


@pytest.fixture
def labeled_ball_universe(rng):
    """A 2-D ball net crossed with labels {-1, +1} (60 elements)."""
    base = random_ball_net(2, 30, rng=rng)
    return labeled_universe(base, (-1.0, 1.0))


@pytest.fixture
def cube_dataset(cube_universe, rng):
    """300 rows drawn from a skewed distribution over the cube."""
    weights = rng.dirichlet(np.full(cube_universe.size, 0.7))
    indices = rng.choice(cube_universe.size, size=300, p=weights)
    return Dataset(cube_universe, indices)


@pytest.fixture
def labeled_dataset(labeled_ball_universe, rng):
    """400 rows over the labeled ball universe."""
    return Dataset.uniform_random(labeled_ball_universe, 400, rng=rng)


@pytest.fixture
def classification_task():
    """A small planted classification task (dataset + universe + theta*)."""
    return make_classification_dataset(n=2_000, d=3, universe_size=60, rng=7)


@pytest.fixture
def logistic_loss(labeled_ball_universe):
    """A plain logistic loss over the labeled ball universe's dimension."""
    return LogisticLoss(L2Ball(labeled_ball_universe.dim))


@pytest.fixture
def quadratic_loss(cube_universe):
    """The 1-strongly-convex quadratic probe loss."""
    return QuadraticLoss(L2Ball(cube_universe.dim))
