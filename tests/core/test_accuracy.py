"""Tests for the error definitions (Definitions 2.2 / 2.3)."""

import numpy as np
import pytest

from repro.core.accuracy import (
    answer_error,
    database_error,
    empirical_error_query_sensitivity,
)
from repro.data.histogram import Histogram
from repro.losses.quadratic import QuadraticLoss
from repro.losses.logistic import LogisticLoss
from repro.optimize.minimize import minimize_loss
from repro.optimize.projections import L2Ball


class TestAnswerError:
    def test_zero_at_optimum(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(3))
        hist = cube_dataset.histogram()
        optimum = minimize_loss(loss, hist).theta
        assert answer_error(loss, hist, optimum) == pytest.approx(0.0, abs=1e-12)

    def test_positive_off_optimum(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(3))
        hist = cube_dataset.histogram()
        bad = np.array([1.0, 0.0, 0.0])
        assert answer_error(loss, hist, bad) > 0.0

    def test_quadratic_error_is_half_squared_distance(self, cube_universe,
                                                      cube_dataset):
        """For l = ||theta - x||^2/2, err(D, theta) = ||theta - mean||^2/2."""
        loss = QuadraticLoss(L2Ball(3))
        hist = cube_dataset.histogram()
        mean = cube_universe.points.T @ hist.weights
        theta = loss.domain.project(mean + np.array([0.1, 0.0, 0.0]))
        expected = 0.5 * float((theta - mean) @ (theta - mean))
        optimum_value = 0.5 * float((loss.domain.project(mean) - mean)
                                    @ (loss.domain.project(mean) - mean))
        assert answer_error(loss, hist, theta) == pytest.approx(
            expected - optimum_value, abs=1e-10
        )

    def test_precomputed_optimum_used(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(3))
        hist = cube_dataset.histogram()
        optimum = minimize_loss(loss, hist).value
        theta = np.zeros(3)
        fast = answer_error(loss, hist, theta, data_optimum=optimum)
        slow = answer_error(loss, hist, theta)
        assert fast == pytest.approx(slow)

    def test_clamped_nonnegative(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(3))
        hist = cube_dataset.histogram()
        optimum = minimize_loss(loss, hist)
        # Feed an inflated "optimum" so the raw difference is negative.
        assert answer_error(loss, hist, optimum.theta,
                            data_optimum=optimum.value + 1.0) == 0.0


class TestDatabaseError:
    def test_zero_when_hypothesis_is_data(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(3))
        hist = cube_dataset.histogram()
        breakdown = database_error(loss, hist, hist)
        assert breakdown.error == pytest.approx(0.0, abs=1e-10)

    def test_positive_for_bad_hypothesis(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(3))
        data = cube_dataset.histogram()
        # A point-mass hypothesis far from the data mean.
        worst_index = int(np.argmin(data.weights))
        hypothesis = Histogram.point_mass(cube_universe, worst_index)
        breakdown = database_error(loss, data, hypothesis)
        assert breakdown.error > 0.0

    def test_breakdown_consistency(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(3))
        data = cube_dataset.histogram()
        hypothesis = Histogram.uniform(cube_universe)
        breakdown = database_error(loss, data, hypothesis)
        assert breakdown.error == pytest.approx(
            max(0.0, breakdown.hypothesis_loss_on_data
                - breakdown.optimal_loss_on_data)
        )
        # The hypothesis minimizer must actually minimize on the hypothesis.
        direct = minimize_loss(loss, hypothesis)
        assert loss.loss_on(breakdown.hypothesis_minimizer, hypothesis) \
            == pytest.approx(direct.value, abs=1e-9)

    def test_matches_definition_2_3(self, labeled_ball_universe,
                                    labeled_dataset):
        loss = LogisticLoss(L2Ball(2))
        data = labeled_dataset.histogram()
        hypothesis = Histogram.uniform(labeled_ball_universe)
        breakdown = database_error(loss, data, hypothesis, solver_steps=600)
        theta_hyp = minimize_loss(loss, hypothesis, steps=600).theta
        expected = (loss.loss_on(theta_hyp, data)
                    - minimize_loss(loss, data, steps=600).value)
        assert breakdown.error == pytest.approx(max(0.0, expected), abs=1e-4)


class TestSensitivityLemma:
    """Section 3.4.2: |err_l(D, Dhat) - err_l(D', Dhat)| <= 3S/n."""

    @pytest.mark.parametrize("seed", range(4))
    def test_bound_holds_quadratic(self, cube_universe, cube_dataset, seed):
        loss = QuadraticLoss(L2Ball(3))
        bound = 3.0 * loss.scale_bound() / cube_dataset.n
        neighbor = cube_dataset.random_neighbor(rng=seed)
        hypothesis = Histogram.uniform(cube_universe)
        realized = empirical_error_query_sensitivity(
            loss, cube_dataset.histogram(), neighbor.histogram(), hypothesis
        )
        assert realized <= bound + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_bound_holds_logistic(self, labeled_ball_universe,
                                  labeled_dataset, seed):
        loss = LogisticLoss(L2Ball(2))
        bound = 3.0 * loss.scale_bound() / labeled_dataset.n
        neighbor = labeled_dataset.random_neighbor(rng=seed)
        hypothesis = Histogram.uniform(labeled_ball_universe)
        realized = empirical_error_query_sensitivity(
            loss, labeled_dataset.histogram(), neighbor.histogram(),
            hypothesis, solver_steps=600,
        )
        # Solver tolerance adds a small slack on top of the exact bound.
        assert realized <= bound + 1e-4
