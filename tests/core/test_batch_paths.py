"""Mechanism-level engine integration: batched paths match scalar ones.

The engine rewiring must be invisible at the mechanism contract level:
``answer_all`` (batched) has to walk the same sparse-vector stream,
consume the same noise, and release the same answers as a loop of
``answer()`` calls with the same seed — on both mechanisms, dense or
sharded.
"""

import numpy as np
import pytest

from repro.core.pmw_cm import PrivateMWConvex
from repro.core.pmw_linear import PrivateMWLinear
from repro.data import make_classification_dataset
from repro.data.sharded import ShardedHistogram
from repro.erm.oracle import NonPrivateOracle
from repro.losses.families import (
    random_linear_queries,
    random_logistic_family,
    random_squared_family,
)

LINEAR_PARAMS = dict(alpha=0.15, epsilon=2.0, delta=1e-6, max_updates=20)
CM_PARAMS = dict(scale=2.0, alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
                 max_updates=5, solver_steps=60)


@pytest.fixture(scope="module")
def task():
    return make_classification_dataset(n=4_000, d=3, universe_size=120,
                                       rng=0)


@pytest.fixture(scope="module")
def queries(task):
    return random_linear_queries(task.universe, 40, rng=1)


class TestLinearBatchedStream:
    def test_matches_scalar_loop(self, task, queries):
        scalar = PrivateMWLinear(task.dataset, rng=7, **LINEAR_PARAMS)
        scalar_answers = [scalar.answer(query) for query in queries]
        batched = PrivateMWLinear(task.dataset, rng=7, **LINEAR_PARAMS)
        batched_answers = batched.answer_all(queries)
        assert scalar.updates_performed == batched.updates_performed
        for a, b in zip(scalar_answers, batched_answers):
            assert a.from_update == b.from_update
            assert a.query_index == b.query_index
            assert a.value == pytest.approx(b.value, abs=1e-10)

    def test_sharded_matches_dense(self, task, queries):
        dense = PrivateMWLinear(task.dataset, rng=7, **LINEAR_PARAMS)
        sharded = PrivateMWLinear(task.dataset, rng=7, shards=5,
                                  **LINEAR_PARAMS)
        assert isinstance(sharded.hypothesis, ShardedHistogram)
        dense_answers = dense.answer_all(queries)
        sharded_answers = sharded.answer_all(queries)
        for a, b in zip(dense_answers, sharded_answers):
            assert a.value == pytest.approx(b.value, abs=1e-10)
        np.testing.assert_allclose(dense.hypothesis.weights,
                                   sharded.hypothesis.weights, atol=1e-12)

    def test_on_halt_hypothesis_serves_tail(self, task, queries):
        mechanism = PrivateMWLinear(task.dataset, rng=3, alpha=0.02,
                                    epsilon=0.4, max_updates=2)
        answers = mechanism.answer_all(queries, on_halt="hypothesis")
        assert len(answers) == len(queries)
        assert mechanism.halted
        tail = answers[-1]
        assert not tail.from_update

    def test_empty_stream(self, task):
        mechanism = PrivateMWLinear(task.dataset, rng=0, **LINEAR_PARAMS)
        assert mechanism.answer_all([]) == []

    def test_already_halted_stream_skips_batch_build(self, task, queries,
                                                     monkeypatch):
        from repro.engine import kernels
        from repro.exceptions import MechanismHalted

        mechanism = PrivateMWLinear(task.dataset, rng=3, alpha=0.02,
                                    epsilon=0.4, max_updates=2)
        mechanism.answer_all(queries, on_halt="hypothesis")
        assert mechanism.halted
        # once halted, a new stream must not pay for the loss matrix or
        # the dead true-answer pass
        def boom(*args, **kwargs):
            raise AssertionError("stack_tables called on a halted stream")

        monkeypatch.setattr(kernels, "stack_tables", boom)
        answers = mechanism.answer_all(queries[:5], on_halt="hypothesis")
        assert len(answers) == 5
        assert not any(answer.from_update for answer in answers)
        with pytest.raises(MechanismHalted):
            mechanism.answer_all(queries[:2], on_halt="raise")

    def test_sharded_snapshot_roundtrip(self, task, queries):
        mechanism = PrivateMWLinear(task.dataset, rng=9, shards=4,
                                    histogram_workers=2, **LINEAR_PARAMS)
        mechanism.answer_all(queries[:10])
        snapshot = mechanism.snapshot()
        restored = PrivateMWLinear.restore(snapshot, task.dataset)
        assert isinstance(restored.hypothesis, ShardedHistogram)
        assert restored.hypothesis.num_shards == 4
        assert restored.hypothesis.workers == 2
        np.testing.assert_allclose(restored.hypothesis.weights,
                                   mechanism.hypothesis.weights)
        # the continuation streams identically
        rest = mechanism.answer_all(queries[10:])
        rest_restored = restored.answer_all(queries[10:])
        for a, b in zip(rest, rest_restored):
            assert a.value == pytest.approx(b.value, abs=1e-12)
            assert a.from_update == b.from_update


class TestConvexPrewarm:
    @pytest.fixture(scope="class")
    def losses(self, task):
        return (random_logistic_family(task.universe, 6, rng=2)
                + random_squared_family(task.universe, 6, rng=3))

    def _mechanism(self, task, rng=5):
        return PrivateMWConvex(task.dataset,
                               NonPrivateOracle(solver_steps=60),
                               rng=rng, **CM_PARAMS)

    def test_prewarm_fills_cache(self, task, losses):
        mechanism = self._mechanism(task)
        added = mechanism.prewarm(losses)
        assert added == len(losses)
        assert mechanism.prewarm(losses) == 0  # idempotent
        for loss in losses:
            assert loss.fingerprint() in mechanism._data_minima

    def test_prewarm_skips_unfingerprintable(self, task, losses):
        mechanism = self._mechanism(task)

        class Opaque:
            pass

        assert mechanism.prewarm([Opaque()]) == 0

    def test_answers_match_lazy_path(self, task, losses):
        lazy = self._mechanism(task)
        lazy_answers = lazy.answer_all(losses, on_halt="hypothesis",
                                       prewarm=False)
        warm = self._mechanism(task)
        warm_answers = warm.answer_all(losses, on_halt="hypothesis",
                                       prewarm=True)
        assert lazy.updates_performed == warm.updates_performed
        for a, b in zip(lazy_answers, warm_answers):
            assert a.from_update == b.from_update
            np.testing.assert_allclose(a.theta, b.theta, atol=1e-10)

    def test_prewarm_respects_cache_limit(self, task):
        mechanism = self._mechanism(task)
        mechanism.DATA_MINIMA_LIMIT = 4
        losses = random_squared_family(task.universe, 10, rng=8)
        # only the stream prefix is computed — work past the LRU bound
        # would be evicted before it is ever used
        assert mechanism.prewarm(losses) == 4
        assert len(mechanism._data_minima) <= 4
        for loss in losses[:4]:
            assert loss.fingerprint() in mechanism._data_minima

    def test_sharded_hypothesis_supported(self, task, losses):
        mechanism = PrivateMWConvex(
            task.dataset, NonPrivateOracle(solver_steps=60), rng=5,
            shards=3, **CM_PARAMS)
        assert isinstance(mechanism.hypothesis, ShardedHistogram)
        answers = mechanism.answer_all(losses[:4], on_halt="hypothesis")
        assert len(answers) == 4
        snapshot = mechanism.snapshot()
        restored = PrivateMWConvex.restore(
            snapshot, task.dataset, NonPrivateOracle(solver_steps=60))
        assert isinstance(restored.hypothesis, ShardedHistogram)
        assert restored.hypothesis.num_shards == 3


class TestBoundedMemoryFallback:
    def test_over_limit_stream_skips_stacking_and_agrees(self, task,
                                                         queries,
                                                         monkeypatch):
        from repro.engine import kernels

        reference = PrivateMWLinear(task.dataset, rng=7, **LINEAR_PARAMS)
        expected = reference.answer_all(queries)

        mechanism = PrivateMWLinear(task.dataset, rng=7, **LINEAR_PARAMS)
        mechanism.STACK_COPY_LIMIT_BYTES = 0  # force the per-query path

        def boom(*args, **kwargs):
            raise AssertionError("stack_tables must not copy over limit")

        monkeypatch.setattr(kernels, "stack_tables", boom)
        answers = mechanism.answer_all(queries)
        assert mechanism.updates_performed == reference.updates_performed
        for a, b in zip(answers, expected):
            assert a.from_update == b.from_update
            assert a.value == pytest.approx(b.value, abs=1e-10)

    def test_shared_matrix_families_stack_even_over_limit(self):
        from repro.engine import kernels
        from repro.experiments.workloads import large_universe_workload

        workload = large_universe_workload(universe_size=3_000, k=6,
                                           n=1_000, rng=5)
        mechanism = PrivateMWLinear(workload.dataset, rng=6,
                                    **LINEAR_PARAMS)
        mechanism.STACK_COPY_LIMIT_BYTES = 0
        # zero-copy shared matrix: no copy is made, so the limit does not
        # apply and the matrix path is used
        assert kernels.shared_table_matrix(workload.queries) is not None
        answers = mechanism.answer_all(workload.queries)
        assert len(answers) == len(workload.queries)


class TestPrewarmLruHygiene:
    def test_prewarm_keeps_entries_the_lane_still_needs(self):
        task = make_classification_dataset(n=1_000, d=3, universe_size=60,
                                           rng=20)
        mechanism = PrivateMWConvex(
            task.dataset, NonPrivateOracle(solver_steps=40), rng=21,
            **CM_PARAMS)
        mechanism.DATA_MINIMA_LIMIT = 4
        warm = random_squared_family(task.universe, 1, rng=22)
        mechanism.prewarm(warm)
        hot_key = warm[0].fingerprint()
        fresh = random_squared_family(task.universe, 4, rng=23)
        # the lane re-requests the cached query plus LIMIT fresh ones;
        # eviction must drop a cold fresh entry, not the hot cached one
        mechanism.prewarm(warm + fresh)
        assert hot_key in mechanism._data_minima
        assert len(mechanism._data_minima) <= 4


class TestPrewarmGuards:
    def test_incompatible_loss_raises_same_error_as_scalar(self, task):
        from repro.exceptions import LossSpecificationError
        from repro.losses.squared import SquaredLoss
        from repro.optimize.projections import L2Ball

        mechanism = PrivateMWConvex(
            task.dataset, NonPrivateOracle(solver_steps=40), rng=30,
            **CM_PARAMS)
        bad = SquaredLoss(L2Ball(task.universe.dim + 2))
        with pytest.raises(LossSpecificationError, match="incompatible"):
            mechanism.answer(bad)
        with pytest.raises(LossSpecificationError, match="incompatible"):
            mechanism.answer_all([bad])

    def test_exhausted_budget_skips_prewarm(self, task, monkeypatch):
        losses = random_squared_family(task.universe, 4, rng=31)
        mechanism = PrivateMWConvex(
            task.dataset, NonPrivateOracle(solver_steps=40), rng=32,
            **CM_PARAMS)
        # arm a budget the construction spend has already consumed
        mechanism.accountant.epsilon_budget = (
            mechanism.accountant.total_basic().epsilon)

        def boom(*args, **kwargs):
            raise AssertionError("prewarm ran despite exhausted budget")

        monkeypatch.setattr(mechanism, "prewarm", boom)
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        assert len(answers) == len(losses)
        assert not any(answer.from_update for answer in answers)
