"""Tests for the k-independent-calls composition baseline."""

import numpy as np
import pytest

from repro.core.composition_baseline import CompositionBaseline
from repro.dp.composition import advanced_composition
from repro.erm.oracle import NonPrivateOracle
from repro.erm.output_perturbation import OutputPerturbationOracle
from repro.exceptions import ValidationError
from repro.losses.families import random_quadratic_family


class TestBudgetSplit:
    def test_per_call_shrinks_with_k(self, cube_dataset):
        oracle = NonPrivateOracle()
        few = CompositionBaseline(cube_dataset, oracle, planned_queries=4,
                                  epsilon=1.0, delta=1e-6)
        many = CompositionBaseline(cube_dataset, oracle, planned_queries=400,
                                   epsilon=1.0, delta=1e-6)
        assert many.per_call.epsilon < few.per_call.epsilon

    def test_single_query_gets_whole_budget(self, cube_dataset):
        baseline = CompositionBaseline(cube_dataset, NonPrivateOracle(),
                                       planned_queries=1, epsilon=0.7,
                                       delta=1e-6)
        assert baseline.per_call.epsilon == pytest.approx(0.7)

    def test_split_recomposes_within_budget(self, cube_dataset):
        k = 64
        baseline = CompositionBaseline(cube_dataset, NonPrivateOracle(),
                                       planned_queries=k, epsilon=1.0,
                                       delta=1e-6)
        total = advanced_composition(baseline.per_call.epsilon,
                                     baseline.per_call.delta, k, 1e-6 / 2)
        assert total.epsilon <= 1.0 * 1.05  # first-order exact, 2Teps0^2 slack
        assert total.delta <= 1e-6 * 1.001


class TestAnswering:
    def test_answers_count_enforced(self, cube_dataset):
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=0)
        baseline = CompositionBaseline(cube_dataset, NonPrivateOracle(),
                                       planned_queries=2, epsilon=1.0,
                                       delta=1e-6)
        baseline.answer(losses[0])
        baseline.answer(losses[1])
        with pytest.raises(ValidationError, match="split across"):
            baseline.answer(losses[2])

    def test_accountant_matches_calls(self, cube_dataset):
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=1)
        baseline = CompositionBaseline(cube_dataset, NonPrivateOracle(),
                                       planned_queries=4, epsilon=1.0,
                                       delta=1e-6)
        baseline.answer_all(losses)
        assert baseline.accountant.num_spends == 4

    def test_error_grows_with_k_private_oracle(self, cube_universe, rng):
        """The motivating phenomenon: more queries -> less budget -> noise."""
        from repro.data.dataset import Dataset
        from repro.losses.quadratic import QuadraticLoss
        from repro.optimize.projections import L2Ball
        from repro.core.accuracy import answer_error

        indices = rng.choice(cube_universe.size, size=5_000)
        dataset = Dataset(cube_universe, indices)
        data = dataset.histogram()
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        oracle = OutputPerturbationOracle(epsilon=1.0, delta=1e-6)

        def mean_error(k, seed):
            baseline = CompositionBaseline(dataset, oracle,
                                           planned_queries=k, epsilon=0.5,
                                           delta=1e-6, rng=seed)
            errors = [
                answer_error(loss, data, baseline.answer(loss).theta)
                for _ in range(min(k, 10))
            ]
            return float(np.mean(errors))

        few = np.mean([mean_error(2, seed) for seed in range(5)])
        many = np.mean([mean_error(512, seed) for seed in range(5)])
        assert many > few
