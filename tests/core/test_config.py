"""Tests for the Figure 3 parameter schedule."""

import math

import pytest

from repro.core.config import PMWConfig
from repro.exceptions import ValidationError


def paper_config(**overrides):
    params = dict(alpha=0.1, beta=0.05, epsilon=1.0, delta=1e-6,
                  scale=2.0, universe_size=1024, schedule="paper")
    params.update(overrides)
    return PMWConfig.from_targets(**params)


class TestPaperSchedule:
    def test_update_budget_formula(self):
        config = paper_config()
        expected = math.ceil(64 * 4.0 * math.log(1024) / 0.01)
        assert config.max_updates == expected

    def test_eta_formula(self):
        config = paper_config()
        assert config.eta == pytest.approx(
            math.sqrt(math.log(1024) / config.max_updates)
        )

    def test_oracle_budget_formulas(self):
        config = paper_config()
        t = config.max_updates
        assert config.oracle_epsilon == pytest.approx(
            1.0 / math.sqrt(8 * t * math.log(4 / 1e-6))
        )
        assert config.oracle_delta == pytest.approx(1e-6 / (4 * t))

    def test_oracle_accuracy_targets(self):
        config = paper_config()
        assert config.oracle_alpha == pytest.approx(0.025)   # alpha / 4
        assert config.oracle_beta == pytest.approx(
            0.05 / (2 * config.max_updates)
        )

    def test_sv_gets_half_budget(self):
        config = paper_config()
        assert config.sv_epsilon == 0.5
        assert config.sv_delta == 5e-7


class TestCalibratedSchedule:
    def test_smaller_update_budget(self):
        paper = paper_config()
        calibrated = paper_config(schedule="calibrated")
        assert calibrated.max_updates < paper.max_updates
        assert calibrated.max_updates == math.ceil(
            paper.max_updates / 64
        ) or calibrated.max_updates == math.ceil(
            1.0 * 4.0 * math.log(1024) / 0.01
        )

    def test_same_functional_form(self):
        calibrated = paper_config(schedule="calibrated")
        t = calibrated.max_updates
        assert calibrated.eta == pytest.approx(
            math.sqrt(math.log(1024) / t)
        )

    def test_override_changes_everything_consistently(self):
        config = paper_config(schedule="calibrated", max_updates=10)
        assert config.max_updates == 10
        assert config.eta == pytest.approx(math.sqrt(math.log(1024) / 10))
        assert config.oracle_epsilon == pytest.approx(
            1.0 / math.sqrt(80 * math.log(4e6))
        )
        assert config.extras["derived_max_updates"] > 10


class TestSampleSizes:
    def test_sensitivity(self):
        config = paper_config()
        assert config.sensitivity(1000) == pytest.approx(6.0 / 1000)

    def test_theorem_3_8_formula(self):
        config = paper_config()
        n = config.theorem_3_8_sample_size(total_queries=100)
        expected = (4096 * 4.0
                    * math.sqrt(math.log(1024) * math.log(4 / 1e-6))
                    * math.log(8 * 100 / 0.05) / (1.0 * 0.01))
        assert n == pytest.approx(expected)

    def test_oracle_term_can_dominate(self):
        config = paper_config()
        huge = config.theorem_3_8_sample_size(100, oracle_sample_size=1e15)
        assert huge == 1e15

    def test_sv_sample_size_positive(self):
        config = paper_config()
        assert config.sparse_vector_sample_size(100) > 0

    def test_claim_3_2_takes_max_with_oracle_n(self):
        config = paper_config()
        sv_term = config.sparse_vector_sample_size(100)
        assert config.claim_3_2_sample_size(100) == pytest.approx(sv_term)
        assert config.claim_3_2_sample_size(100, oracle_sample_size=1e18) \
            == 1e18

    def test_claim_3_2_grows_logarithmically_in_k(self):
        config = paper_config()
        n1 = config.claim_3_2_sample_size(100)
        n2 = config.claim_3_2_sample_size(10_000)
        assert n2 / n1 < 1.8


class TestValidation:
    def test_bad_schedule(self):
        with pytest.raises(ValidationError, match="schedule"):
            paper_config(schedule="magic")

    def test_bad_universe(self):
        with pytest.raises(ValidationError, match="universe_size"):
            paper_config(universe_size=1)

    def test_bad_alpha(self):
        with pytest.raises(ValidationError):
            paper_config(alpha=1.5)

    def test_describe_mentions_schedule(self):
        assert "paper" in paper_config().describe()
