"""Tests for the PMW round's data-side minimization cache."""

import numpy as np
import pytest

from repro.core.pmw_cm import PrivateMWConvex
from repro.erm.oracle import NonPrivateOracle
from repro.losses.families import random_quadratic_family


def make_mechanism(dataset, **overrides):
    params = dict(scale=4.0, alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
                  schedule="calibrated", max_updates=10, solver_steps=150,
                  rng=0)
    params.update(overrides)
    return PrivateMWConvex(dataset, NonPrivateOracle(150), **params)


class TestDataMinimaCache:
    def test_cache_populated_per_distinct_loss(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=0)
        mechanism.answer_all(losses, on_halt="hypothesis")
        assert len(mechanism._data_minima) == 4

    def test_repeat_query_reuses_cache(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=1)[0]
        mechanism.answer(loss)
        cached = mechanism._data_minima[loss]
        for _ in range(3):
            mechanism.answer(loss)
        assert mechanism._data_minima[loss] is cached

    def test_cached_value_is_data_optimum(self, cube_dataset):
        from repro.optimize.minimize import minimize_loss
        mechanism = make_mechanism(cube_dataset)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=2)[0]
        mechanism.answer(loss)
        direct = minimize_loss(loss, cube_dataset.histogram(), steps=150)
        assert mechanism._data_minima[loss].value == pytest.approx(
            direct.value, abs=1e-9
        )

    def test_answers_identical_with_and_without_repeats(self, cube_dataset):
        """Caching must not change behaviour: replaying a stream with
        duplicates gives the same answers as the same seed without cache
        hits (the cached quantity is deterministic)."""
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=3)
        stream = [losses[0], losses[1], losses[0], losses[2], losses[0]]
        a = make_mechanism(cube_dataset, rng=7)
        answers_a = [a.answer(loss).theta for loss in stream]
        b = make_mechanism(cube_dataset, rng=7)
        answers_b = [b.answer(loss).theta for loss in stream]
        np.testing.assert_array_equal(np.stack(answers_a),
                                      np.stack(answers_b))

    def test_cache_entries_released_with_losses(self, cube_dataset):
        """WeakKeyDictionary: dropping the loss object frees the entry."""
        import gc
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 2, rng=4)
        mechanism.answer_all(losses, on_halt="hypothesis")
        assert len(mechanism._data_minima) == 2
        del losses
        gc.collect()
        assert len(mechanism._data_minima) == 0
