"""Tests for the PMW round's data-side minimization cache.

The cache is keyed by the loss's canonical fingerprint
(:mod:`repro.losses.fingerprint`), so equal-parameter losses share one
entry even across distinct objects — and cache keys survive
snapshot/restore.
"""

import numpy as np
import pytest

from repro.core.pmw_cm import PrivateMWConvex
from repro.erm.oracle import NonPrivateOracle
from repro.losses.families import random_quadratic_family


def make_mechanism(dataset, **overrides):
    params = dict(scale=4.0, alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
                  schedule="calibrated", max_updates=10, solver_steps=150,
                  rng=0)
    params.update(overrides)
    return PrivateMWConvex(dataset, NonPrivateOracle(150), **params)


class TestDataMinimaCache:
    def test_cache_populated_per_distinct_loss(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=0)
        mechanism.answer_all(losses, on_halt="hypothesis")
        assert len(mechanism._data_minima) == 4

    def test_repeat_query_reuses_cache(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=1)[0]
        mechanism.answer(loss)
        cached = mechanism._data_minima[loss.fingerprint()]
        for _ in range(3):
            mechanism.answer(loss)
        assert mechanism._data_minima[loss.fingerprint()] is cached

    def test_equal_parameter_losses_share_entry(self, cube_dataset):
        """Rebuilding an identical loss object must hit the same entry —
        the object-identity fragility the fingerprint keys removed."""
        mechanism = make_mechanism(cube_dataset)
        first = random_quadratic_family(cube_dataset.universe, 1, rng=2)[0]
        rebuilt = random_quadratic_family(cube_dataset.universe, 1, rng=2)[0]
        assert first is not rebuilt
        assert first.fingerprint() == rebuilt.fingerprint()
        mechanism.answer(first)
        assert len(mechanism._data_minima) == 1
        mechanism.answer(rebuilt)
        assert len(mechanism._data_minima) == 1

    def test_cached_value_is_data_optimum(self, cube_dataset):
        from repro.optimize.minimize import minimize_loss
        mechanism = make_mechanism(cube_dataset)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=2)[0]
        mechanism.answer(loss)
        direct = minimize_loss(loss, cube_dataset.histogram(), steps=150)
        assert mechanism._data_minima[loss.fingerprint()].value == pytest.approx(
            direct.value, abs=1e-9
        )

    def test_answers_identical_with_and_without_repeats(self, cube_dataset):
        """Caching must not change behaviour: replaying a stream with
        duplicates gives the same answers as the same seed without cache
        hits (the cached quantity is deterministic)."""
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=3)
        stream = [losses[0], losses[1], losses[0], losses[2], losses[0]]
        a = make_mechanism(cube_dataset, rng=7)
        answers_a = [a.answer(loss).theta for loss in stream]
        b = make_mechanism(cube_dataset, rng=7)
        answers_b = [b.answer(loss).theta for loss in stream]
        np.testing.assert_array_equal(np.stack(answers_a),
                                      np.stack(answers_b))

    def test_cache_survives_snapshot_restore(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=5)
        mechanism.answer_all(losses, on_halt="hypothesis")
        snapshot = mechanism.snapshot()
        restored = PrivateMWConvex.restore(
            snapshot, cube_dataset, NonPrivateOracle(150)
        )
        assert set(restored._data_minima) == set(mechanism._data_minima)
        for key, result in mechanism._data_minima.items():
            np.testing.assert_allclose(restored._data_minima[key].theta,
                                       result.theta)

    def test_unfingerprintable_loss_still_answered(self, cube_dataset):
        """Custom losses with unfingerprintable state (stored callables)
        must still be servable — they just skip the cache."""
        from repro.losses.quadratic import QuadraticLoss
        from repro.optimize.projections import L2Ball

        class CallableLoss(QuadraticLoss):
            def __init__(self, domain):
                super().__init__(domain)
                self.hook = lambda x: x  # not fingerprintable

        mechanism = make_mechanism(cube_dataset)
        loss = CallableLoss(L2Ball(cube_dataset.universe.dim))
        answer = mechanism.answer(loss)
        assert loss.domain.contains(answer.theta, tol=1e-9)
        assert len(mechanism._data_minima) == 0  # no fingerprint entry
        # identity fallback: repeats of the same object reuse one entry
        cached = mechanism._data_minima_by_identity[loss]
        mechanism.answer(loss)
        assert mechanism._data_minima_by_identity[loss] is cached
        # and it is GC-bound, like the pre-fingerprint cache
        import gc
        del loss, cached
        gc.collect()
        assert len(mechanism._data_minima_by_identity) == 0

    def test_cache_bounded_by_lru_limit(self, cube_dataset, monkeypatch):
        """Long-running sessions must not grow the cache without bound."""
        monkeypatch.setattr(PrivateMWConvex, "DATA_MINIMA_LIMIT", 3)
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 6, rng=6)
        mechanism.answer_all(losses, on_halt="hypothesis")
        assert len(mechanism._data_minima) <= 3
        # the most recent fingerprints survive
        assert losses[-1].fingerprint() in mechanism._data_minima
