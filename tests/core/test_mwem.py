"""Tests for the offline MWEM baseline."""

import numpy as np
import pytest

from repro.core.mwem import MWEM
from repro.data.dataset import Dataset
from repro.exceptions import ValidationError
from repro.losses.families import random_halfspace_queries
from repro.losses.linear import LinearQuery


@pytest.fixture
def skewed_dataset(cube_universe, rng):
    weights = rng.dirichlet(np.full(cube_universe.size, 0.3))
    indices = rng.choice(cube_universe.size, size=20_000, p=weights)
    return Dataset(cube_universe, indices)


class TestMWEM:
    def test_run_produces_normalized_hypothesis(self, skewed_dataset):
        queries = random_halfspace_queries(skewed_dataset.universe, 20, rng=0)
        mwem = MWEM(skewed_dataset, queries, rounds=8, epsilon=1.0, rng=0)
        result = mwem.run()
        assert result.hypothesis.weights.sum() == pytest.approx(1.0)
        assert len(result.selected) == 8
        assert len(result.measurements) == 8

    def test_answers_one_per_query(self, skewed_dataset):
        queries = random_halfspace_queries(skewed_dataset.universe, 15, rng=1)
        mwem = MWEM(skewed_dataset, queries, rounds=5, epsilon=1.0, rng=0)
        result = mwem.run()
        assert result.answers.shape == (15,)
        assert (result.answers >= 0).all() and (result.answers <= 1).all()

    def test_improves_over_uniform_guess(self, skewed_dataset):
        queries = random_halfspace_queries(skewed_dataset.universe, 30, rng=2)
        data = skewed_dataset.histogram()
        uniform_answers = np.array([
            query.table.mean() for query in queries
        ])
        true_answers = np.array([query.answer(data) for query in queries])
        uniform_error = np.abs(true_answers - uniform_answers).max()

        mwem = MWEM(skewed_dataset, queries, rounds=12, epsilon=2.0, rng=3)
        result = mwem.run()
        assert mwem.max_error(result) < uniform_error

    def test_more_rounds_help_at_high_epsilon(self, skewed_dataset):
        queries = random_halfspace_queries(skewed_dataset.universe, 30, rng=4)
        errors = []
        for rounds in (2, 16):
            mwem = MWEM(skewed_dataset, queries, rounds=rounds, epsilon=20.0,
                        rng=5)
            errors.append(mwem.max_error(mwem.run()))
        assert errors[1] <= errors[0] + 0.02

    def test_budget_accounting(self, skewed_dataset):
        queries = random_halfspace_queries(skewed_dataset.universe, 10, rng=6)
        mwem = MWEM(skewed_dataset, queries, rounds=6, epsilon=1.5, rng=0)
        mwem.run()
        total = mwem.accountant.total_basic()
        assert total.epsilon == pytest.approx(1.5)
        assert total.delta == 0.0  # MWEM is pure-DP

    def test_average_vs_last_hypothesis(self, skewed_dataset):
        queries = random_halfspace_queries(skewed_dataset.universe, 20, rng=7)
        averaged = MWEM(skewed_dataset, queries, rounds=10, epsilon=2.0,
                        average_hypotheses=True, rng=8)
        last = MWEM(skewed_dataset, queries, rounds=10, epsilon=2.0,
                    average_hypotheses=False, rng=8)
        # Both must produce valid, reasonably accurate runs.
        assert averaged.max_error(averaged.run()) < 0.25
        assert last.max_error(last.run()) < 0.30

    def test_validation(self, skewed_dataset):
        queries = random_halfspace_queries(skewed_dataset.universe, 5, rng=0)
        with pytest.raises(ValidationError):
            MWEM(skewed_dataset, queries, rounds=0, epsilon=1.0)
        with pytest.raises(ValidationError):
            MWEM(skewed_dataset, [], rounds=3, epsilon=1.0)
        with pytest.raises(ValidationError, match="universe"):
            MWEM(skewed_dataset, [LinearQuery(np.zeros(3))], rounds=3,
                 epsilon=1.0)

    def test_deterministic_given_seed(self, skewed_dataset):
        queries = random_halfspace_queries(skewed_dataset.universe, 10, rng=9)
        a = MWEM(skewed_dataset, queries, rounds=5, epsilon=1.0, rng=11).run()
        b = MWEM(skewed_dataset, queries, rounds=5, epsilon=1.0, rng=11).run()
        np.testing.assert_array_equal(a.answers, b.answers)
        assert a.selected == b.selected
