"""Tests for the offline PMW-CM variant (Section 1.2)."""

import numpy as np
import pytest

from repro.core.offline import OfflineMWConvex
from repro.erm.oracle import NonPrivateOracle
from repro.erm.output_perturbation import OutputPerturbationOracle
from repro.exceptions import ValidationError
from repro.losses.families import random_quadratic_family
from repro.data.dataset import Dataset


@pytest.fixture
def skewed_dataset(cube_universe, rng):
    weights = rng.dirichlet(np.full(cube_universe.size, 0.1))
    indices = rng.choice(cube_universe.size, size=20_000, p=weights)
    return Dataset(cube_universe, indices)


def make_offline(dataset, losses, **overrides):
    params = dict(scale=4.0, rounds=8, epsilon=2.0, delta=1e-6,
                  solver_steps=150, rng=0)
    params.update(overrides)
    return OfflineMWConvex(dataset, losses, NonPrivateOracle(150), **params)


class TestRun:
    def test_answers_every_query(self, skewed_dataset):
        losses = random_quadratic_family(skewed_dataset.universe, 6, rng=0)
        result = make_offline(skewed_dataset, losses).run()
        assert len(result.thetas) == 6
        assert len(result.selected) == 8
        assert len(result.history) == 8

    def test_improves_over_uniform_hypothesis(self, skewed_dataset):
        losses = random_quadratic_family(skewed_dataset.universe, 10, rng=1)
        mechanism = make_offline(skewed_dataset, losses, rounds=12)
        result = mechanism.run()
        # Error of the untouched uniform hypothesis for comparison.
        from repro.core.accuracy import database_error
        from repro.data.histogram import Histogram
        data = skewed_dataset.histogram()
        uniform = Histogram.uniform(skewed_dataset.universe)
        uniform_worst = max(
            database_error(loss, data, uniform, solver_steps=150).error
            for loss in losses
        )
        assert mechanism.max_error(result) < uniform_worst

    def test_selection_targets_bad_queries(self, skewed_dataset):
        """At generous budget, each round must select a high-error query."""
        losses = random_quadratic_family(skewed_dataset.universe, 8, rng=2)
        mechanism = make_offline(skewed_dataset, losses, epsilon=100.0)
        result = mechanism.run()
        for entry in result.history:
            assert entry["selected_score"] >= 0.5 * entry["max_score"] - 1e-9

    def test_history_scores_decrease_overall(self, skewed_dataset):
        losses = random_quadratic_family(skewed_dataset.universe, 8, rng=3)
        mechanism = make_offline(skewed_dataset, losses, rounds=15,
                                 epsilon=50.0)
        result = mechanism.run()
        first = result.history[0]["max_score"]
        last = result.history[-1]["max_score"]
        assert last < first

    def test_deterministic_given_seed(self, skewed_dataset):
        losses = random_quadratic_family(skewed_dataset.universe, 5, rng=4)
        a = make_offline(skewed_dataset, losses, rng=9).run()
        b = make_offline(skewed_dataset, losses, rng=9).run()
        assert a.selected == b.selected
        np.testing.assert_array_equal(np.stack(a.thetas), np.stack(b.thetas))


class TestBudget:
    def test_accountant_totals(self, skewed_dataset):
        losses = random_quadratic_family(skewed_dataset.universe, 5, rng=5)
        mechanism = make_offline(skewed_dataset, losses, rounds=6)
        mechanism.run()
        # 6 selections + 6 oracle calls recorded.
        assert mechanism.accountant.num_spends == 12

    def test_per_round_budgets_shrink_with_rounds(self, skewed_dataset):
        losses = random_quadratic_family(skewed_dataset.universe, 4, rng=6)
        few = make_offline(skewed_dataset, losses, rounds=2)
        many = make_offline(skewed_dataset, losses, rounds=50)
        assert many._select_epsilon < few._select_epsilon

    def test_oracle_rebudgeted(self, skewed_dataset):
        losses = random_quadratic_family(skewed_dataset.universe, 4, rng=7)
        oracle = OutputPerturbationOracle(epsilon=55.0, delta=0.5)
        mechanism = OfflineMWConvex(
            skewed_dataset, losses, oracle, scale=4.0, rounds=4,
            epsilon=1.0, delta=1e-6, rng=0,
        )
        assert mechanism._oracle.epsilon < 1.0
        assert oracle.epsilon == 55.0


class TestValidation:
    def test_empty_losses_rejected(self, skewed_dataset):
        with pytest.raises(ValidationError):
            make_offline(skewed_dataset, [])

    def test_zero_rounds_rejected(self, skewed_dataset):
        losses = random_quadratic_family(skewed_dataset.universe, 2, rng=8)
        with pytest.raises(ValidationError):
            make_offline(skewed_dataset, losses, rounds=0)

    def test_scale_guard(self, skewed_dataset):
        losses = random_quadratic_family(skewed_dataset.universe, 2, rng=9)
        with pytest.raises(ValidationError, match="scale"):
            make_offline(skewed_dataset, losses, scale=0.01)

    def test_eta_default_matches_figure_3_form(self, skewed_dataset):
        losses = random_quadratic_family(skewed_dataset.universe, 2, rng=10)
        mechanism = make_offline(skewed_dataset, losses, rounds=16)
        expected = np.sqrt(np.log(skewed_dataset.universe.size) / 16)
        assert mechanism.eta == pytest.approx(expected)
