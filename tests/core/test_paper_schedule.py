"""End-to-end runs with schedule="paper" — Figure 3's exact constants.

The paper schedule's T is huge for interesting alpha, so these tests pick
parameters where T stays tractable (small universe, 1-D CM queries with
S = 1, generous alpha), demonstrating the mechanism runs unmodified on the
paper's own constants — not only the calibrated ones.
"""

import numpy as np
import pytest

from repro.core.accuracy import answer_error
from repro.core.config import PMWConfig
from repro.core.pmw_cm import PrivateMWConvex
from repro.data.builders import signed_cube
from repro.data.dataset import Dataset
from repro.erm.oracle import NonPrivateOracle
from repro.losses.families import linear_queries_as_cm, random_linear_queries


@pytest.fixture
def setup(rng):
    universe = signed_cube(3)  # |X| = 8, log|X| ~ 2.08
    weights = rng.dirichlet(np.full(universe.size, 0.2))
    dataset = Dataset(universe, rng.choice(universe.size, size=100_000,
                                           p=weights))
    queries = random_linear_queries(universe, 12, rng=rng)
    losses = linear_queries_as_cm(queries)
    return universe, dataset, losses


class TestPaperSchedule:
    def test_paper_T_is_exact(self, setup):
        universe, dataset, losses = setup
        scale = max(loss.scale_bound() for loss in losses)  # = 1.0
        config = PMWConfig.from_targets(
            alpha=0.9, beta=0.1, epsilon=2.0, delta=1e-6, scale=scale,
            universe_size=universe.size, schedule="paper",
        )
        expected = int(np.ceil(64 * scale**2 * np.log(8) / 0.81))
        assert config.max_updates == expected
        assert config.max_updates < 500  # tractable at these parameters

    def test_mechanism_runs_on_paper_constants(self, setup):
        universe, dataset, losses = setup
        scale = max(loss.scale_bound() for loss in losses)
        mechanism = PrivateMWConvex(
            dataset, NonPrivateOracle(200), scale=scale, alpha=0.9,
            beta=0.1, epsilon=2.0, delta=1e-6, schedule="paper",
            solver_steps=100, rng=0,
        )
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        data = dataset.histogram()
        for loss, answer in zip(losses, answers):
            assert answer_error(loss, data, answer.theta) <= 0.9

    def test_paper_schedule_never_halts_at_theorem_n(self, setup):
        """Claim 3.7: with the paper T and ample data, the mechanism
        cannot exhaust its update budget on this small workload."""
        universe, dataset, losses = setup
        scale = max(loss.scale_bound() for loss in losses)
        mechanism = PrivateMWConvex(
            dataset, NonPrivateOracle(200), scale=scale, alpha=0.9,
            beta=0.1, epsilon=2.0, delta=1e-6, schedule="paper",
            solver_steps=100, rng=1,
        )
        mechanism.answer_all(losses, on_halt="raise")  # must not raise
        assert not mechanism.halted
        assert mechanism.updates_performed < mechanism.config.max_updates

    def test_linear_query_error_transfer(self, setup):
        """For LinearQueryAsCM, excess risk alpha corresponds to answer
        error 2*sqrt(alpha); verify the chain on real answers."""
        universe, dataset, losses = setup
        scale = max(loss.scale_bound() for loss in losses)
        mechanism = PrivateMWConvex(
            dataset, NonPrivateOracle(200), scale=scale, alpha=0.25,
            beta=0.1, epsilon=2.0, delta=1e-6, schedule="calibrated",
            max_updates=20, solver_steps=100, rng=2,
        )
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        data = dataset.histogram()
        for loss, answer in zip(losses, answers):
            excess = answer_error(loss, data, answer.theta)
            answer_gap = abs(answer.theta[0] - loss.query.answer(data))
            assert excess == pytest.approx(answer_gap**2 / 4, abs=1e-9)
