"""Tests for the Figure 3 mechanism (PrivateMWConvex)."""

import numpy as np
import pytest

from repro.core.accuracy import answer_error
from repro.core.pmw_cm import PrivateMWConvex
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.erm.oracle import NonPrivateOracle
from repro.erm.output_perturbation import OutputPerturbationOracle
from repro.exceptions import LossSpecificationError, MechanismHalted
from repro.losses.families import (
    random_logistic_family,
    random_quadratic_family,
    random_ridge_family,
)
from repro.losses.quadratic import QuadraticLoss
from repro.optimize.projections import L2Ball


def make_mechanism(dataset, *, scale=4.0, alpha=0.3, oracle=None,
                   max_updates=12, rng=0, **overrides):
    oracle = oracle or NonPrivateOracle(solver_steps=200)
    params = dict(scale=scale, alpha=alpha, beta=0.1, epsilon=2.0,
                  delta=1e-6, schedule="calibrated", max_updates=max_updates,
                  solver_steps=200, rng=rng)
    params.update(overrides)
    return PrivateMWConvex(dataset, oracle, **params)


@pytest.fixture
def concentrated_dataset(cube_universe):
    """A dataset far from uniform: quadratic queries err ~0.5 initially.

    80% of the mass sits on one cube vertex, so the uniform starting
    hypothesis answers every quadratic query badly — updates are forced
    deterministically when noise_multiplier = 0.
    """
    from repro.data.dataset import Dataset
    indices = np.concatenate([np.full(240, 5), np.arange(8).repeat(8)[:60]])
    return Dataset(cube_universe, indices)


class TestBasicOperation:
    def test_answers_in_domain(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=1)
        for loss in losses:
            answer = mechanism.answer(loss)
            assert loss.domain.contains(answer.theta, tol=1e-9)

    def test_query_indices_sequential(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=1)
        answers = mechanism.answer_all(losses)
        assert [a.query_index for a in answers] == [0, 1, 2, 3]

    def test_hypothesis_starts_uniform(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        np.testing.assert_allclose(mechanism.hypothesis.weights,
                                   1.0 / cube_dataset.universe.size)

    def test_bottom_answers_cost_no_budget(self, cube_dataset):
        """Queries answered from the hypothesis never touch the oracle."""
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 6, rng=1)
        mechanism.answer_all(losses)
        oracle_spends = [s for s in mechanism.accountant.spends
                         if s.label.startswith("oracle")]
        assert len(oracle_spends) == mechanism.updates_performed

    def test_update_history_recorded(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 6, rng=1)
        mechanism.answer_all(losses)
        history = mechanism.history
        assert len(history) == mechanism.updates_performed
        for entry in history:
            assert entry["error_query"] >= 0.0


class TestAccuracy:
    def test_accurate_on_quadratic_family(self, cube_dataset):
        """Definition 2.4 at calibrated scale: all errors <= alpha."""
        alpha = 0.3
        mechanism = make_mechanism(cube_dataset, alpha=alpha)
        losses = random_quadratic_family(cube_dataset.universe, 10, rng=2)
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        data = cube_dataset.histogram()
        for loss, answer in zip(losses, answers):
            assert answer_error(loss, data, answer.theta) <= alpha + 0.05

    def test_accurate_on_logistic_family(self, classification_task):
        alpha = 0.3
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=30)
        mechanism = PrivateMWConvex(
            classification_task.dataset, oracle, scale=2.0, alpha=alpha,
            epsilon=2.0, delta=1e-6, schedule="calibrated", max_updates=15,
            solver_steps=250, rng=4,
        )
        losses = random_logistic_family(classification_task.universe, 8,
                                        rng=3)
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        data = classification_task.dataset.histogram()
        for loss, answer in zip(losses, answers):
            assert answer_error(loss, data, answer.theta,
                                solver_steps=400) <= alpha + 0.1

    def test_repeated_query_answered_from_hypothesis(self,
                                                     concentrated_dataset):
        """Once a query forces an update, re-asking it should come back
        bottom (the hypothesis now answers it well)."""
        mechanism = make_mechanism(concentrated_dataset, alpha=0.4,
                                   noise_multiplier=0.0)
        loss = random_quadratic_family(concentrated_dataset.universe, 1,
                                       rng=5)[0]
        first = mechanism.answer(loss)
        assert first.from_update  # the uniform hypothesis was truly wrong
        followups = [mechanism.answer(loss) for _ in range(3)]
        # After at most a couple of updates the hypothesis answers it.
        assert any(not a.from_update for a in followups)


class TestHalting:
    def test_halts_at_update_budget(self, concentrated_dataset):
        mechanism = make_mechanism(concentrated_dataset, max_updates=1,
                                   noise_multiplier=0.0)
        losses = random_quadratic_family(concentrated_dataset.universe, 5,
                                         rng=6)
        mechanism.answer(losses[0])  # errs badly -> top -> T exhausted
        assert mechanism.halted
        with pytest.raises(MechanismHalted):
            mechanism.answer(losses[1])
        assert mechanism.updates_performed == 1

    def test_answer_all_hypothesis_fallback(self, concentrated_dataset):
        mechanism = make_mechanism(concentrated_dataset, max_updates=1,
                                   noise_multiplier=0.0)
        losses = random_quadratic_family(concentrated_dataset.universe, 10,
                                         rng=6)
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        assert len(answers) == 10
        assert mechanism.updates_performed == 1

    def test_answer_from_hypothesis_never_spends(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=7)[0]
        before = mechanism.accountant.num_spends
        mechanism.answer_from_hypothesis(loss)
        assert mechanism.accountant.num_spends == before


class TestPrivacyAccounting:
    def test_guarantee_close_to_budget(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset, epsilon=1.0)
        guarantee = mechanism.privacy_guarantee()
        # eps/2 (SV) + eps/2 (oracles, first order) + second-order term.
        assert guarantee.epsilon == pytest.approx(1.0, rel=0.05)
        assert guarantee.delta <= 1e-6 * (1 + 1e-9)

    def test_sv_spend_registered_once(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset, epsilon=2.0)
        sv_spends = [s for s in mechanism.accountant.spends
                     if s.label == "sparse-vector"]
        assert len(sv_spends) == 1
        assert sv_spends[0].epsilon == pytest.approx(1.0)  # eps / 2

    def test_oracle_spends_at_per_round_budget(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 8, rng=8)
        mechanism.answer_all(losses, on_halt="hypothesis")
        for spend in mechanism.accountant.spends:
            if spend.label.startswith("oracle"):
                assert spend.epsilon == pytest.approx(
                    mechanism.config.oracle_epsilon
                )

    def test_oracle_rebudgeted(self, cube_dataset):
        oracle = OutputPerturbationOracle(epsilon=123.0, delta=0.5)
        losses = random_ridge_family(
            cube_dataset.universe.with_labels(
                np.zeros(cube_dataset.universe.size)
            ), 1, rng=0,
        )
        mechanism = make_mechanism(cube_dataset, oracle=oracle)
        assert mechanism._oracle.epsilon == pytest.approx(
            mechanism.config.oracle_epsilon
        )
        assert oracle.epsilon == 123.0  # original untouched


class TestScaleGuard:
    def test_loss_exceeding_family_scale_rejected(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset, scale=0.5)
        loss = QuadraticLoss(L2Ball(cube_dataset.universe.dim))  # S = 4
        with pytest.raises(LossSpecificationError, match="family"):
            mechanism.answer(loss)


class TestSyntheticData:
    def test_synthetic_dataset_shape(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=9)
        mechanism.answer_all(losses, on_halt="hypothesis")
        synthetic = mechanism.synthetic_dataset(100, rng=0)
        assert synthetic.n == 100
        assert synthetic.universe is cube_dataset.universe

    def test_synthetic_data_approximates_answers(self, cube_dataset):
        """Section 4.3: the final hypothesis is a usable synthetic dataset."""
        mechanism = make_mechanism(cube_dataset, max_updates=20)
        losses = random_quadratic_family(cube_dataset.universe, 8, rng=10)
        mechanism.answer_all(losses, on_halt="hypothesis")
        synthetic = mechanism.synthetic_dataset(20_000, rng=1).histogram()
        data = cube_dataset.histogram()
        for loss in losses:
            error = answer_error(
                loss, data,
                loss.exact_minimizer(synthetic),
            )
            assert error <= 0.5  # loose: synthetic data is an approximation


class TestDeterminism:
    def test_same_seed_same_run(self, cube_dataset):
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=11)
        runs = []
        for _ in range(2):
            mechanism = make_mechanism(cube_dataset, rng=42)
            answers = mechanism.answer_all(losses, on_halt="hypothesis")
            runs.append(np.stack([a.theta for a in answers]))
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_different_seeds_differ(self, cube_dataset):
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=11)
        oracle = OutputPerturbationOracle(epsilon=1.0, delta=1e-6)
        thetas = []
        labeled = cube_dataset  # quadratic needs no labels
        for seed in (1, 2):
            mechanism = make_mechanism(labeled, rng=seed)
            answers = mechanism.answer_all(losses, on_halt="hypothesis")
            thetas.append(np.stack([a.theta for a in answers]))
        # The SV noise differs, so update patterns generally differ; allow
        # rare coincidence by checking the accountant instead if equal.
        if np.array_equal(thetas[0], thetas[1]):
            pytest.skip("seeds coincided on this tiny run")


class TestMidStreamHalt:
    """Focused coverage of answer_all(on_halt="hypothesis") when the update
    budget runs out in the middle of a stream."""

    def _halted_run(self, dataset, k=10, max_updates=2):
        mechanism = make_mechanism(dataset, max_updates=max_updates,
                                   noise_multiplier=0.0)
        losses = random_quadratic_family(dataset.universe, k, rng=13)
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        assert mechanism.halted  # the concentrated dataset forces updates
        return mechanism, losses, answers

    def test_every_query_answered_with_sequential_indices(
            self, concentrated_dataset):
        mechanism, losses, answers = self._halted_run(concentrated_dataset)
        assert len(answers) == len(losses)
        assert [a.query_index for a in answers] == list(range(len(losses)))

    def test_post_halt_answers_marked_no_update(self, concentrated_dataset):
        mechanism, _, answers = self._halted_run(concentrated_dataset)
        halt_query = max(a.query_index for a in answers if a.from_update)
        for answer in answers:
            if answer.query_index > halt_query:
                assert not answer.from_update
                assert answer.update_index is None

    def test_no_spends_after_halt(self, concentrated_dataset):
        mechanism, losses, _ = self._halted_run(concentrated_dataset)
        spends_at_halt = mechanism.accountant.num_spends
        more = random_quadratic_family(concentrated_dataset.universe, 5,
                                       rng=14)
        mechanism.answer_all(more, on_halt="hypothesis")
        assert mechanism.accountant.num_spends == spends_at_halt

    def test_post_halt_answers_come_from_final_hypothesis(
            self, concentrated_dataset):
        from repro.optimize.minimize import minimize_loss
        mechanism, losses, answers = self._halted_run(concentrated_dataset)
        final = mechanism.hypothesis
        halt_query = max(a.query_index for a in answers if a.from_update)
        for answer in answers:
            if answer.query_index > halt_query:
                expected = minimize_loss(losses[answer.query_index], final,
                                         steps=200).theta
                np.testing.assert_allclose(answer.theta, expected,
                                           atol=1e-6)

    def test_on_halt_raise_propagates_mid_stream(self, concentrated_dataset):
        mechanism = make_mechanism(concentrated_dataset, max_updates=1,
                                   noise_multiplier=0.0)
        losses = random_quadratic_family(concentrated_dataset.universe, 6,
                                         rng=13)
        with pytest.raises(MechanismHalted,
                           match="before the query stream ended"):
            mechanism.answer_all(losses, on_halt="raise")
        # the pre-halt prefix was still recorded
        assert mechanism.queries_answered >= 1

    def test_invalid_on_halt_rejected(self, cube_dataset):
        from repro.exceptions import ValidationError
        mechanism = make_mechanism(cube_dataset)
        with pytest.raises(ValidationError, match="on_halt"):
            mechanism.answer_all([], on_halt="ignore")


class TestSnapshotRestore:
    def test_restored_run_continues_bit_for_bit(self, cube_dataset):
        from repro.core.pmw_cm import PrivateMWConvex
        losses = random_quadratic_family(cube_dataset.universe, 8, rng=15)
        mechanism = make_mechanism(cube_dataset, rng=21)
        for loss in losses[:4]:
            mechanism.answer(loss)
        snapshot = mechanism.snapshot()
        twin = PrivateMWConvex.restore(snapshot, cube_dataset,
                                       NonPrivateOracle(solver_steps=200))
        for loss in losses[4:]:
            a = mechanism.answer(loss)
            b = twin.answer(loss)
            assert a.from_update == b.from_update
            np.testing.assert_array_equal(a.theta, b.theta)
        assert twin.queries_answered == mechanism.queries_answered
        assert twin.updates_performed == mechanism.updates_performed

    def test_restored_accountant_identical(self, cube_dataset):
        from repro.core.pmw_cm import PrivateMWConvex
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=16)
        mechanism.answer_all(losses, on_halt="hypothesis")
        twin = PrivateMWConvex.restore(mechanism.snapshot(), cube_dataset,
                                       NonPrivateOracle(solver_steps=200))
        assert (twin.accountant.total_basic()
                == mechanism.accountant.total_basic())
        assert (twin.accountant.total_advanced(1e-7)
                == mechanism.accountant.total_advanced(1e-7))

    def test_wrong_universe_rejected(self, cube_dataset):
        from repro.core.pmw_cm import PrivateMWConvex
        from repro.data.builders import signed_cube
        from repro.data.dataset import Dataset
        from repro.exceptions import ValidationError
        mechanism = make_mechanism(cube_dataset)
        other = Dataset.uniform_random(signed_cube(4), 50, rng=0)
        with pytest.raises(ValidationError, match="universe"):
            PrivateMWConvex.restore(mechanism.snapshot(), other,
                                    NonPrivateOracle())

    def test_wrong_format_rejected(self, cube_dataset):
        from repro.core.pmw_cm import PrivateMWConvex
        from repro.exceptions import ValidationError
        with pytest.raises(ValidationError, match="format"):
            PrivateMWConvex.restore({"format": "bogus"}, cube_dataset,
                                    NonPrivateOracle())


class TestBudgetExhaustionMidStream:
    def test_answer_all_hypothesis_downgrades_on_budget_exhaustion(
            self, cube_dataset):
        """on_halt="hypothesis" must cover armed-budget exhaustion too."""
        from repro.exceptions import PrivacyBudgetExhausted
        mechanism = make_mechanism(cube_dataset)
        mechanism.accountant.epsilon_budget = \
            mechanism.accountant.total_basic().epsilon + 1e-9
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=17)
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        assert len(answers) == 4
        assert all(not a.from_update for a in answers)
        with pytest.raises(PrivacyBudgetExhausted):
            mechanism.answer_all(losses, on_halt="raise")
