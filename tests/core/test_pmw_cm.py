"""Tests for the Figure 3 mechanism (PrivateMWConvex)."""

import numpy as np
import pytest

from repro.core.accuracy import answer_error
from repro.core.pmw_cm import PrivateMWConvex
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.erm.oracle import NonPrivateOracle
from repro.erm.output_perturbation import OutputPerturbationOracle
from repro.exceptions import LossSpecificationError, MechanismHalted
from repro.losses.families import (
    random_logistic_family,
    random_quadratic_family,
    random_ridge_family,
)
from repro.losses.quadratic import QuadraticLoss
from repro.optimize.projections import L2Ball


def make_mechanism(dataset, *, scale=4.0, alpha=0.3, oracle=None,
                   max_updates=12, rng=0, **overrides):
    oracle = oracle or NonPrivateOracle(solver_steps=200)
    params = dict(scale=scale, alpha=alpha, beta=0.1, epsilon=2.0,
                  delta=1e-6, schedule="calibrated", max_updates=max_updates,
                  solver_steps=200, rng=rng)
    params.update(overrides)
    return PrivateMWConvex(dataset, oracle, **params)


@pytest.fixture
def concentrated_dataset(cube_universe):
    """A dataset far from uniform: quadratic queries err ~0.5 initially.

    80% of the mass sits on one cube vertex, so the uniform starting
    hypothesis answers every quadratic query badly — updates are forced
    deterministically when noise_multiplier = 0.
    """
    from repro.data.dataset import Dataset
    indices = np.concatenate([np.full(240, 5), np.arange(8).repeat(8)[:60]])
    return Dataset(cube_universe, indices)


class TestBasicOperation:
    def test_answers_in_domain(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=1)
        for loss in losses:
            answer = mechanism.answer(loss)
            assert loss.domain.contains(answer.theta, tol=1e-9)

    def test_query_indices_sequential(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=1)
        answers = mechanism.answer_all(losses)
        assert [a.query_index for a in answers] == [0, 1, 2, 3]

    def test_hypothesis_starts_uniform(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        np.testing.assert_allclose(mechanism.hypothesis.weights,
                                   1.0 / cube_dataset.universe.size)

    def test_bottom_answers_cost_no_budget(self, cube_dataset):
        """Queries answered from the hypothesis never touch the oracle."""
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 6, rng=1)
        mechanism.answer_all(losses)
        oracle_spends = [s for s in mechanism.accountant.spends
                         if s.label.startswith("oracle")]
        assert len(oracle_spends) == mechanism.updates_performed

    def test_update_history_recorded(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 6, rng=1)
        mechanism.answer_all(losses)
        history = mechanism.history
        assert len(history) == mechanism.updates_performed
        for entry in history:
            assert entry["error_query"] >= 0.0


class TestAccuracy:
    def test_accurate_on_quadratic_family(self, cube_dataset):
        """Definition 2.4 at calibrated scale: all errors <= alpha."""
        alpha = 0.3
        mechanism = make_mechanism(cube_dataset, alpha=alpha)
        losses = random_quadratic_family(cube_dataset.universe, 10, rng=2)
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        data = cube_dataset.histogram()
        for loss, answer in zip(losses, answers):
            assert answer_error(loss, data, answer.theta) <= alpha + 0.05

    def test_accurate_on_logistic_family(self, classification_task):
        alpha = 0.3
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=30)
        mechanism = PrivateMWConvex(
            classification_task.dataset, oracle, scale=2.0, alpha=alpha,
            epsilon=2.0, delta=1e-6, schedule="calibrated", max_updates=15,
            solver_steps=250, rng=4,
        )
        losses = random_logistic_family(classification_task.universe, 8,
                                        rng=3)
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        data = classification_task.dataset.histogram()
        for loss, answer in zip(losses, answers):
            assert answer_error(loss, data, answer.theta,
                                solver_steps=400) <= alpha + 0.1

    def test_repeated_query_answered_from_hypothesis(self,
                                                     concentrated_dataset):
        """Once a query forces an update, re-asking it should come back
        bottom (the hypothesis now answers it well)."""
        mechanism = make_mechanism(concentrated_dataset, alpha=0.4,
                                   noise_multiplier=0.0)
        loss = random_quadratic_family(concentrated_dataset.universe, 1,
                                       rng=5)[0]
        first = mechanism.answer(loss)
        assert first.from_update  # the uniform hypothesis was truly wrong
        followups = [mechanism.answer(loss) for _ in range(3)]
        # After at most a couple of updates the hypothesis answers it.
        assert any(not a.from_update for a in followups)


class TestHalting:
    def test_halts_at_update_budget(self, concentrated_dataset):
        mechanism = make_mechanism(concentrated_dataset, max_updates=1,
                                   noise_multiplier=0.0)
        losses = random_quadratic_family(concentrated_dataset.universe, 5,
                                         rng=6)
        mechanism.answer(losses[0])  # errs badly -> top -> T exhausted
        assert mechanism.halted
        with pytest.raises(MechanismHalted):
            mechanism.answer(losses[1])
        assert mechanism.updates_performed == 1

    def test_answer_all_hypothesis_fallback(self, concentrated_dataset):
        mechanism = make_mechanism(concentrated_dataset, max_updates=1,
                                   noise_multiplier=0.0)
        losses = random_quadratic_family(concentrated_dataset.universe, 10,
                                         rng=6)
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        assert len(answers) == 10
        assert mechanism.updates_performed == 1

    def test_answer_from_hypothesis_never_spends(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=7)[0]
        before = mechanism.accountant.num_spends
        mechanism.answer_from_hypothesis(loss)
        assert mechanism.accountant.num_spends == before


class TestPrivacyAccounting:
    def test_guarantee_close_to_budget(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset, epsilon=1.0)
        guarantee = mechanism.privacy_guarantee()
        # eps/2 (SV) + eps/2 (oracles, first order) + second-order term.
        assert guarantee.epsilon == pytest.approx(1.0, rel=0.05)
        assert guarantee.delta <= 1e-6 * (1 + 1e-9)

    def test_sv_spend_registered_once(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset, epsilon=2.0)
        sv_spends = [s for s in mechanism.accountant.spends
                     if s.label == "sparse-vector"]
        assert len(sv_spends) == 1
        assert sv_spends[0].epsilon == pytest.approx(1.0)  # eps / 2

    def test_oracle_spends_at_per_round_budget(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 8, rng=8)
        mechanism.answer_all(losses, on_halt="hypothesis")
        for spend in mechanism.accountant.spends:
            if spend.label.startswith("oracle"):
                assert spend.epsilon == pytest.approx(
                    mechanism.config.oracle_epsilon
                )

    def test_oracle_rebudgeted(self, cube_dataset):
        oracle = OutputPerturbationOracle(epsilon=123.0, delta=0.5)
        losses = random_ridge_family(
            cube_dataset.universe.with_labels(
                np.zeros(cube_dataset.universe.size)
            ), 1, rng=0,
        )
        mechanism = make_mechanism(cube_dataset, oracle=oracle)
        assert mechanism._oracle.epsilon == pytest.approx(
            mechanism.config.oracle_epsilon
        )
        assert oracle.epsilon == 123.0  # original untouched


class TestScaleGuard:
    def test_loss_exceeding_family_scale_rejected(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset, scale=0.5)
        loss = QuadraticLoss(L2Ball(cube_dataset.universe.dim))  # S = 4
        with pytest.raises(LossSpecificationError, match="family"):
            mechanism.answer(loss)


class TestSyntheticData:
    def test_synthetic_dataset_shape(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=9)
        mechanism.answer_all(losses, on_halt="hypothesis")
        synthetic = mechanism.synthetic_dataset(100, rng=0)
        assert synthetic.n == 100
        assert synthetic.universe is cube_dataset.universe

    def test_synthetic_data_approximates_answers(self, cube_dataset):
        """Section 4.3: the final hypothesis is a usable synthetic dataset."""
        mechanism = make_mechanism(cube_dataset, max_updates=20)
        losses = random_quadratic_family(cube_dataset.universe, 8, rng=10)
        mechanism.answer_all(losses, on_halt="hypothesis")
        synthetic = mechanism.synthetic_dataset(20_000, rng=1).histogram()
        data = cube_dataset.histogram()
        for loss in losses:
            error = answer_error(
                loss, data,
                loss.exact_minimizer(synthetic),
            )
            assert error <= 0.5  # loose: synthetic data is an approximation


class TestDeterminism:
    def test_same_seed_same_run(self, cube_dataset):
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=11)
        runs = []
        for _ in range(2):
            mechanism = make_mechanism(cube_dataset, rng=42)
            answers = mechanism.answer_all(losses, on_halt="hypothesis")
            runs.append(np.stack([a.theta for a in answers]))
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_different_seeds_differ(self, cube_dataset):
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=11)
        oracle = OutputPerturbationOracle(epsilon=1.0, delta=1e-6)
        thetas = []
        labeled = cube_dataset  # quadratic needs no labels
        for seed in (1, 2):
            mechanism = make_mechanism(labeled, rng=seed)
            answers = mechanism.answer_all(losses, on_halt="hypothesis")
            thetas.append(np.stack([a.theta for a in answers]))
        # The SV noise differs, so update patterns generally differ; allow
        # rare coincidence by checking the accountant instead if equal.
        if np.array_equal(thetas[0], thetas[1]):
            pytest.skip("seeds coincided on this tiny run")
