"""Tests for the HR10 linear-query baseline (PrivateMWLinear)."""

import numpy as np
import pytest

from repro.core.pmw_linear import PrivateMWLinear
from repro.data.dataset import Dataset
from repro.exceptions import MechanismHalted, ValidationError
from repro.losses.families import random_halfspace_queries
from repro.losses.linear import LinearQuery


@pytest.fixture
def skewed_dataset(cube_universe, rng):
    weights = rng.dirichlet(np.full(cube_universe.size, 0.3))
    indices = rng.choice(cube_universe.size, size=50_000, p=weights)
    return Dataset(cube_universe, indices)


def make_mechanism(dataset, **overrides):
    params = dict(alpha=0.1, beta=0.1, epsilon=1.0, delta=1e-6,
                  schedule="calibrated", max_updates=16, rng=0)
    params.update(overrides)
    return PrivateMWLinear(dataset, **params)


class TestBasicOperation:
    def test_answers_in_unit_interval(self, skewed_dataset):
        mechanism = make_mechanism(skewed_dataset)
        queries = random_halfspace_queries(skewed_dataset.universe, 20, rng=1)
        for query in queries:
            answer = mechanism.answer(query)
            assert 0.0 <= answer.value <= 1.0

    def test_accuracy_at_scale(self, skewed_dataset):
        """With n = 50k, all answers should be within ~alpha."""
        alpha = 0.1
        mechanism = make_mechanism(skewed_dataset, alpha=alpha)
        queries = random_halfspace_queries(skewed_dataset.universe, 50, rng=2)
        data = skewed_dataset.histogram()
        answers = mechanism.answer_all(queries, on_halt="hypothesis")
        errors = [abs(q.answer(data) - a.value)
                  for q, a in zip(queries, answers)]
        assert max(errors) <= alpha + 0.05

    def test_hypothesis_improves(self, skewed_dataset):
        """After the stream, the hypothesis answers the queries well."""
        mechanism = make_mechanism(skewed_dataset)
        queries = random_halfspace_queries(skewed_dataset.universe, 40, rng=3)
        mechanism.answer_all(queries, on_halt="hypothesis")
        data = skewed_dataset.histogram()
        hypothesis = mechanism.hypothesis
        errors = [abs(q.answer(data) - q.answer(hypothesis))
                  for q in queries]
        assert np.mean(errors) <= 0.1

    def test_update_count_bounded(self, skewed_dataset):
        mechanism = make_mechanism(skewed_dataset, max_updates=5)
        queries = random_halfspace_queries(skewed_dataset.universe, 100, rng=4)
        mechanism.answer_all(queries, on_halt="hypothesis")
        assert mechanism.updates_performed <= 5

    def test_query_size_mismatch(self, skewed_dataset):
        mechanism = make_mechanism(skewed_dataset)
        with pytest.raises(ValidationError, match="universe"):
            mechanism.answer(LinearQuery(np.zeros(3)))

    def test_halt_raises(self, skewed_dataset):
        mechanism = make_mechanism(skewed_dataset, max_updates=1,
                                   noise_multiplier=0.0, alpha=0.01)
        # A query the uniform hypothesis must answer wrongly: the most
        # popular single element's frequency.
        top_element = int(np.argmax(skewed_dataset.histogram().weights))
        table = np.zeros(skewed_dataset.universe.size)
        table[top_element] = 1.0
        mechanism.answer(LinearQuery(table))
        assert mechanism.halted
        with pytest.raises(MechanismHalted):
            mechanism.answer(LinearQuery(table))

    def test_accountant_tracks_measurements(self, skewed_dataset):
        mechanism = make_mechanism(skewed_dataset)
        queries = random_halfspace_queries(skewed_dataset.universe, 30, rng=5)
        mechanism.answer_all(queries, on_halt="hypothesis")
        measure_spends = [s for s in mechanism.accountant.spends
                          if s.label.startswith("measure")]
        assert len(measure_spends) == mechanism.updates_performed


class TestAgainstExactAnswers:
    def test_bottom_answers_come_from_hypothesis(self, skewed_dataset):
        mechanism = make_mechanism(skewed_dataset)
        queries = random_halfspace_queries(skewed_dataset.universe, 10, rng=6)
        for query in queries:
            hypothesis_before = mechanism.hypothesis
            answer = mechanism.answer(query)
            if not answer.from_update:
                assert answer.value == pytest.approx(
                    hypothesis_before.dot(query.table)
                )

    def test_update_moves_hypothesis_toward_truth(self, skewed_dataset):
        mechanism = make_mechanism(skewed_dataset, alpha=0.05)
        data = skewed_dataset.histogram()
        queries = random_halfspace_queries(skewed_dataset.universe, 60, rng=7)
        before = [abs(q.answer(data) - q.answer(mechanism.hypothesis))
                  for q in queries]
        mechanism.answer_all(queries, on_halt="hypothesis")
        after = [abs(q.answer(data) - q.answer(mechanism.hypothesis))
                 for q in queries]
        assert np.mean(after) < np.mean(before)


class TestSnapshotRestore:
    def test_restored_run_continues_bit_for_bit(self, cube_dataset):
        from repro.core.pmw_linear import PrivateMWLinear
        from repro.losses.families import random_linear_queries
        queries = random_linear_queries(cube_dataset.universe, 8, rng=3)
        mechanism = PrivateMWLinear(cube_dataset, alpha=0.3, epsilon=1.0,
                                    delta=1e-6, max_updates=12, rng=9)
        for query in queries[:4]:
            mechanism.answer(query)
        twin = PrivateMWLinear.restore(mechanism.snapshot(), cube_dataset)
        for query in queries[4:]:
            a = mechanism.answer(query)
            b = twin.answer(query)
            assert a.value == b.value
            assert a.from_update == b.from_update
        assert (twin.accountant.total_basic()
                == mechanism.accountant.total_basic())

    def test_mid_stream_halt_hypothesis_fallback_counts_queries(
            self, cube_dataset):
        """answer_all(on_halt="hypothesis") serves the whole stream and
        keeps query indices sequential across the halt."""
        from repro.core.pmw_linear import PrivateMWLinear
        from repro.losses.families import random_linear_queries
        mechanism = PrivateMWLinear(cube_dataset, alpha=0.01, epsilon=1.0,
                                    delta=1e-6, max_updates=1,
                                    noise_multiplier=0.0, rng=0)
        queries = random_linear_queries(cube_dataset.universe, 6, rng=4)
        answers = mechanism.answer_all(queries, on_halt="hypothesis")
        assert len(answers) == 6
        assert [a.query_index for a in answers] == list(range(6))
        assert mechanism.halted
        spends = mechanism.accountant.num_spends
        mechanism.answer_all(queries, on_halt="hypothesis")
        assert mechanism.accountant.num_spends == spends


class TestBudgetExhaustionMidStream:
    def test_answer_all_hypothesis_downgrades_on_budget_exhaustion(
            self, cube_dataset):
        from repro.core.pmw_linear import PrivateMWLinear
        from repro.exceptions import PrivacyBudgetExhausted
        from repro.losses.families import random_linear_queries
        mechanism = PrivateMWLinear(cube_dataset, alpha=0.01, epsilon=1.0,
                                    delta=1e-6, max_updates=5,
                                    noise_multiplier=0.0, rng=0)
        mechanism.accountant.epsilon_budget = \
            mechanism.accountant.total_basic().epsilon + 1e-9
        queries = random_linear_queries(cube_dataset.universe, 4, rng=4)
        answers = mechanism.answer_all(queries, on_halt="hypothesis")
        assert len(answers) == 4
        assert [a.query_index for a in answers] == [0, 1, 2, 3]
        assert all(not a.from_update for a in answers)
        with pytest.raises(PrivacyBudgetExhausted):
            mechanism.answer_all(queries, on_halt="raise")
