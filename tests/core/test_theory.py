"""Tests for the theory formulas (Table 1, Theorem 3.8, Figure 3's T)."""

import math

import pytest

from repro.core import theory


class TestUpdateBudget:
    def test_figure_3_formula(self):
        t = theory.update_budget(scale=2.0, universe_size=1024, alpha=0.1)
        assert t == math.ceil(64 * 4 * math.log(1024) / 0.01)

    def test_grows_with_scale_squared(self):
        t1 = theory.update_budget(1.0, 1024, 0.1)
        t2 = theory.update_budget(2.0, 1024, 0.1)
        assert t2 == pytest.approx(4 * t1, rel=0.01)

    def test_shrinks_with_alpha_squared(self):
        t1 = theory.update_budget(1.0, 1024, 0.1)
        t2 = theory.update_budget(1.0, 1024, 0.2)
        assert t1 == pytest.approx(4 * t2, rel=0.01)


class TestTheorem38:
    def test_log_k_dependence(self):
        kwargs = dict(scale=1.0, universe_size=1024, alpha=0.1, epsilon=1.0,
                      delta=1e-6, beta=0.05)
        n1 = theory.theorem_3_8_sample_size(k=100, **kwargs)
        n2 = theory.theorem_3_8_sample_size(k=100_000, **kwargs)
        assert n2 / n1 < 2.0  # 1000x more queries, < 2x more data

    def test_oracle_term_respected(self):
        n = theory.theorem_3_8_sample_size(
            scale=1.0, universe_size=4, alpha=0.5, epsilon=1.0, delta=1e-6,
            k=2, beta=0.5, oracle_n=1e12,
        )
        assert n == 1e12


class TestTable1:
    def test_four_rows_in_paper_order(self):
        rows = theory.table1_rows()
        assert [row.key for row in rows] == [
            "linear", "lipschitz", "uglm", "strongly_convex",
        ]

    def test_new_results_attributed_to_paper(self):
        for row in theory.table1_rows():
            if row.key != "linear":
                assert row.k_source == "this paper"

    def test_linear_single(self):
        assert theory.single_query_n("linear", alpha=0.1) == pytest.approx(10)

    def test_lipschitz_single_sqrt_d(self):
        n4 = theory.single_query_n("lipschitz", alpha=0.1, d=4)
        n16 = theory.single_query_n("lipschitz", alpha=0.1, d=16)
        assert n16 / n4 == pytest.approx(2.0)

    def test_uglm_single_dimension_free(self):
        n4 = theory.single_query_n("uglm", alpha=0.1, d=4)
        n64 = theory.single_query_n("uglm", alpha=0.1, d=64)
        assert n4 == n64

    def test_strongly_convex_improves_with_sigma(self):
        weak = theory.single_query_n("strongly_convex", alpha=0.1, d=4,
                                     sigma=0.5)
        strong = theory.single_query_n("strongly_convex", alpha=0.1, d=4,
                                       sigma=2.0)
        assert strong < weak

    def test_k_query_log_k_growth(self):
        for key in ("linear", "lipschitz", "uglm", "strongly_convex"):
            n1 = theory.k_query_n(key, alpha=0.1, k=100, universe_size=1024,
                                  d=4, sigma=1.0)
            n2 = theory.k_query_n(key, alpha=0.1, k=10_000,
                                  universe_size=1024, d=4, sigma=1.0)
            assert n2 / n1 < 2.5, key

    def test_k_query_beats_naive_composition_for_large_k(self):
        """The paper's selling point: k-query n << sqrt(k) * single n."""
        k = 10**8
        single = theory.single_query_n("lipschitz", alpha=0.1, d=4)
        many = theory.k_query_n("lipschitz", alpha=0.1, k=k,
                                universe_size=1024, d=4)
        naive = math.sqrt(k) * single
        assert many < naive / 10

    def test_unknown_row_rejected(self):
        with pytest.raises(KeyError, match="unknown"):
            theory.single_query_n("nonexistent", alpha=0.1)


class TestExponents:
    def test_exponent_values(self):
        assert theory.composition_error_exponent() == 0.5
        assert theory.pmw_error_exponent() == 0.0
