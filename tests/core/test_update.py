"""Tests for the dual-certificate MW update (Claim 3.5 and Lemma 3.4)."""

import numpy as np
import pytest

from repro.core.update import (
    claim_3_5_slack,
    dual_certificate,
    mw_step,
)
from repro.data.histogram import Histogram
from repro.exceptions import ValidationError
from repro.losses.logistic import LogisticLoss
from repro.losses.quadratic import QuadraticLoss
from repro.optimize.minimize import minimize_loss
from repro.optimize.projections import L2Ball


class TestDualCertificate:
    def test_direction_formula(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(3))
        hypothesis = Histogram.uniform(cube_universe)
        theta_oracle = np.array([0.5, 0.0, 0.0])
        certificate = dual_certificate(loss, hypothesis, theta_oracle)
        gradients = loss.gradients(certificate.theta_hat, cube_universe)
        expected = gradients @ (theta_oracle - certificate.theta_hat)
        np.testing.assert_allclose(certificate.direction, expected)

    def test_hypothesis_inner_nonnegative(self, cube_universe, cube_dataset):
        """Equation (3): first-order optimality makes <u, Dhat> >= 0."""
        loss = QuadraticLoss(L2Ball(3))
        hypothesis = Histogram.uniform(cube_universe)
        for seed in range(5):
            rng = np.random.default_rng(seed)
            theta_oracle = loss.domain.random_point(rng)
            certificate = dual_certificate(loss, hypothesis, theta_oracle)
            assert certificate.hypothesis_inner >= -1e-9

    def test_hypothesis_inner_nonnegative_logistic(self, labeled_ball_universe,
                                                   labeled_dataset):
        loss = LogisticLoss(L2Ball(2))
        hypothesis = Histogram.uniform(labeled_ball_universe)
        for seed in range(5):
            rng = np.random.default_rng(seed)
            theta_oracle = loss.domain.random_point(rng)
            certificate = dual_certificate(loss, hypothesis, theta_oracle,
                                           solver_steps=800)
            assert certificate.hypothesis_inner >= -1e-3  # solver tolerance

    def test_claim_3_5_inequality(self, cube_universe, cube_dataset):
        """<u, Dhat - D> >= l_D(theta_hat) - l_D(theta) — the key lemma."""
        loss = QuadraticLoss(L2Ball(3))
        data = cube_dataset.histogram()
        hypothesis = Histogram.uniform(cube_universe)
        theta_oracle = minimize_loss(loss, data).theta  # great oracle answer
        certificate = dual_certificate(loss, hypothesis, theta_oracle)
        slack = claim_3_5_slack(loss, certificate, data, hypothesis)
        assert slack >= -1e-9

    def test_claim_3_5_inequality_logistic(self, labeled_ball_universe,
                                           labeled_dataset):
        loss = LogisticLoss(L2Ball(2))
        data = labeled_dataset.histogram()
        hypothesis = Histogram.uniform(labeled_ball_universe)
        theta_oracle = minimize_loss(loss, data, steps=800).theta
        certificate = dual_certificate(loss, hypothesis, theta_oracle,
                                       solver_steps=800)
        slack = claim_3_5_slack(loss, certificate, data, hypothesis)
        assert slack >= -1e-3

    def test_claim_3_5_with_imperfect_oracle(self, cube_universe,
                                             cube_dataset):
        """The inequality holds for ANY theta_oracle, not just the optimum."""
        loss = QuadraticLoss(L2Ball(3))
        data = cube_dataset.histogram()
        hypothesis = Histogram.uniform(cube_universe)
        for seed in range(5):
            rng = np.random.default_rng(seed)
            theta_oracle = loss.domain.random_point(rng)
            certificate = dual_certificate(loss, hypothesis, theta_oracle)
            slack = claim_3_5_slack(loss, certificate, data, hypothesis)
            assert slack >= -1e-9

    def test_supplied_theta_hat_used(self, cube_universe):
        loss = QuadraticLoss(L2Ball(3))
        hypothesis = Histogram.uniform(cube_universe)
        theta_hat = np.array([0.1, 0.1, 0.1])
        certificate = dual_certificate(loss, hypothesis, np.zeros(3),
                                       theta_hat=theta_hat)
        np.testing.assert_array_equal(certificate.theta_hat, theta_hat)


class TestMWStep:
    def make_certificate(self, cube_universe, magnitude=1.0):
        loss = QuadraticLoss(L2Ball(3))
        hypothesis = Histogram.uniform(cube_universe)
        theta_oracle = np.array([magnitude, 0.0, 0.0])
        return hypothesis, dual_certificate(loss, hypothesis, theta_oracle)

    def test_moves_toward_low_u_elements(self, cube_universe):
        hypothesis, certificate = self.make_certificate(cube_universe)
        updated = mw_step(hypothesis, certificate, eta=0.5, scale=4.0)
        low_u = int(np.argmin(certificate.direction))
        high_u = int(np.argmax(certificate.direction))
        assert updated[low_u] > hypothesis[low_u]
        assert updated[high_u] < hypothesis[high_u]

    def test_paper_sign_moves_opposite(self, cube_universe):
        hypothesis, certificate = self.make_certificate(cube_universe)
        standard = mw_step(hypothesis, certificate, eta=0.5, scale=4.0)
        flipped = mw_step(hypothesis, certificate, eta=0.5, scale=4.0,
                          paper_sign=True)
        high_u = int(np.argmax(certificate.direction))
        assert flipped[high_u] > hypothesis[high_u] > standard[high_u]

    def test_scale_violation_raises(self, cube_universe):
        hypothesis, certificate = self.make_certificate(cube_universe)
        with pytest.raises(ValidationError, match="scale"):
            mw_step(hypothesis, certificate, eta=0.5, scale=1e-6)

    def test_update_reduces_kl_to_data(self, cube_universe, cube_dataset):
        """The potential argument: a useful update shrinks KL(D || Dhat)."""
        loss = QuadraticLoss(L2Ball(3))
        data = cube_dataset.histogram()
        hypothesis = Histogram.uniform(cube_universe)
        theta_oracle = minimize_loss(loss, data).theta
        certificate = dual_certificate(loss, hypothesis, theta_oracle)
        # Only meaningful when the certificate separates Dhat from D.
        separation = certificate.hypothesis_inner - data.dot(
            certificate.direction
        )
        assert separation > 0.0
        scale = loss.scale_bound()
        eta = separation / (2 * scale * scale)  # the analysis' step choice
        updated = mw_step(hypothesis, certificate, eta=eta, scale=scale)
        assert data.kl_divergence(updated) < data.kl_divergence(hypothesis)

    def test_repeated_updates_converge_toward_data(self, cube_universe,
                                                   cube_dataset):
        """Iterating certificate updates drives hypothesis error to ~0.

        Starts from an adversarial point-mass hypothesis (maximal error)
        and uses the analysis' step size eta = separation / (2 S^2).
        """
        loss = QuadraticLoss(L2Ball(3))
        data = cube_dataset.histogram()
        mean = cube_universe.points.T @ data.weights
        distances = np.linalg.norm(cube_universe.points - mean, axis=1)
        hypothesis = Histogram.point_mass(cube_universe, int(np.argmax(distances)))
        # Point masses have zero support elsewhere; mix with uniform so MW
        # can move mass (standard smoothing).
        hypothesis = Histogram(
            cube_universe,
            0.9 * hypothesis.weights + 0.1 / cube_universe.size,
        )
        theta_star = minimize_loss(loss, data).theta
        scale = loss.scale_bound()
        initial_error = None
        for _ in range(400):
            certificate = dual_certificate(loss, hypothesis, theta_star)
            error = (loss.loss_on(certificate.theta_hat, data)
                     - loss.loss_on(theta_star, data))
            if initial_error is None:
                initial_error = error
            separation = certificate.hypothesis_inner - data.dot(
                certificate.direction
            )
            if separation <= 1e-10:
                break
            # mw_step normalizes u by S, so the analysis' optimal step on
            # the normalized direction is eta = separation / (2 S).
            eta = separation / (2.0 * scale)
            hypothesis = mw_step(hypothesis, certificate, eta=eta,
                                 scale=scale)
        final_theta = minimize_loss(loss, hypothesis).theta
        final_error = (loss.loss_on(final_theta, data)
                       - loss.loss_on(theta_star, data))
        assert initial_error > 0.05  # the starting hypothesis was truly bad
        assert final_error < max(0.1 * initial_error, 1e-4)


class TestCertificateGapReconciliation:
    """`certificate_inner_gap` is *only* the inner-product side of Claim
    3.5; `claim_3_5_slack` is the full gap. The two must reconcile."""

    def make_parts(self, cube_universe, cube_dataset):
        from repro.core.update import certificate_inner_gap

        loss = QuadraticLoss(L2Ball(3))
        data = cube_dataset.histogram()
        hypothesis = Histogram.uniform(cube_universe)
        theta_oracle = minimize_loss(loss, data).theta
        certificate = dual_certificate(loss, hypothesis, theta_oracle)
        return certificate_inner_gap, loss, certificate, data, hypothesis

    def test_inner_gap_is_the_inner_product_side(self, cube_universe,
                                                 cube_dataset):
        gap, loss, certificate, data, hypothesis = self.make_parts(
            cube_universe, cube_dataset)
        expected = certificate.hypothesis_inner - data.dot(
            certificate.direction)
        assert gap(certificate, data) == pytest.approx(expected)

    def test_slack_is_inner_gap_minus_excess_risk(self, cube_universe,
                                                  cube_dataset):
        gap, loss, certificate, data, hypothesis = self.make_parts(
            cube_universe, cube_dataset)
        excess = (loss.loss_on(certificate.theta_hat, data)
                  - loss.loss_on(certificate.theta_oracle, data))
        assert claim_3_5_slack(loss, certificate, data, hypothesis) == \
            pytest.approx(gap(certificate, data) - excess)

    def test_slack_non_negative_for_convex_loss(self, cube_universe,
                                                cube_dataset):
        gap, loss, certificate, data, hypothesis = self.make_parts(
            cube_universe, cube_dataset)
        assert claim_3_5_slack(loss, certificate, data, hypothesis) >= -1e-9

    def test_mismatched_universe_raises(self, cube_universe, cube_dataset):
        gap, loss, certificate, data, hypothesis = self.make_parts(
            cube_universe, cube_dataset)
        from repro.data.universe import Universe

        other = Histogram.uniform(
            Universe(np.arange(5, dtype=float)[:, None], name="line5"))
        with pytest.raises(ValidationError):
            gap(certificate, other)


class TestMWStepInplace:
    def test_matches_immutable_step(self, cube_universe):
        from repro.core.update import mw_step_inplace
        from repro.data.log_histogram import LogHistogram

        loss = QuadraticLoss(L2Ball(3))
        hypothesis = Histogram.uniform(cube_universe)
        theta_oracle = np.array([1.0, 0.0, 0.0])
        certificate = dual_certificate(loss, hypothesis, theta_oracle)

        core = LogHistogram.uniform(cube_universe)
        version = mw_step_inplace(core, certificate, eta=0.5, scale=4.0)
        assert version == core.version == 1
        immutable = mw_step(hypothesis, certificate, eta=0.5, scale=4.0)
        np.testing.assert_allclose(core.weights, immutable.weights,
                                   atol=1e-12)

    def test_scale_violation_raises_without_mutating(self, cube_universe):
        from repro.core.update import mw_step_inplace
        from repro.data.log_histogram import LogHistogram

        loss = QuadraticLoss(L2Ball(3))
        hypothesis = Histogram.uniform(cube_universe)
        certificate = dual_certificate(loss, hypothesis,
                                       np.array([1.0, 0.0, 0.0]))
        core = LogHistogram.uniform(cube_universe)
        with pytest.raises(ValidationError, match="scale"):
            mw_step_inplace(core, certificate, eta=0.5, scale=1e-6)
        assert core.version == 0
        np.testing.assert_allclose(core.weights, 1.0 / len(cube_universe))

    def test_paper_sign_flips_direction(self, cube_universe):
        from repro.core.update import mw_step_inplace
        from repro.data.log_histogram import LogHistogram

        loss = QuadraticLoss(L2Ball(3))
        hypothesis = Histogram.uniform(cube_universe)
        certificate = dual_certificate(loss, hypothesis,
                                       np.array([1.0, 0.0, 0.0]))
        core = LogHistogram.uniform(cube_universe)
        mw_step_inplace(core, certificate, eta=0.5, scale=4.0,
                        paper_sign=True)
        flipped = mw_step(hypothesis, certificate, eta=0.5, scale=4.0,
                          paper_sign=True)
        np.testing.assert_allclose(core.weights, flipped.weights, atol=1e-12)
