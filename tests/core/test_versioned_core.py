"""Tests for the versioned hypothesis core threaded through the mechanisms.

Covers the ``(fingerprint, version)``-keyed round cache, solver
warm-starting, the in-place MW accumulation, version counters across
snapshot/restore, and bitwise restore-then-update agreement with a
never-snapshotted run.
"""

import json

import numpy as np
import pytest

import repro.core.pmw_cm as pmw_cm_module
from repro.core.pmw_cm import PrivateMWConvex
from repro.core.pmw_linear import PrivateMWLinear
from repro.data.dataset import Dataset
from repro.erm.oracle import NonPrivateOracle
from repro.losses.families import random_logistic_family, \
    random_quadratic_family
from repro.losses.linear import LinearQuery


def make_mechanism(dataset, **overrides):
    params = dict(scale=4.0, alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
                  schedule="calibrated", max_updates=10, solver_steps=120,
                  rng=0)
    params.update(overrides)
    return PrivateMWConvex(dataset, NonPrivateOracle(120), **params)


@pytest.fixture
def concentrated_dataset(cube_universe):
    indices = np.concatenate([np.full(240, 5), np.arange(8).repeat(8)[:60]])
    return Dataset(cube_universe, indices)


class TestVersionCounter:
    def test_starts_at_zero_and_tracks_updates(self, concentrated_dataset):
        mechanism = make_mechanism(concentrated_dataset, alpha=0.4,
                                   noise_multiplier=0.0)
        assert mechanism.hypothesis_version == 0
        loss = random_quadratic_family(concentrated_dataset.universe, 1,
                                       rng=5)[0]
        answer = mechanism.answer(loss)
        assert answer.from_update
        assert mechanism.hypothesis_version == mechanism.updates_performed

    def test_bottom_rounds_keep_version(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=1)
        for loss in losses:
            before = mechanism.hypothesis_version
            answer = mechanism.answer(loss)
            after = mechanism.hypothesis_version
            assert after - before == (1 if answer.from_update else 0)

    def test_legacy_path_reports_update_count(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset, versioned_core=False)
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=1)
        mechanism.answer_all(losses, on_halt="hypothesis")
        assert mechanism.hypothesis_version == mechanism.updates_performed

    def test_frozen_hypothesis_cached_per_version(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset)
        assert mechanism.hypothesis is mechanism.hypothesis


class TestRoundCache:
    def count_solver_calls(self, monkeypatch):
        calls = {"count": 0, "steps": []}
        real = pmw_cm_module.minimize_loss

        def counting(loss, histogram, *, steps=400, start=None):
            calls["count"] += 1
            calls["steps"].append(steps)
            return real(loss, histogram, steps=steps, start=start)

        monkeypatch.setattr(pmw_cm_module, "minimize_loss", counting)
        return calls

    def test_repeat_at_same_version_skips_solver(self, cube_dataset,
                                                 monkeypatch):
        # Logistic has no closed form, so the hypothesis-side solve is a
        # real gradient-descent call the cache must elide.
        labeled = cube_dataset.universe.with_labels(
            np.sign(cube_dataset.universe.points[:, 0]))
        dataset = Dataset(labeled, cube_dataset.indices)
        mechanism = make_mechanism(dataset, scale=2.0)
        loss = random_logistic_family(labeled, 1, rng=2)[0]
        calls = self.count_solver_calls(monkeypatch)
        mechanism.answer(loss)
        solver_calls_after_first = calls["count"]
        assert solver_calls_after_first >= 1
        version = mechanism.hypothesis_version
        mechanism.answer(loss)
        if mechanism.hypothesis_version == version:
            # No update in between: the whole round replays from cache.
            assert calls["count"] == solver_calls_after_first

    def test_round_cache_cleared_on_update(self, concentrated_dataset):
        mechanism = make_mechanism(concentrated_dataset, alpha=0.4,
                                   noise_multiplier=0.0)
        loss = random_quadratic_family(concentrated_dataset.universe, 1,
                                       rng=5)[0]
        answer = mechanism.answer(loss)
        assert answer.from_update
        assert len(mechanism._round_cache) == 0

    def test_answer_from_hypothesis_shares_cache(self, cube_dataset,
                                                 monkeypatch):
        mechanism = make_mechanism(cube_dataset)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=3)[0]
        first = mechanism.answer(loss)
        if mechanism.hypothesis_version == 0 or not first.from_update:
            calls = self.count_solver_calls(monkeypatch)
            replay = mechanism.answer_from_hypothesis(loss)
            assert calls["count"] == 0
            np.testing.assert_array_equal(replay.theta, first.theta)

    def test_warm_start_uses_reduced_steps(self, concentrated_dataset,
                                           monkeypatch):
        labeled = concentrated_dataset.universe.with_labels(
            np.sign(concentrated_dataset.universe.points[:, 0]))
        dataset = Dataset(labeled, concentrated_dataset.indices)
        mechanism = make_mechanism(dataset, scale=2.0, alpha=0.2,
                                   noise_multiplier=0.0)
        loss = random_logistic_family(labeled, 1, rng=4)[0]
        calls = self.count_solver_calls(monkeypatch)
        first = mechanism.answer(loss)
        assert calls["steps"][0] == mechanism.solver_steps
        if first.from_update:  # version moved: next solve is warm
            calls["steps"].clear()
            mechanism.answer(loss)
            assert calls["steps"][0] == mechanism.warm_solver_steps
            assert mechanism.warm_solver_steps < mechanism.solver_steps

    def test_stale_warm_start_keeps_full_budget(self, cube_dataset,
                                                monkeypatch):
        """A warm start older than WARM_STALENESS_LIMIT versions still
        seeds the solver but must not reduce the step budget (the
        one-step O(eta) near-solution argument has decayed)."""
        labeled = cube_dataset.universe.with_labels(
            np.sign(cube_dataset.universe.points[:, 0]))
        dataset = Dataset(labeled, cube_dataset.indices)
        mechanism = make_mechanism(dataset, scale=2.0)
        loss = random_logistic_family(labeled, 1, rng=6)[0]
        mechanism.answer(loss)  # records a warm start at version 0
        # Age the hypothesis far past the staleness limit.
        for _ in range(mechanism.WARM_STALENESS_LIMIT + 1):
            mechanism._core.apply_update(
                np.zeros(len(labeled)), 0.0)
        mechanism._round_cache.clear()
        mechanism._hypothesis_minima.clear()
        calls = self.count_solver_calls(monkeypatch)
        mechanism.answer_from_hypothesis(loss)
        assert calls["steps"] == [mechanism.solver_steps]

    def test_warm_start_disabled_keeps_full_steps(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset, warm_start=False)
        assert mechanism.warm_start is False
        mechanism = make_mechanism(cube_dataset, versioned_core=False)
        assert mechanism.warm_start is False  # requires the core


class TestAnswerAgreement:
    def test_versioned_matches_legacy_same_seed(self, cube_dataset):
        losses = random_quadratic_family(cube_dataset.universe, 8, rng=6)
        stream = losses + losses[:4]

        def run(versioned):
            mechanism = make_mechanism(cube_dataset, rng=11,
                                       versioned_core=versioned,
                                       warm_start=False)
            return mechanism.answer_all(stream, on_halt="hypothesis")

        lazy, eager = run(True), run(False)
        assert [a.from_update for a in lazy] == \
            [a.from_update for a in eager]
        for a, b in zip(lazy, eager):
            np.testing.assert_allclose(a.theta, b.theta, atol=1e-8)


class TestSnapshotRestore:
    def run_stream(self, dataset, losses, *, snapshot_after=None, rng=13):
        mechanism = make_mechanism(dataset, alpha=0.25,
                                   noise_multiplier=0.0, rng=rng)
        answers = []
        for index, loss in enumerate(losses):
            if snapshot_after is not None and index == snapshot_after:
                state = json.loads(json.dumps(mechanism.snapshot()))
                mechanism = PrivateMWConvex.restore(
                    state, dataset, NonPrivateOracle(120))
            answers.append(mechanism.answer(loss))
        return mechanism, answers

    def test_restore_then_update_bitwise(self, concentrated_dataset):
        """A restored run must continue bitwise-identically to one that
        never snapshotted — version counter, lazy log-domain state, warm
        starts, and round cache all round-trip."""
        losses = random_quadratic_family(concentrated_dataset.universe, 4,
                                         rng=7)
        stream = losses + losses  # repeats exercise the caches
        straight, answers_a = self.run_stream(concentrated_dataset, stream)
        resumed, answers_b = self.run_stream(concentrated_dataset, stream,
                                             snapshot_after=5)
        assert resumed.hypothesis_version == straight.hypothesis_version
        assert resumed.updates_performed == straight.updates_performed
        np.testing.assert_array_equal(resumed.hypothesis.weights,
                                      straight.hypothesis.weights)
        for a, b in zip(answers_a, answers_b):
            np.testing.assert_array_equal(a.theta, b.theta)
            assert a.from_update == b.from_update

    def test_version_counter_round_trips(self, concentrated_dataset):
        losses = random_quadratic_family(concentrated_dataset.universe, 3,
                                         rng=8)
        mechanism, _ = self.run_stream(concentrated_dataset, losses)
        assert mechanism.hypothesis_version > 0
        state = json.loads(json.dumps(mechanism.snapshot()))
        restored = PrivateMWConvex.restore(state, concentrated_dataset,
                                           NonPrivateOracle(120))
        assert restored.hypothesis_version == mechanism.hypothesis_version
        assert restored.versioned_core
        np.testing.assert_array_equal(restored.hypothesis.weights,
                                      mechanism.hypothesis.weights)

    def test_warm_starts_and_round_cache_round_trip(self,
                                                    concentrated_dataset):
        losses = random_quadratic_family(concentrated_dataset.universe, 3,
                                         rng=9)
        mechanism, _ = self.run_stream(concentrated_dataset,
                                       losses + losses)
        state = json.loads(json.dumps(mechanism.snapshot()))
        restored = PrivateMWConvex.restore(state, concentrated_dataset,
                                           NonPrivateOracle(120))
        assert set(restored._warm_starts) == set(mechanism._warm_starts)
        assert set(restored._round_cache) == set(mechanism._round_cache)
        for key, (version, theta) in mechanism._warm_starts.items():
            restored_version, restored_theta = restored._warm_starts[key]
            assert restored_version == version
            np.testing.assert_array_equal(restored_theta, theta)

    def test_v1_snapshot_format_accepted(self, cube_dataset):
        """Pre-versioned-core (v1) snapshots restore onto the legacy
        path; the written format is v3 (RLE accountant records)."""
        mechanism = make_mechanism(cube_dataset, versioned_core=False)
        losses = random_quadratic_family(cube_dataset.universe, 2, rng=12)
        mechanism.answer_all(losses, on_halt="hypothesis")
        state = json.loads(json.dumps(mechanism.snapshot()))
        assert state["format"] == "repro.pmw_cm/v3"
        # Simulate a v1 snapshot: old format string, no v2-only fields.
        state["format"] = "repro.pmw_cm/v1"
        for key in ("versioned_core", "warm_start", "hypothesis_core",
                    "warm_starts", "round_cache"):
            state.pop(key, None)
        restored = PrivateMWConvex.restore(state, cube_dataset,
                                           NonPrivateOracle(120))
        assert restored.versioned_core is False
        np.testing.assert_allclose(restored.hypothesis.weights,
                                   mechanism.hypothesis.weights)

    def test_legacy_snapshot_restores_onto_legacy_path(self, cube_dataset):
        mechanism = make_mechanism(cube_dataset, versioned_core=False)
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=10)
        mechanism.answer_all(losses, on_halt="hypothesis")
        state = json.loads(json.dumps(mechanism.snapshot()))
        restored = PrivateMWConvex.restore(state, cube_dataset,
                                           NonPrivateOracle(120))
        assert restored.versioned_core is False
        np.testing.assert_allclose(restored.hypothesis.weights,
                                   mechanism.hypothesis.weights)


class TestLinearVersionedCore:
    def make_queries(self, universe, k, rng):
        generator = np.random.default_rng(rng)
        return [LinearQuery(generator.random(universe.size), name=f"q{i}")
                for i in range(k)]

    def test_sharded_core_matches_dense(self, cube_universe):
        rng = np.random.default_rng(1)
        dataset = Dataset(cube_universe,
                          rng.choice(cube_universe.size, size=300))
        queries = self.make_queries(cube_universe, 16, rng=2)

        def run(shards):
            mechanism = PrivateMWLinear(dataset, alpha=0.2, epsilon=2.0,
                                        max_updates=6, shards=shards,
                                        rng=3)
            return mechanism.answer_all(queries, on_halt="hypothesis")

        dense, sharded = run(None), run(2)
        for a, b in zip(dense, sharded):
            assert a.value == pytest.approx(b.value, abs=1e-12)

    def test_snapshot_round_trips_core(self, cube_universe):
        rng = np.random.default_rng(4)
        dataset = Dataset(cube_universe,
                          rng.choice(cube_universe.size, size=300))
        queries = self.make_queries(cube_universe, 10, rng=5)
        mechanism = PrivateMWLinear(dataset, alpha=0.1, epsilon=2.0,
                                    max_updates=6, rng=6)
        mechanism.answer_all(queries, on_halt="hypothesis")
        state = json.loads(json.dumps(mechanism.snapshot()))
        restored = PrivateMWLinear.restore(state, dataset)
        assert restored.versioned_core
        assert restored.hypothesis_version == mechanism.hypothesis_version
        np.testing.assert_array_equal(restored.hypothesis.weights,
                                      mechanism.hypothesis.weights)
        # Continuing both must stay identical (noise streams restored).
        follow = self.make_queries(cube_universe, 4, rng=7)
        a = mechanism.answer_all(follow, on_halt="hypothesis")
        b = restored.answer_all(follow, on_halt="hypothesis")
        for x, y in zip(a, b):
            assert x.value == y.value
            assert x.from_update == y.from_update
