"""Tests for the deterministic ball-grid discretization (Section 1.1)."""

import numpy as np
import pytest

from repro.data.builders import ball_grid
from repro.data.discretize import discretization_error
from repro.exceptions import UniverseError


class TestBallGrid:
    def test_all_points_inside_ball(self):
        universe = ball_grid(3, 9)
        norms = np.linalg.norm(universe.points, axis=1)
        assert norms.max() <= 1.0 + 1e-9

    def test_origin_included_for_odd_resolution(self):
        universe = ball_grid(2, 11)
        distances = np.linalg.norm(universe.points, axis=1)
        assert distances.min() == pytest.approx(0.0)

    def test_size_smaller_than_full_grid(self):
        universe = ball_grid(3, 9)
        assert universe.size < 9**3  # corners of the cube get cut

    def test_covering_radius_bound(self):
        """Section 1.1's rounding argument: covering radius ~ sqrt(d)/res."""
        d, resolution = 2, 21
        universe = ball_grid(d, resolution)
        rng = np.random.default_rng(0)
        # Random points in the 0.9-ball (interior, so covering applies).
        directions = rng.standard_normal((300, d))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        raw = directions * (0.9 * rng.random((300, 1)) ** (1 / d))
        spacing = 2.0 / (resolution - 1)
        bound = np.sqrt(d) * spacing / 2.0 + 1e-9
        assert discretization_error(universe, raw) <= bound

    def test_finer_grid_smaller_error(self):
        rng = np.random.default_rng(1)
        raw = rng.uniform(-0.5, 0.5, size=(200, 2))
        coarse = ball_grid(2, 5)
        fine = ball_grid(2, 41)
        assert (discretization_error(fine, raw)
                < discretization_error(coarse, raw))

    def test_respects_radius(self):
        universe = ball_grid(2, 9, radius=2.0)
        assert np.linalg.norm(universe.points, axis=1).max() <= 2.0 + 1e-9

    def test_rejects_huge_grid(self):
        with pytest.raises(UniverseError, match="enumeration cap"):
            ball_grid(12, 10)

    def test_rejects_bad_resolution(self):
        with pytest.raises(UniverseError):
            ball_grid(2, 1)

    def test_deterministic(self):
        np.testing.assert_array_equal(ball_grid(2, 7).points,
                                      ball_grid(2, 7).points)
