"""Tests for universe builders."""

import numpy as np
import pytest

from repro.data.builders import (
    binary_cube,
    interval_grid,
    labeled_universe,
    random_ball_net,
    signed_cube,
)
from repro.exceptions import UniverseError


class TestBinaryCube:
    def test_size(self):
        assert binary_cube(4).size == 16

    def test_entries_binary(self):
        points = binary_cube(3).points
        assert set(np.unique(points)) == {0.0, 1.0}

    def test_all_distinct(self):
        points = binary_cube(3).points
        assert len({tuple(p) for p in points}) == 8

    def test_rejects_huge_d(self):
        with pytest.raises(UniverseError, match="enumeration cap"):
            binary_cube(40)

    def test_rejects_nonpositive(self):
        with pytest.raises(UniverseError):
            binary_cube(0)


class TestSignedCube:
    def test_unit_norms(self):
        norms = np.linalg.norm(signed_cube(5).points, axis=1)
        np.testing.assert_allclose(norms, 1.0)

    def test_size(self):
        assert signed_cube(3).size == 8


class TestIntervalGrid:
    def test_endpoints(self):
        grid = interval_grid(11, -2.0, 2.0)
        assert grid.points[0, 0] == -2.0
        assert grid.points[-1, 0] == 2.0

    def test_rejects_bad_interval(self):
        with pytest.raises(UniverseError):
            interval_grid(5, 1.0, 0.0)

    def test_singleton(self):
        assert interval_grid(1).size == 1


class TestRandomBallNet:
    def test_inside_ball(self):
        net = random_ball_net(4, 200, radius=1.0, rng=0)
        norms = np.linalg.norm(net.points, axis=1)
        assert norms.max() <= 1.0 + 1e-12

    def test_respects_radius(self):
        net = random_ball_net(3, 100, radius=2.5, rng=0)
        assert np.linalg.norm(net.points, axis=1).max() <= 2.5 + 1e-12

    def test_deterministic_from_seed(self):
        a = random_ball_net(2, 10, rng=3).points
        b = random_ball_net(2, 10, rng=3).points
        np.testing.assert_array_equal(a, b)

    def test_fills_ball_not_just_surface(self):
        # Uniform-in-ball sampling must put points at small radii too.
        net = random_ball_net(2, 500, rng=0)
        norms = np.linalg.norm(net.points, axis=1)
        assert norms.min() < 0.3


class TestLabeledUniverse:
    def test_cross_product_size(self):
        base = signed_cube(3)
        labeled = labeled_universe(base, (-1.0, 1.0))
        assert labeled.size == 16
        assert labeled.is_labeled

    def test_every_pair_present(self):
        base = interval_grid(3)
        labeled = labeled_universe(base, (0.0, 1.0, 2.0))
        pairs = {(float(p[0]), float(y))
                 for p, y in zip(labeled.points, labeled.labels)}
        assert len(pairs) == 9

    def test_rejects_empty_labels(self):
        with pytest.raises(UniverseError):
            labeled_universe(signed_cube(2), ())
