"""Tests for Dataset and the adjacency relation."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.universe import Universe
from repro.exceptions import UniverseError, ValidationError


@pytest.fixture
def universe():
    return Universe(np.arange(4, dtype=float)[:, None])


class TestConstruction:
    def test_basic(self, universe):
        dataset = Dataset(universe, np.array([0, 1, 2, 3, 0]))
        assert dataset.n == 5
        assert len(dataset) == 5

    def test_from_indices_iterable(self, universe):
        dataset = Dataset.from_indices(universe, [0, 0, 1])
        assert dataset.n == 3

    def test_rejects_out_of_range(self, universe):
        with pytest.raises(UniverseError, match="indices must lie"):
            Dataset(universe, np.array([0, 4]))

    def test_rejects_negative(self, universe):
        with pytest.raises(UniverseError):
            Dataset(universe, np.array([-1, 0]))

    def test_rejects_empty(self, universe):
        with pytest.raises(ValidationError, match="at least one row"):
            Dataset(universe, np.array([], dtype=int))

    def test_rejects_non_integral(self, universe):
        with pytest.raises(ValidationError, match="integers"):
            Dataset(universe, np.array([0.5, 1.0]))

    def test_accepts_integral_floats(self, universe):
        dataset = Dataset(universe, np.array([0.0, 1.0]))
        assert dataset.indices.dtype == np.int64

    def test_indices_read_only(self, universe):
        dataset = Dataset(universe, np.array([0, 1]))
        with pytest.raises(ValueError):
            dataset.indices[0] = 2

    def test_uniform_random(self, universe):
        dataset = Dataset.uniform_random(universe, 100, rng=0)
        assert dataset.n == 100


class TestViews:
    def test_points_view(self, universe):
        dataset = Dataset(universe, np.array([2, 0]))
        np.testing.assert_array_equal(dataset.points, [[2.0], [0.0]])

    def test_labels_none_when_unlabeled(self, universe):
        assert Dataset(universe, np.array([0])).labels is None

    def test_labels_when_labeled(self):
        universe = Universe(np.zeros((3, 1)), labels=np.array([5.0, 6.0, 7.0]))
        dataset = Dataset(universe, np.array([2, 0, 2]))
        np.testing.assert_array_equal(dataset.labels, [7.0, 5.0, 7.0])


class TestHistogram:
    def test_histogram_counts(self, universe):
        dataset = Dataset(universe, np.array([0, 0, 1, 3]))
        hist = dataset.histogram()
        np.testing.assert_allclose(hist.weights, [0.5, 0.25, 0.0, 0.25])

    def test_histogram_sums_to_one(self, universe):
        dataset = Dataset.uniform_random(universe, 57, rng=1)
        assert dataset.histogram().weights.sum() == pytest.approx(1.0)


class TestAdjacency:
    def test_replace_row(self, universe):
        dataset = Dataset(universe, np.array([0, 1, 2]))
        neighbor = dataset.replace_row(1, 3)
        assert neighbor.indices[1] == 3
        assert dataset.indices[1] == 1  # original untouched

    def test_replace_row_is_adjacent(self, universe):
        dataset = Dataset(universe, np.array([0, 1, 2]))
        assert dataset.is_adjacent(dataset.replace_row(0, 3))

    def test_self_adjacent(self, universe):
        dataset = Dataset(universe, np.array([0, 1]))
        assert dataset.is_adjacent(dataset)

    def test_two_changes_not_adjacent(self, universe):
        dataset = Dataset(universe, np.array([0, 1, 2]))
        other = dataset.replace_row(0, 3).replace_row(1, 3)
        assert not dataset.is_adjacent(other)

    def test_different_sizes_not_adjacent(self, universe):
        a = Dataset(universe, np.array([0, 1]))
        b = Dataset(universe, np.array([0, 1, 2]))
        assert not a.is_adjacent(b)

    def test_histogram_l1_bound(self, universe):
        # D ~ D' implies ||hist(D) - hist(D')||_1 <= 2/n.
        dataset = Dataset(universe, np.array([0, 1, 2, 3, 0, 1]))
        neighbor = dataset.replace_row(2, 0)
        l1 = dataset.histogram().l1_distance(neighbor.histogram())
        assert l1 <= 2.0 / dataset.n + 1e-12

    def test_random_neighbor_adjacent(self, universe):
        dataset = Dataset(universe, np.array([0, 1, 2, 3]))
        for seed in range(5):
            assert dataset.is_adjacent(dataset.random_neighbor(rng=seed))

    def test_replace_row_bounds(self, universe):
        dataset = Dataset(universe, np.array([0, 1]))
        with pytest.raises(ValidationError):
            dataset.replace_row(5, 0)
