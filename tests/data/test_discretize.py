"""Tests for discretization onto a finite universe."""

import numpy as np
import pytest

from repro.data.builders import interval_grid, labeled_universe, random_ball_net
from repro.data.discretize import discretization_error, discretize_points
from repro.exceptions import UniverseError


class TestDiscretizePoints:
    def test_exact_points_map_to_themselves(self):
        universe = interval_grid(5, 0.0, 4.0)
        dataset = discretize_points(universe, universe.points.copy())
        np.testing.assert_array_equal(dataset.indices, np.arange(5))

    def test_nearest_assignment(self):
        universe = interval_grid(5, 0.0, 4.0)  # points 0,1,2,3,4
        dataset = discretize_points(universe, np.array([[0.4], [2.6], [3.9]]))
        np.testing.assert_array_equal(dataset.indices, [0, 3, 4])

    def test_labeled_requires_labels(self):
        universe = labeled_universe(interval_grid(3), (0.0, 1.0))
        with pytest.raises(UniverseError, match="raw_labels"):
            discretize_points(universe, np.zeros((2, 1)))

    def test_labeled_matches_joint(self):
        universe = labeled_universe(interval_grid(3, 0.0, 2.0), (-1.0, 1.0))
        dataset = discretize_points(universe, np.array([[1.1]]),
                                    np.array([0.8]))
        point, label = universe.element(int(dataset.indices[0]))
        assert point[0] == pytest.approx(1.0)
        assert label == 1.0

    def test_dim_mismatch(self):
        with pytest.raises(UniverseError, match="dim"):
            discretize_points(interval_grid(3), np.zeros((2, 2)))

    def test_label_length_mismatch(self):
        universe = labeled_universe(interval_grid(3), (0.0, 1.0))
        with pytest.raises(UniverseError, match="length"):
            discretize_points(universe, np.zeros((2, 1)), np.zeros(3))


class TestDiscretizationError:
    def test_zero_on_universe_points(self):
        universe = random_ball_net(3, 50, rng=0)
        assert discretization_error(universe, universe.points.copy()) == 0.0

    def test_bounded_by_covering_radius(self):
        # With a dense 1-D grid, error is at most half the grid spacing.
        universe = interval_grid(101, -1.0, 1.0)
        raw = np.random.default_rng(0).uniform(-1, 1, size=(200, 1))
        spacing = 2.0 / 100
        assert discretization_error(universe, raw) <= spacing / 2 + 1e-12

    def test_decreases_with_net_size(self):
        rng = np.random.default_rng(1)
        raw = rng.uniform(-0.5, 0.5, size=(100, 2))
        small = random_ball_net(2, 20, rng=0)
        large = random_ball_net(2, 2000, rng=0)
        assert (discretization_error(large, raw)
                < discretization_error(small, raw))


class TestLipschitzRoundingClaim:
    def test_loss_shift_bounded_by_lipschitz_times_error(self):
        """Section 1.1's rounding argument, verified on logistic loss."""
        from repro.losses.logistic import LogisticLoss
        from repro.optimize.projections import L2Ball

        rng = np.random.default_rng(2)
        base = random_ball_net(2, 400, rng=0)
        universe = labeled_universe(base, (-1.0, 1.0))
        raw_x = rng.uniform(-0.5, 0.5, size=(300, 2))
        raw_y = np.sign(rng.standard_normal(300))
        dataset = discretize_points(universe, raw_x, raw_y)
        loss = LogisticLoss(L2Ball(2))
        theta = np.array([0.4, -0.3])

        # Empirical loss on the raw data vs on the discretized data.
        margins = raw_x @ theta
        raw_loss = float(np.mean(np.logaddexp(0.0, -raw_y * margins)))
        rounded_loss = loss.loss_on(theta, dataset.histogram())
        # Labels match exactly (binary), features move by <= rounding error,
        # and logistic is 1-Lipschitz in the margin with ||theta|| <= 1.
        max_shift = discretization_error(universe, raw_x)
        assert abs(raw_loss - rounded_loss) <= max_shift + 1e-9
