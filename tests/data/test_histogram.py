"""Tests for the Histogram class, including the MW update."""

import numpy as np
import pytest

from repro.data.histogram import Histogram
from repro.data.universe import Universe
from repro.exceptions import ValidationError


@pytest.fixture
def universe():
    return Universe(np.arange(5, dtype=float)[:, None], name="line5")


class TestConstruction:
    def test_uniform(self, universe):
        hist = Histogram.uniform(universe)
        np.testing.assert_allclose(hist.weights, 0.2)

    def test_normalizes(self, universe):
        hist = Histogram(universe, np.array([2.0, 2.0, 2.0, 2.0, 2.0]))
        np.testing.assert_allclose(hist.weights.sum(), 1.0)

    def test_from_counts(self, universe):
        hist = Histogram.from_counts(universe, np.array([1, 0, 3, 0, 0]))
        assert hist[2] == pytest.approx(0.75)

    def test_point_mass(self, universe):
        hist = Histogram.point_mass(universe, 3)
        assert hist[3] == 1.0
        assert hist[0] == 0.0

    def test_rejects_negative(self, universe):
        with pytest.raises(ValidationError, match="non-negative"):
            Histogram(universe, np.array([0.5, -0.5, 0.4, 0.3, 0.3]))

    def test_rejects_zero_mass(self, universe):
        with pytest.raises(ValidationError, match="positive total"):
            Histogram(universe, np.zeros(5))

    def test_rejects_wrong_length(self, universe):
        from repro.exceptions import UniverseError
        with pytest.raises(UniverseError):
            Histogram(universe, np.ones(4))

    def test_weights_read_only(self, universe):
        hist = Histogram.uniform(universe)
        with pytest.raises(ValueError):
            hist.weights[0] = 0.9


class TestDot:
    def test_linear_query_answer(self, universe):
        hist = Histogram(universe, np.array([0.5, 0.5, 0.0, 0.0, 0.0]))
        query = np.array([1.0, 0.0, 1.0, 0.0, 1.0])
        assert hist.dot(query) == pytest.approx(0.5)

    def test_shape_mismatch(self, universe):
        with pytest.raises(ValidationError):
            Histogram.uniform(universe).dot(np.ones(3))


class TestMultiplicativeUpdate:
    def test_zero_direction_is_identity(self, universe):
        hist = Histogram(universe, np.array([0.1, 0.2, 0.3, 0.2, 0.2]))
        updated = hist.multiplicative_update(np.zeros(5), eta=0.5)
        np.testing.assert_allclose(updated.weights, hist.weights)

    def test_positive_direction_raises_weight(self, universe):
        hist = Histogram.uniform(universe)
        direction = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        updated = hist.multiplicative_update(direction, eta=1.0)
        assert updated[0] > hist[0]
        assert updated[1] < hist[1]

    def test_matches_closed_form(self, universe):
        hist = Histogram(universe, np.array([0.1, 0.2, 0.3, 0.2, 0.2]))
        direction = np.array([0.5, -0.5, 0.0, 1.0, -1.0])
        eta = 0.3
        expected = hist.weights * np.exp(eta * direction)
        expected /= expected.sum()
        updated = hist.multiplicative_update(direction, eta)
        np.testing.assert_allclose(updated.weights, expected, rtol=1e-12)

    def test_extreme_eta_no_overflow(self, universe):
        hist = Histogram.uniform(universe)
        direction = np.array([1.0, -1.0, 0.5, -0.5, 0.0])
        updated = hist.multiplicative_update(direction, eta=800.0)
        assert np.isfinite(updated.weights).all()
        assert updated.weights.sum() == pytest.approx(1.0)

    def test_preserves_zero_support(self, universe):
        hist = Histogram(universe, np.array([0.0, 0.5, 0.5, 0.0, 0.0]))
        updated = hist.multiplicative_update(np.ones(5), eta=0.2)
        assert updated[0] == 0.0
        assert updated[3] == 0.0


class TestDistances:
    def test_total_variation(self, universe):
        a = Histogram.point_mass(universe, 0)
        b = Histogram.point_mass(universe, 1)
        assert a.total_variation(b) == pytest.approx(1.0)

    def test_l1_of_self_is_zero(self, universe):
        hist = Histogram.uniform(universe)
        assert hist.l1_distance(hist) == 0.0

    def test_kl_self_zero(self, universe):
        hist = Histogram(universe, np.array([0.1, 0.2, 0.3, 0.2, 0.2]))
        assert hist.kl_divergence(hist) == pytest.approx(0.0, abs=1e-12)

    def test_kl_infinite_off_support(self, universe):
        p = Histogram.point_mass(universe, 0)
        q = Histogram.point_mass(universe, 1)
        assert p.kl_divergence(q) == float("inf")

    def test_kl_vs_uniform_bounded_by_log_size(self, universe):
        # KL(D || uniform) <= log |X| for any D — the MW potential bound.
        uniform = Histogram.uniform(universe)
        worst = Histogram.point_mass(universe, 2)
        assert worst.kl_divergence(uniform) <= np.log(universe.size) + 1e-12


class TestSampling:
    def test_sample_indices_shape(self, universe):
        hist = Histogram.uniform(universe)
        indices = hist.sample_indices(50, rng=0)
        assert indices.shape == (50,)
        assert indices.min() >= 0 and indices.max() < 5

    def test_sample_respects_support(self, universe):
        hist = Histogram.point_mass(universe, 4)
        indices = hist.sample_indices(20, rng=0)
        assert (indices == 4).all()

    def test_negative_n_rejected(self, universe):
        with pytest.raises(ValidationError):
            Histogram.uniform(universe).sample_indices(-1)


class TestSamplingDistribution:
    """The cached-CDF inverse sampler must match choice(p=...) exactly in
    law — including never emitting zero-probability outcomes."""

    def test_trailing_zero_weight_never_sampled(self, universe):
        weights = np.array([0.3, 0.3, 0.2, 0.2, 0.0])
        hist = Histogram(universe, weights)
        indices = hist.sample_indices(50_000, rng=0)
        assert not np.any(indices == 4)

    def test_interior_zero_weight_never_sampled(self, universe):
        weights = np.array([0.5, 0.0, 0.25, 0.0, 0.25])
        hist = Histogram(universe, weights)
        indices = hist.sample_indices(50_000, rng=1)
        assert not np.any(indices == 1)
        assert not np.any(indices == 3)

    def test_empirical_law_matches_weights(self, universe):
        rng = np.random.default_rng(7)
        weights = rng.dirichlet(np.ones(universe.size))
        hist = Histogram(universe, weights)
        indices = hist.sample_indices(200_000, rng=2)
        empirical = np.bincount(indices, minlength=universe.size) / indices.size
        np.testing.assert_allclose(empirical, hist.weights, atol=0.01)

    def test_cdf_cached_across_calls(self, universe):
        hist = Histogram.uniform(universe)
        hist.sample_indices(10, rng=0)
        first = hist._cdf
        hist.sample_indices(10, rng=1)
        assert hist._cdf is first


class TestEdgeCases:
    """Zero-weight bins and the single-bin universe (degenerate but legal)."""

    @pytest.fixture
    def point(self):
        return Universe(np.zeros((1, 1)), name="point")

    def test_single_bin_update_is_identity(self, point):
        hist = Histogram(point, np.array([3.0]))
        updated = hist.multiplicative_update(np.array([-5.0]), 2.0)
        np.testing.assert_allclose(updated.weights, [1.0])

    def test_single_bin_divergences_vanish(self, point):
        one = Histogram(point, np.array([1.0]))
        other = Histogram(point, np.array([7.0]))
        assert one.kl_divergence(other) == 0.0
        assert one.total_variation(other) == 0.0
        assert one.l1_distance(other) == 0.0

    def test_single_bin_sampling(self, point):
        hist = Histogram(point, np.array([1.0]))
        np.testing.assert_array_equal(hist.sample_indices(4, rng=0), 0)

    def test_kl_ignores_shared_zero_bins(self, universe):
        p = Histogram(universe, np.array([0.5, 0.5, 0.0, 0.0, 0.0]))
        q = Histogram(universe, np.array([0.25, 0.75, 0.0, 0.0, 0.0]))
        expected = 0.5 * np.log(0.5 / 0.25) + 0.5 * np.log(0.5 / 0.75)
        assert p.kl_divergence(q) == pytest.approx(expected)

    def test_kl_finite_when_other_covers_support(self, universe):
        p = Histogram(universe, np.array([1.0, 0.0, 0.0, 0.0, 0.0]))
        q = Histogram.uniform(universe)
        assert p.kl_divergence(q) == pytest.approx(np.log(5.0))
        assert q.kl_divergence(p) == np.inf

    def test_total_variation_with_zero_weight_bins(self, universe):
        p = Histogram(universe, np.array([1.0, 0.0, 0.0, 0.0, 0.0]))
        q = Histogram(universe, np.array([0.0, 0.0, 0.0, 0.0, 1.0]))
        assert p.total_variation(q) == pytest.approx(1.0)

    def test_update_keeps_zero_bins_at_zero(self, universe):
        hist = Histogram(universe, np.array([0.4, 0.0, 0.6, 0.0, 0.0]))
        updated = hist.multiplicative_update(np.ones(5), 3.0)
        assert updated.weights[1] == 0.0
        assert np.all(updated.weights[3:] == 0.0)
        np.testing.assert_allclose(updated.weights.sum(), 1.0)


class TestCdfCacheInvalidation:
    """Regression: the cached sampling CDF must never outlive its weights.

    ``multiplicative_update`` returns a *new* object; if the cached CDF
    were carried over (or shared by reference), samples would follow the
    pre-update distribution forever.
    """

    def test_update_returns_instance_with_cold_cache(self, universe):
        hist = Histogram(universe, np.array([1.0, 1.0, 1.0, 1.0, 1.0]))
        hist.sample_indices(10, rng=0)  # warm the original's CDF
        assert hist._cdf is not None
        updated = hist.multiplicative_update(np.array(
            [10.0, -10.0, -10.0, -10.0, -10.0]), 1.0)
        assert updated._cdf is None  # fresh instance: cache starts cold

    def test_caches_never_shared_between_instances(self, universe):
        hist = Histogram(universe, np.ones(5))
        hist.sample_indices(10, rng=0)
        updated = hist.multiplicative_update(np.array(
            [5.0, -5.0, -5.0, -5.0, -5.0]), 1.0)
        updated.sample_indices(10, rng=0)
        assert updated._cdf is not hist._cdf
        # and the original's cache still matches the original weights
        np.testing.assert_allclose(np.diff(np.concatenate(([0.0], hist._cdf))),
                                   hist.weights, atol=1e-15)

    def test_samples_follow_updated_weights(self, universe):
        hist = Histogram(universe, np.ones(5))
        hist.sample_indices(100, rng=0)
        # massive update: essentially all mass onto bin 0
        updated = hist.multiplicative_update(
            np.array([1.0, 0.0, 0.0, 0.0, 0.0]), 50.0)
        sample = updated.sample_indices(2000, rng=1)
        assert np.mean(sample == 0) > 0.99
        # the original still samples its own (uniform) law
        original = hist.sample_indices(5000, rng=2)
        counts = np.bincount(original, minlength=5) / 5000
        np.testing.assert_allclose(counts, 0.2, atol=0.05)

    def test_sharded_tables_not_shared_either(self, universe):
        from repro.data.sharded import ShardedHistogram

        hist = ShardedHistogram(universe, np.ones(5), num_shards=2)
        hist.sample_indices(10, rng=0)
        assert hist._shard_tables is not None
        updated = hist.multiplicative_update(
            np.array([1.0, 0.0, 0.0, 0.0, 0.0]), 50.0)
        assert updated._shard_tables is None
        sample = updated.sample_indices(2000, rng=1)
        assert np.mean(sample == 0) > 0.99


class TestCompatibilityCheck:
    """Regression: two *different* universes of equal size must not pass."""

    def test_same_size_different_points_rejected(self, universe):
        from repro.exceptions import UniverseError

        shifted = Universe(np.asarray(universe.points) + 1.0, name="shifted")
        a = Histogram.uniform(universe)
        b = Histogram.uniform(shifted)
        for op in (a.total_variation, a.l1_distance, a.kl_divergence):
            with pytest.raises(UniverseError):
                op(b)

    def test_equal_content_distinct_objects_accepted(self, universe):
        rebuilt = Universe(np.array(universe.points), name="rebuilt")
        a = Histogram.uniform(universe)
        b = Histogram.uniform(rebuilt)
        assert a.total_variation(b) == pytest.approx(0.0)

    def test_label_mismatch_rejected(self, universe):
        from repro.exceptions import UniverseError

        labeled = universe.with_labels(np.ones(len(universe)))
        a = Histogram.uniform(universe)
        b = Histogram.uniform(labeled)
        with pytest.raises(UniverseError):
            a.l1_distance(b)


class TestMassAnnihilation:
    """Regression: annihilating every positive weight must raise clearly,
    not crash inside ``np.max`` on an empty array."""

    def test_dense_update_raises_validation_error(self, universe):
        hist = Histogram.uniform(universe)
        # eta * direction overflows to -inf on every element.
        with np.errstate(over="ignore"), pytest.raises(
                ValidationError, match="annihilated"):
            hist.multiplicative_update(np.full(len(universe), -1e200), 1e200)

    def test_sharded_update_raises_validation_error(self, universe):
        from repro.data.sharded import ShardedHistogram

        hist = ShardedHistogram.uniform(universe, num_shards=2)
        with np.errstate(over="ignore"), pytest.raises(
                ValidationError, match="annihilated"):
            hist.multiplicative_update(np.full(len(universe), -1e200), 1e200)

    def test_extreme_but_survivable_update_still_works(self, universe):
        """One element surviving means no error and a point mass there."""
        direction = np.full(len(universe), -1e200)
        direction[2] = 0.0
        with np.errstate(over="ignore"):
            updated = Histogram.uniform(universe).multiplicative_update(
                direction, 1e200)
        assert updated.weights[2] == pytest.approx(1.0)
