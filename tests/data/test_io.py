"""Tests for artifact persistence (save/load of release objects)."""

import numpy as np
import pytest

from repro.data.io import (
    load_dataset,
    load_histogram,
    load_universe,
    save_dataset,
    save_histogram,
    save_universe,
)
from repro.exceptions import ValidationError


class TestUniverseRoundTrip:
    def test_unlabeled(self, cube_universe, tmp_path):
        path = save_universe(cube_universe, tmp_path / "u")
        loaded = load_universe(path)
        np.testing.assert_array_equal(loaded.points, cube_universe.points)
        assert loaded.labels is None
        assert loaded.name == cube_universe.name

    def test_labeled(self, labeled_ball_universe, tmp_path):
        path = save_universe(labeled_ball_universe, tmp_path / "u.npz")
        loaded = load_universe(path)
        np.testing.assert_array_equal(loaded.labels,
                                      labeled_ball_universe.labels)

    def test_extension_added(self, cube_universe, tmp_path):
        path = save_universe(cube_universe, tmp_path / "bare")
        assert path.suffix == ".npz"


class TestHistogramRoundTrip:
    def test_weights_preserved(self, cube_universe, rng, tmp_path):
        from repro.data.histogram import Histogram
        hist = Histogram(cube_universe,
                         rng.dirichlet(np.full(cube_universe.size, 0.5)))
        path = save_histogram(hist, tmp_path / "h")
        loaded = load_histogram(path)
        np.testing.assert_allclose(loaded.weights, hist.weights)
        assert loaded.universe.size == cube_universe.size

    def test_loaded_histogram_is_functional(self, cube_universe, tmp_path):
        from repro.data.histogram import Histogram
        hist = Histogram.uniform(cube_universe)
        loaded = load_histogram(save_histogram(hist, tmp_path / "h"))
        updated = loaded.multiplicative_update(
            np.linspace(-1, 1, cube_universe.size), eta=0.3
        )
        assert updated.weights.sum() == pytest.approx(1.0)


class TestDatasetRoundTrip:
    def test_indices_preserved(self, cube_dataset, tmp_path):
        loaded = load_dataset(save_dataset(cube_dataset, tmp_path / "d"))
        np.testing.assert_array_equal(loaded.indices, cube_dataset.indices)

    def test_histogram_matches(self, labeled_dataset, tmp_path):
        loaded = load_dataset(save_dataset(labeled_dataset, tmp_path / "d"))
        np.testing.assert_allclose(loaded.histogram().weights,
                                   labeled_dataset.histogram().weights)


class TestKindChecks:
    def test_wrong_kind_rejected(self, cube_universe, cube_dataset,
                                 tmp_path):
        path = save_universe(cube_universe, tmp_path / "u")
        with pytest.raises(ValidationError, match="expected a 'dataset'"):
            load_dataset(path)

    def test_histogram_as_universe_rejected(self, cube_universe, tmp_path):
        from repro.data.histogram import Histogram
        path = save_histogram(Histogram.uniform(cube_universe),
                              tmp_path / "h")
        with pytest.raises(ValidationError):
            load_universe(path)


class TestReleaseWorkflow:
    def test_mechanism_release_round_trip(self, cube_dataset, tmp_path):
        """The Section 4.3 release workflow: run, save hypothesis +
        synthetic data, reload, answer a fresh query."""
        from repro.core.pmw_cm import PrivateMWConvex
        from repro.erm.oracle import NonPrivateOracle
        from repro.losses.families import random_quadratic_family
        from repro.optimize.minimize import minimize_loss

        losses = random_quadratic_family(cube_dataset.universe, 5, rng=0)
        mechanism = PrivateMWConvex(
            cube_dataset, NonPrivateOracle(150), scale=4.0, alpha=0.3,
            epsilon=2.0, delta=1e-6, schedule="calibrated", max_updates=10,
            solver_steps=150, rng=1,
        )
        mechanism.answer_all(losses, on_halt="hypothesis")
        save_histogram(mechanism.hypothesis, tmp_path / "release")
        save_dataset(mechanism.synthetic_dataset(500, rng=2),
                     tmp_path / "synthetic")

        hypothesis = load_histogram(tmp_path / "release.npz")
        synthetic = load_dataset(tmp_path / "synthetic.npz")
        fresh_query = random_quadratic_family(hypothesis.universe, 1,
                                              rng=9)[0]
        theta = minimize_loss(fresh_query, hypothesis, steps=150).theta
        assert fresh_query.domain.contains(theta, tol=1e-9)
        assert synthetic.n == 500
