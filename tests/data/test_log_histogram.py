"""Tests for the version-stamped log-domain hypothesis accumulator."""

import json

import numpy as np
import pytest

from repro.data.builders import interval_grid
from repro.data.histogram import Histogram
from repro.data.log_histogram import LogHistogram, hypothesis_core
from repro.data.sharded import ShardedHistogram
from repro.exceptions import ValidationError


@pytest.fixture
def universe():
    return interval_grid(64)


@pytest.fixture
def directions(universe):
    rng = np.random.default_rng(11)
    return [rng.uniform(-1.0, 1.0, universe.size) for _ in range(12)]


def immutable_chain(universe, weights, updates):
    hist = (Histogram.uniform(universe) if weights is None
            else Histogram(universe, weights))
    for direction, eta in updates:
        hist = hist.multiplicative_update(direction, eta)
    return hist


class TestConstruction:
    def test_uniform_starts_at_version_zero(self, universe):
        core = LogHistogram.uniform(universe)
        assert core.version == 0
        np.testing.assert_allclose(core.weights, 1.0 / universe.size)

    def test_weights_validated_like_histogram(self, universe):
        with pytest.raises(ValidationError):
            LogHistogram(universe, np.full(universe.size, -1.0))
        with pytest.raises(ValidationError):
            LogHistogram(universe, np.zeros(universe.size))

    def test_from_histogram(self, universe):
        rng = np.random.default_rng(0)
        hist = Histogram(universe, rng.random(universe.size))
        core = LogHistogram.from_histogram(hist)
        np.testing.assert_allclose(core.weights, hist.weights, atol=1e-15)

    def test_workers_require_shards(self, universe):
        with pytest.raises(ValidationError, match="shard"):
            LogHistogram.uniform(universe, workers=2)

    def test_invalid_shard_count(self, universe):
        with pytest.raises(ValidationError):
            LogHistogram.uniform(universe, num_shards=0)

    def test_hypothesis_core_helper(self, universe):
        dense = hypothesis_core(universe)
        sharded = hypothesis_core(universe, shards=4, workers=2)
        assert dense.num_shards is None
        assert sharded.num_shards == 4 and sharded.workers == 2


class TestVersioning:
    def test_each_update_bumps_version(self, universe, directions):
        core = LogHistogram.uniform(universe)
        for expected, direction in enumerate(directions, start=1):
            assert core.apply_update(direction, 0.3) == expected
        assert core.version == len(directions)

    def test_reads_do_not_bump_version(self, universe, directions):
        core = LogHistogram.uniform(universe)
        core.apply_update(directions[0], 0.3)
        core.dot(directions[1])
        core.freeze()
        core.sample_indices(5, rng=0)
        assert core.version == 1

    def test_bad_direction_does_not_bump(self, universe):
        core = LogHistogram.uniform(universe)
        with pytest.raises(ValidationError):
            core.apply_update(np.ones(3), 0.3)
        with pytest.raises(ValidationError):
            core.apply_update(np.full(universe.size, np.nan), 0.3)
        with pytest.raises(ValidationError):
            core.apply_update(np.ones(universe.size), float("inf"))
        assert core.version == 0


class TestAgreementWithImmutablePath:
    @pytest.mark.parametrize("num_shards,workers", [(None, None), (5, None),
                                                    (5, 2)])
    def test_update_chain_matches(self, universe, directions, num_shards,
                                  workers):
        core = LogHistogram.uniform(universe, num_shards=num_shards,
                                    workers=workers)
        updates = [(d, 0.25) for d in directions]
        for direction, eta in updates:
            core.apply_update(direction, eta)
        reference = immutable_chain(universe, None, updates)
        np.testing.assert_allclose(core.weights, reference.weights,
                                   atol=1e-12)

    def test_dot_matches(self, universe, directions):
        core = LogHistogram.uniform(universe)
        for direction in directions:
            core.apply_update(direction, 0.2)
        reference = immutable_chain(universe, None,
                                    [(d, 0.2) for d in directions])
        probe = np.linspace(0.0, 1.0, universe.size)
        assert core.dot(probe) == pytest.approx(reference.dot(probe),
                                                abs=1e-12)

    def test_zero_weight_support_preserved(self, universe):
        weights = np.ones(universe.size)
        weights[:10] = 0.0
        core = LogHistogram(universe, weights)
        core.apply_update(np.ones(universe.size), 0.5)
        assert (core.weights[:10] == 0.0).all()
        assert core.weights.sum() == pytest.approx(1.0)


class TestFreeze:
    def test_frozen_view_cached_per_version(self, universe, directions):
        core = LogHistogram.uniform(universe)
        first = core.freeze()
        assert core.freeze() is first
        core.apply_update(directions[0], 0.3)
        assert core.freeze() is not first

    def test_frozen_view_survives_later_updates(self, universe, directions):
        core = LogHistogram.uniform(universe)
        core.apply_update(directions[0], 0.3)
        frozen = core.freeze()
        pinned = frozen.weights.copy()
        for direction in directions[1:]:
            core.apply_update(direction, 0.3)
            core.freeze()
        np.testing.assert_array_equal(frozen.weights, pinned)

    def test_frozen_type_matches_layout(self, universe):
        assert type(LogHistogram.uniform(universe).freeze()) is Histogram
        sharded = LogHistogram.uniform(universe, num_shards=4).freeze()
        assert isinstance(sharded, ShardedHistogram)
        assert sharded.num_shards == 4

    def test_frozen_weights_read_only(self, universe):
        frozen = LogHistogram.uniform(universe).freeze()
        with pytest.raises(ValueError):
            frozen.weights[0] = 1.0

    def test_divergence_helpers_delegate(self, universe, directions):
        core = LogHistogram.uniform(universe)
        core.apply_update(directions[0], 0.3)
        other = Histogram.uniform(universe)
        frozen = core.freeze()
        assert core.kl_divergence(other) == frozen.kl_divergence(other)
        assert core.total_variation(other) == frozen.total_variation(other)
        assert core.l1_distance(other) == frozen.l1_distance(other)


class TestSampling:
    def test_matches_frozen_sampling(self, universe, directions):
        core = LogHistogram.uniform(universe)
        core.apply_update(directions[0], 0.5)
        a = core.sample_indices(100, rng=np.random.default_rng(3))
        b = core.freeze().sample_indices(100, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestAnnihilation:
    def test_materialization_raises_cleanly(self, universe):
        core = LogHistogram.uniform(universe)
        with np.errstate(over="ignore"):
            core.apply_update(np.full(universe.size, -1e200), 1e200)
        with pytest.raises(ValidationError, match="annihilated"):
            core.weights


class TestSnapshotRestore:
    @pytest.mark.parametrize("num_shards,workers", [(None, None), (3, 2)])
    def test_state_round_trips_bitwise(self, universe, directions,
                                       num_shards, workers):
        core = LogHistogram.uniform(universe, num_shards=num_shards,
                                    workers=workers)
        for direction in directions[:4]:
            core.apply_update(direction, 0.4)
        state = json.loads(json.dumps(core.state_dict()))
        restored = LogHistogram.from_state(universe, state)
        assert restored.version == core.version
        assert restored.num_shards == core.num_shards
        assert restored.workers == core.workers
        np.testing.assert_array_equal(restored.weights, core.weights)

    def test_restore_then_update_matches_uninterrupted(self, universe,
                                                       directions):
        """The raw log-domain state restores exactly, so continuing after
        a snapshot is bitwise the same as never snapshotting."""
        uninterrupted = LogHistogram.uniform(universe)
        for direction in directions:
            uninterrupted.apply_update(direction, 0.35)

        resumed = LogHistogram.uniform(universe)
        for direction in directions[:6]:
            resumed.apply_update(direction, 0.35)
        state = json.loads(json.dumps(resumed.state_dict()))
        resumed = LogHistogram.from_state(universe, state)
        for direction in directions[6:]:
            resumed.apply_update(direction, 0.35)

        assert resumed.version == uninterrupted.version
        np.testing.assert_array_equal(resumed.weights,
                                      uninterrupted.weights)

    def test_minus_infinity_survives_json(self, universe):
        weights = np.ones(universe.size)
        weights[0] = 0.0
        core = LogHistogram(universe, weights)
        state = json.loads(json.dumps(core.state_dict()))
        restored = LogHistogram.from_state(universe, state)
        assert restored.weights[0] == 0.0
        np.testing.assert_array_equal(restored.weights, core.weights)

    def test_rejects_bad_state(self, universe):
        core = LogHistogram.uniform(universe)
        state = core.state_dict()
        wrong_size = dict(state, log_weights=state["log_weights"][:-1])
        with pytest.raises(ValidationError):
            LogHistogram.from_state(universe, wrong_size)
        nan_state = dict(state,
                         log_weights=[float("nan")] * universe.size)
        with pytest.raises(ValidationError):
            LogHistogram.from_state(universe, nan_state)
        negative_version = dict(state, version=-1)
        with pytest.raises(ValidationError):
            LogHistogram.from_state(universe, negative_version)


class TestBufferReuse:
    def test_unescaped_buffer_is_reused(self, universe, directions):
        """Without freezes, successive materializations reuse one buffer."""
        core = LogHistogram.uniform(universe)
        core.apply_update(directions[0], 0.3)
        first = core.weights
        core.apply_update(directions[1], 0.3)
        assert core.weights is first  # same object, new contents

    def test_escaped_buffer_is_not_overwritten(self, universe, directions):
        core = LogHistogram.uniform(universe)
        core.apply_update(directions[0], 0.3)
        frozen_weights = core.freeze().weights
        core.apply_update(directions[1], 0.3)
        assert core.weights is not frozen_weights
