"""ShardedHistogram: per-shard kernels must match the dense class."""

import numpy as np
import pytest

from repro.data.builders import interval_grid
from repro.data.histogram import Histogram
from repro.data.sharded import ShardedHistogram, hypothesis_histogram
from repro.exceptions import ValidationError


@pytest.fixture
def universe():
    return interval_grid(997)  # prime: shards of uneven sizes


@pytest.fixture
def weights(universe):
    rng = np.random.default_rng(0)
    return rng.dirichlet(np.full(universe.size, 0.4))


@pytest.fixture
def dense(universe, weights):
    return Histogram(universe, weights)


@pytest.fixture(params=[1, 3, 8])
def sharded(request, universe, weights):
    return ShardedHistogram(universe, weights, num_shards=request.param)


class TestTopology:
    def test_shards_cover_universe_contiguously(self, sharded, universe):
        slices = sharded.shard_slices
        assert slices[0].start == 0
        assert slices[-1].stop == universe.size
        for left, right in zip(slices, slices[1:]):
            assert left.stop == right.start

    def test_default_shard_count(self, universe, weights):
        hist = ShardedHistogram(universe, weights)
        assert hist.num_shards == 1  # small universe: one shard

    def test_invalid_shard_count(self, universe, weights):
        with pytest.raises(ValidationError):
            ShardedHistogram(universe, weights, num_shards=0)
        with pytest.raises(ValidationError):
            ShardedHistogram(universe, weights,
                             num_shards=universe.size + 1)

    def test_invalid_workers(self, universe, weights):
        with pytest.raises(ValidationError):
            ShardedHistogram(universe, weights, num_shards=2, workers=0)


class TestAgreementWithDense:
    def test_multiplicative_update_bitwise(self, dense, sharded, universe):
        rng = np.random.default_rng(1)
        direction = rng.standard_normal(universe.size)
        expected = dense.multiplicative_update(direction, 0.7)
        actual = sharded.multiplicative_update(direction, 0.7)
        np.testing.assert_array_equal(actual.weights, expected.weights)

    def test_update_preserves_sharding(self, sharded, universe):
        updated = sharded.multiplicative_update(np.zeros(universe.size), 1.0)
        assert isinstance(updated, ShardedHistogram)
        assert updated.num_shards == sharded.num_shards
        assert updated.workers == sharded.workers

    def test_dot(self, dense, sharded, universe):
        values = np.random.default_rng(2).standard_normal(universe.size)
        assert sharded.dot(values) == pytest.approx(dense.dot(values),
                                                    abs=1e-12)

    def test_divergences(self, dense, sharded, universe):
        other_weights = np.random.default_rng(3).dirichlet(
            np.full(universe.size, 0.4))
        other = Histogram(universe, other_weights)
        assert sharded.kl_divergence(other) == pytest.approx(
            dense.kl_divergence(other), abs=1e-12)
        assert sharded.total_variation(other) == pytest.approx(
            dense.total_variation(other), abs=1e-12)
        assert sharded.l1_distance(other) == pytest.approx(
            dense.l1_distance(other), abs=1e-12)

    def test_kl_infinite_off_support(self, universe):
        p = ShardedHistogram(universe, np.ones(universe.size), num_shards=4)
        q_weights = np.ones(universe.size)
        q_weights[universe.size // 2] = 0.0
        q = Histogram(universe, q_weights)
        assert p.kl_divergence(q) == np.inf

    def test_threaded_matches_sequential(self, universe, weights):
        rng = np.random.default_rng(4)
        direction = rng.standard_normal(universe.size)
        sequential = ShardedHistogram(universe, weights, num_shards=5)
        threaded = ShardedHistogram(universe, weights, num_shards=5,
                                    workers=3)
        np.testing.assert_array_equal(
            sequential.multiplicative_update(direction, 0.5).weights,
            threaded.multiplicative_update(direction, 0.5).weights,
        )
        assert threaded.dot(direction) == pytest.approx(
            sequential.dot(direction))


class TestSampling:
    def test_empirical_law(self, sharded, weights):
        sample = sharded.sample_indices(200_000, rng=5)
        empirical = np.bincount(sample, minlength=weights.size) / sample.size
        assert np.abs(empirical - weights).sum() < 0.2

    def test_zero_mass_shards_unreachable(self, universe):
        weights = np.zeros(universe.size)
        weights[100:120] = 1.0  # support confined to one region
        hist = ShardedHistogram(universe, weights, num_shards=7)
        sample = hist.sample_indices(5_000, rng=6)
        assert sample.min() >= 100
        assert sample.max() < 120

    def test_interior_zero_weight_never_sampled(self, universe):
        weights = np.ones(universe.size)
        weights[200:400] = 0.0
        hist = ShardedHistogram(universe, weights, num_shards=4)
        sample = hist.sample_indices(20_000, rng=7)
        assert not np.any((sample >= 200) & (sample < 400))

    def test_negative_n_rejected(self, sharded):
        with pytest.raises(ValidationError):
            sharded.sample_indices(-1)


class TestHypothesisHistogram:
    def test_dense_by_default(self, universe):
        hist = hypothesis_histogram(universe)
        assert type(hist) is Histogram
        np.testing.assert_allclose(hist.weights, 1.0 / universe.size)

    def test_sharded_when_asked(self, universe):
        hist = hypothesis_histogram(universe, shards=4, workers=2)
        assert isinstance(hist, ShardedHistogram)
        assert hist.num_shards == 4
        assert hist.workers == 2

    def test_restores_given_weights(self, universe, weights):
        hist = hypothesis_histogram(universe, weights, shards=3)
        np.testing.assert_allclose(hist.weights, weights / weights.sum())

    def test_workers_without_shards_rejected(self, universe):
        # Regression: workers without shards would silently build the
        # sequential dense path, making histogram_workers= a no-op.
        with pytest.raises(ValidationError, match="shards"):
            hypothesis_histogram(universe, workers=4)
