"""Unit tests for the shared-memory dataset export/attach pair.

Ownership-under-crash behavior lives in ``tests/chaos/test_shm_leaks``;
here we pin the value contract: an attached dataset is *bitwise* the
exported one (same digest, same frozen histogram, zero-copy read-only
views), close is idempotent, stale segment names are reclaimed, and the
manifest format is versioned.
"""

import os

import numpy as np
import pytest

from repro.data.builders import signed_cube
from repro.data.dataset import Dataset
from repro.data.shm import (
    SHM_FORMAT,
    SharedDatasetExport,
    attach_datasets,
    segment_name,
)
from repro.exceptions import ValidationError
from repro.serve.service import dataset_digest


@pytest.fixture
def dataset():
    universe = signed_cube(3)
    rng = np.random.default_rng(7)
    indices = rng.integers(0, universe.size, size=120)
    return Dataset(universe, indices)


@pytest.fixture
def export(dataset):
    handle = SharedDatasetExport(dataset, owner_pid=os.getpid(),
                                 tag="test_shm")
    yield handle
    handle.close()


class TestRoundTrip:
    def test_attached_dataset_is_bitwise_the_original(self, dataset,
                                                      export):
        attached = attach_datasets(export.manifest)["default"]
        assert np.array_equal(attached.indices, dataset.indices)
        assert np.array_equal(attached.universe.points,
                              dataset.universe.points)
        # The ledger/checkpoint compatibility check sees no difference.
        assert dataset_digest(attached) == dataset_digest(dataset)

    def test_frozen_histogram_is_preattached_and_equal(self, dataset,
                                                       export):
        attached = attach_datasets(export.manifest)["default"]
        assert np.array_equal(attached.histogram().weights,
                              dataset.histogram().weights)
        # Same object on repeated calls: no bincount on the worker.
        assert attached.histogram() is attached.histogram()

    def test_views_are_read_only(self, export):
        attached = attach_datasets(export.manifest)["default"]
        with pytest.raises((ValueError, RuntimeError)):
            attached.indices[0] = 0
        with pytest.raises((ValueError, RuntimeError)):
            attached.histogram().weights[0] = 1.0

    def test_labeled_universe_round_trips(self):
        universe = signed_cube(2)
        labeled = type(universe)(points=universe.points,
                                 labels=np.arange(universe.size) % 2,
                                 name=universe.name)
        dataset = Dataset(labeled, np.array([0, 1, 2, 3]))
        handle = SharedDatasetExport(dataset, owner_pid=os.getpid(),
                                     tag="test_shm_labels")
        try:
            attached = attach_datasets(handle.manifest)["default"]
            assert np.array_equal(attached.universe.labels,
                                  labeled.labels)
        finally:
            handle.close()

    def test_multiple_datasets_share_one_segment(self, dataset):
        other = Dataset(dataset.universe, dataset.indices[:50])
        handle = SharedDatasetExport({"a": dataset, "b": other},
                                     owner_pid=os.getpid(),
                                     tag="test_shm_multi")
        try:
            attached = attach_datasets(handle.manifest)
            assert set(attached) == {"a", "b"}
            assert dataset_digest(attached["a"]) == dataset_digest(dataset)
            assert dataset_digest(attached["b"]) == dataset_digest(other)
        finally:
            handle.close()


class TestLifecycle:
    def test_close_is_idempotent_and_unlinks(self, dataset):
        handle = SharedDatasetExport(dataset, owner_pid=os.getpid(),
                                     tag="test_shm_close")
        assert os.path.exists(f"/dev/shm/{handle.name}")
        handle.close()
        assert not os.path.exists(f"/dev/shm/{handle.name}")
        handle.close()  # second close must be a silent no-op

    def test_stale_segment_name_is_reclaimed(self, dataset):
        # A predecessor that died without close leaves its name behind;
        # a new export under the same pid+tag must reclaim, not fail.
        first = SharedDatasetExport(dataset, owner_pid=os.getpid(),
                                    tag="test_shm_stale")
        try:
            second = SharedDatasetExport(dataset, owner_pid=os.getpid(),
                                         tag="test_shm_stale")
            try:
                attached = attach_datasets(second.manifest)["default"]
                assert dataset_digest(attached) == dataset_digest(dataset)
            finally:
                second.close()
        finally:
            first.close()

    def test_segment_names_are_attributable(self, dataset, export):
        assert export.name == segment_name(os.getpid(), "test_shm")
        assert str(os.getpid()) in export.name


class TestValidation:
    def test_empty_dataset_map_is_refused(self):
        with pytest.raises(ValidationError):
            SharedDatasetExport({}, owner_pid=os.getpid(), tag="empty")

    def test_foreign_manifest_format_is_refused(self, export):
        manifest = dict(export.manifest)
        manifest["format"] = SHM_FORMAT + "-from-the-future"
        with pytest.raises(ValidationError):
            attach_datasets(manifest)
