"""Tests for synthetic workload generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    make_classification_dataset,
    make_regression_dataset,
    sample_dataset,
)
from repro.data.builders import signed_cube
from repro.exceptions import ValidationError


class TestSampleDataset:
    def test_uniform_size(self):
        universe = signed_cube(3)
        dataset = sample_dataset(universe, 200, rng=0)
        assert dataset.n == 200

    def test_weighted_sampling_respects_support(self):
        universe = signed_cube(3)
        weights = np.zeros(universe.size)
        weights[2] = 1.0
        dataset = sample_dataset(universe, 50, weights=weights, rng=0)
        assert (dataset.indices == 2).all()

    def test_weights_shape_checked(self):
        with pytest.raises(ValidationError):
            sample_dataset(signed_cube(2), 10, weights=np.ones(3))

    def test_unnormalized_weights_accepted(self):
        universe = signed_cube(2)
        dataset = sample_dataset(universe, 30, weights=np.full(4, 10.0), rng=0)
        assert dataset.n == 30


class TestRegressionTask:
    def test_shapes(self):
        task = make_regression_dataset(n=500, d=3, universe_size=64,
                                       label_levels=5, rng=0)
        assert task.dataset.n == 500
        assert task.universe.dim == 3
        assert task.universe.size == 64 * 5
        assert task.theta_star.shape == (3,)

    def test_theta_star_unit_norm(self):
        task = make_regression_dataset(n=100, d=4, rng=1)
        assert np.linalg.norm(task.theta_star) == pytest.approx(1.0)

    def test_labels_in_range(self):
        task = make_regression_dataset(n=300, d=2, rng=2)
        labels = task.dataset.labels
        assert labels.min() >= -1.0 and labels.max() <= 1.0

    def test_signal_present(self):
        """Labels must correlate with <theta*, x> — the planted signal."""
        task = make_regression_dataset(n=2000, d=3, universe_size=400,
                                       noise=0.05, rng=3)
        predictions = task.dataset.points @ task.theta_star
        correlation = np.corrcoef(predictions, task.dataset.labels)[0, 1]
        assert correlation > 0.8

    def test_reproducible(self):
        a = make_regression_dataset(n=100, d=2, rng=9)
        b = make_regression_dataset(n=100, d=2, rng=9)
        np.testing.assert_array_equal(a.dataset.indices, b.dataset.indices)


class TestClassificationTask:
    def test_labels_binary(self):
        task = make_classification_dataset(n=400, d=3, rng=0)
        assert set(np.unique(task.dataset.labels)) <= {-1.0, 1.0}

    def test_signal_present(self):
        task = make_classification_dataset(n=2000, d=3, universe_size=400,
                                           flip_probability=0.0, rng=1)
        margins = task.dataset.points @ task.theta_star
        agreement = np.mean(np.sign(margins) == task.dataset.labels)
        assert agreement > 0.85  # discretization can flip near-margin points

    def test_label_noise_applied(self):
        noisy = make_classification_dataset(n=2000, d=3, universe_size=400,
                                            flip_probability=0.4, rng=1)
        margins = noisy.dataset.points @ noisy.theta_star
        agreement = np.mean(np.sign(margins) == noisy.dataset.labels)
        assert agreement < 0.8

    def test_rejects_bad_flip_probability(self):
        with pytest.raises(ValidationError):
            make_classification_dataset(n=10, d=2, flip_probability=0.6)
