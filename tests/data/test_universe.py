"""Tests for the Universe container."""

import numpy as np
import pytest

from repro.data.universe import Universe
from repro.exceptions import UniverseError, ValidationError


def square_universe():
    return Universe(np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]),
                    name="square")


class TestConstruction:
    def test_size_and_dim(self):
        universe = square_universe()
        assert universe.size == 4
        assert universe.dim == 2
        assert len(universe) == 4

    def test_log_size(self):
        assert square_universe().log_size == pytest.approx(np.log(4))

    def test_points_read_only(self):
        universe = square_universe()
        with pytest.raises(ValueError):
            universe.points[0, 0] = 5.0

    def test_empty_rejected(self):
        with pytest.raises(UniverseError):
            Universe(np.zeros((0, 2)))

    def test_non_finite_rejected(self):
        with pytest.raises(ValidationError):
            Universe(np.array([[np.inf, 0.0]]))

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(UniverseError, match="labels"):
            Universe(np.zeros((3, 2)), labels=np.zeros(2))


class TestLabels:
    def test_unlabeled_flag(self):
        assert not square_universe().is_labeled

    def test_with_labels(self):
        universe = square_universe().with_labels(np.array([1, -1, 1, -1]))
        assert universe.is_labeled
        point, label = universe.element(1)
        assert label == -1.0
        np.testing.assert_array_equal(point, [1.0, 0.0])

    def test_element_out_of_range(self):
        with pytest.raises(IndexError):
            square_universe().element(10)


class TestGeometry:
    def test_max_point_norm(self):
        assert square_universe().max_point_norm() == pytest.approx(np.sqrt(2))

    def test_nearest_index_exact(self):
        universe = square_universe()
        assert universe.nearest_index(np.array([1.0, 1.0])) == 3

    def test_nearest_index_approximate(self):
        universe = square_universe()
        assert universe.nearest_index(np.array([0.9, 0.1])) == 1

    def test_nearest_index_dim_check(self):
        with pytest.raises(UniverseError, match="shape"):
            square_universe().nearest_index(np.array([1.0]))

    def test_describe_mentions_size(self):
        assert "size=4" in square_universe().describe()
