"""Tier-1 enforcement of the docs health check (tools/check_docs.py).

CI runs the checker as its own job; this test runs the same code in the
tier-1 suite so a broken docs link or a stale fenced example fails fast
locally too.
"""

import pathlib
import sys


TOOLS = pathlib.Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

import check_docs  # noqa: E402


def test_docs_files_exist():
    files = check_docs.documentation_files()
    names = {path.name for path in files}
    assert {"architecture.md", "serve.md", "engine.md",
            "benchmarks.md", "README.md"} <= names


def test_links_and_examples_pass(capsys):
    assert check_docs.main() == 0
    out = capsys.readouterr().out
    assert "links resolve, examples pass" in out


def test_broken_link_detected(tmp_path):
    doc = tmp_path / "broken.md"
    doc.write_text("see [missing](does-not-exist.md)")
    failures = check_docs.check_links(doc, doc.read_text())
    assert len(failures) == 1
    assert "does-not-exist.md" in failures[0]


def test_failing_doctest_detected(tmp_path):
    doc = tmp_path / "stale.md"
    doc.write_text("```python\n>>> 1 + 1\n3\n```\n")
    failures = check_docs.check_fences(doc, doc.read_text())
    assert len(failures) == 1


def test_syntax_error_detected(tmp_path):
    doc = tmp_path / "bad.md"
    doc.write_text("```python\ndef broken(:\n```\n")
    failures = check_docs.check_fences(doc, doc.read_text())
    assert len(failures) == 1
    assert "syntax error" in failures[0]


def test_external_links_skipped(tmp_path):
    doc = tmp_path / "ext.md"
    doc.write_text("[x](https://example.com/nope) [y](#anchor)")
    assert check_docs.check_links(doc, doc.read_text()) == []
