"""Tests for the privacy accountant."""

import pytest

from repro.dp.accountant import PrivacyAccountant
from repro.exceptions import PrivacyBudgetExhausted


class TestRecording:
    def test_totals_accumulate(self):
        accountant = PrivacyAccountant()
        accountant.spend(0.1, 1e-7, "a")
        accountant.spend(0.2, 1e-7, "b")
        total = accountant.total_basic()
        assert total.epsilon == pytest.approx(0.3)
        assert total.delta == pytest.approx(2e-7)
        assert accountant.num_spends == 2

    def test_empty_total_is_negligible(self):
        total = PrivacyAccountant().total_basic()
        assert total.epsilon < 1e-100
        assert total.delta == 0.0


class TestBudgetEnforcement:
    def test_raises_when_over_epsilon(self):
        accountant = PrivacyAccountant(epsilon_budget=0.5)
        accountant.spend(0.4)
        with pytest.raises(PrivacyBudgetExhausted) as info:
            accountant.spend(0.2, label="too-much")
        assert info.value.epsilon_budget == 0.5
        assert "too-much" in str(info.value)

    def test_refused_spend_not_recorded(self):
        accountant = PrivacyAccountant(epsilon_budget=0.5)
        accountant.spend(0.4)
        with pytest.raises(PrivacyBudgetExhausted):
            accountant.spend(0.2)
        assert accountant.num_spends == 1
        assert accountant.total_basic().epsilon == pytest.approx(0.4)

    def test_exact_budget_allowed(self):
        accountant = PrivacyAccountant(epsilon_budget=0.5)
        accountant.spend(0.25)
        accountant.spend(0.25)  # hits budget exactly: allowed

    def test_delta_budget_enforced(self):
        accountant = PrivacyAccountant(delta_budget=1e-6)
        accountant.spend(0.1, 9e-7)
        with pytest.raises(PrivacyBudgetExhausted):
            accountant.spend(0.1, 5e-7)

    def test_remaining_epsilon(self):
        accountant = PrivacyAccountant(epsilon_budget=1.0)
        accountant.spend(0.3)
        assert accountant.remaining_epsilon() == pytest.approx(0.7)

    def test_remaining_infinite_without_budget(self):
        assert PrivacyAccountant().remaining_epsilon() == float("inf")


class TestAdvancedTotal:
    def test_homogeneous_uses_advanced(self):
        accountant = PrivacyAccountant()
        for _ in range(100):
            accountant.spend(0.01, 1e-9)
        advanced = accountant.total_advanced(1e-6)
        basic = accountant.total_basic()
        assert advanced.epsilon < basic.epsilon

    def test_heterogeneous_falls_back_to_basic(self):
        accountant = PrivacyAccountant()
        accountant.spend(0.01)
        accountant.spend(0.02)
        advanced = accountant.total_advanced(1e-6)
        assert advanced.epsilon == pytest.approx(0.03)

    def test_summary_mentions_spends(self):
        accountant = PrivacyAccountant(epsilon_budget=1.0)
        accountant.spend(0.2)
        text = accountant.summary()
        assert "1 spends" in text
        assert "remaining" in text
