"""Tests for the privacy accountant."""

import pytest

from repro.dp.accountant import PrivacyAccountant
from repro.exceptions import PrivacyBudgetExhausted


class TestRecording:
    def test_totals_accumulate(self):
        accountant = PrivacyAccountant()
        accountant.spend(0.1, 1e-7, "a")
        accountant.spend(0.2, 1e-7, "b")
        total = accountant.total_basic()
        assert total.epsilon == pytest.approx(0.3)
        assert total.delta == pytest.approx(2e-7)
        assert accountant.num_spends == 2

    def test_empty_total_is_negligible(self):
        total = PrivacyAccountant().total_basic()
        assert total.epsilon < 1e-100
        assert total.delta == 0.0


class TestBudgetEnforcement:
    def test_raises_when_over_epsilon(self):
        accountant = PrivacyAccountant(epsilon_budget=0.5)
        accountant.spend(0.4)
        with pytest.raises(PrivacyBudgetExhausted) as info:
            accountant.spend(0.2, label="too-much")
        assert info.value.epsilon_budget == 0.5
        assert "too-much" in str(info.value)

    def test_refused_spend_not_recorded(self):
        accountant = PrivacyAccountant(epsilon_budget=0.5)
        accountant.spend(0.4)
        with pytest.raises(PrivacyBudgetExhausted):
            accountant.spend(0.2)
        assert accountant.num_spends == 1
        assert accountant.total_basic().epsilon == pytest.approx(0.4)

    def test_exact_budget_allowed(self):
        accountant = PrivacyAccountant(epsilon_budget=0.5)
        accountant.spend(0.25)
        accountant.spend(0.25)  # hits budget exactly: allowed

    def test_delta_budget_enforced(self):
        accountant = PrivacyAccountant(delta_budget=1e-6)
        accountant.spend(0.1, 9e-7)
        with pytest.raises(PrivacyBudgetExhausted):
            accountant.spend(0.1, 5e-7)

    def test_remaining_epsilon(self):
        accountant = PrivacyAccountant(epsilon_budget=1.0)
        accountant.spend(0.3)
        assert accountant.remaining_epsilon() == pytest.approx(0.7)

    def test_remaining_infinite_without_budget(self):
        assert PrivacyAccountant().remaining_epsilon() == float("inf")


class TestAdvancedTotal:
    def test_homogeneous_uses_advanced(self):
        accountant = PrivacyAccountant()
        for _ in range(100):
            accountant.spend(0.01, 1e-9)
        advanced = accountant.total_advanced(1e-6)
        basic = accountant.total_basic()
        assert advanced.epsilon < basic.epsilon

    def test_heterogeneous_falls_back_to_basic(self):
        accountant = PrivacyAccountant()
        accountant.spend(0.01)
        accountant.spend(0.02)
        advanced = accountant.total_advanced(1e-6)
        assert advanced.epsilon == pytest.approx(0.03)

    def test_summary_mentions_spends(self):
        accountant = PrivacyAccountant(epsilon_budget=1.0)
        accountant.spend(0.2)
        text = accountant.summary()
        assert "1 spends" in text
        assert "remaining" in text


class TestGroupedRecords:
    """RLE serialization: O(distinct runs) histories, bitwise round trips."""

    def _spend_history(self):
        accountant = PrivacyAccountant(epsilon_budget=100.0)
        accountant.spend(1.0, 5e-7, label="sparse-vector")
        for _ in range(50):
            accountant.spend(0.01, 1e-9, label="oracle:round")
        accountant.spend(0.25, 0.0, label="measure:q")
        for _ in range(30):
            accountant.spend(0.01, 1e-9, label="oracle:round")
        return accountant

    def test_grouped_round_trip_is_bitwise(self):
        accountant = self._spend_history()
        groups = accountant.to_grouped_records()
        assert len(groups) == 4  # runs, not spends
        rebuilt = PrivacyAccountant.from_records(groups,
                                                 epsilon_budget=100.0)
        assert rebuilt.to_records() == accountant.to_records()
        assert rebuilt.total_basic() == accountant.total_basic()
        assert (rebuilt.total_advanced(1e-6)
                == accountant.total_advanced(1e-6))
        assert rebuilt.num_spends == accountant.num_spends

    def test_group_expand_inverse(self):
        from repro.dp.accountant import expand_records, group_records
        records = self._spend_history().to_records()
        assert expand_records(group_records(records)) == records
        # plain records pass through from_records unchanged
        assert expand_records(records) == records

    def test_order_preserved_not_sorted(self):
        """RLE must never merge non-adjacent runs: float sums are
        order-sensitive, and order is part of the journal contract."""
        accountant = PrivacyAccountant()
        accountant.spend(0.1, 0.0, label="a")
        accountant.spend(0.2, 0.0, label="b")
        accountant.spend(0.1, 0.0, label="a")
        groups = accountant.to_grouped_records()
        assert [g["label"] for g in groups] == ["a", "b", "a"]
        assert all(g["count"] == 1 for g in groups)

    def test_restored_accountant_keeps_spending(self):
        groups = self._spend_history().to_grouped_records()
        rebuilt = PrivacyAccountant.from_records(groups)
        rebuilt.spend(0.5, 0.0, label="later")
        assert rebuilt.spends[-1].label == "later"
        assert rebuilt.num_spends == 83
