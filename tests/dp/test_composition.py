"""Tests for composition calculators (Theorem 3.10 and the budget split)."""

import math

import pytest

from repro.dp.composition import (
    PrivacyParameters,
    advanced_composition,
    basic_composition,
    per_round_budget,
    sparse_vector_sample_bound,
    verify_per_round_budget,
)


class TestPrivacyParameters:
    def test_dominates(self):
        strong = PrivacyParameters(0.5, 1e-7)
        weak = PrivacyParameters(1.0, 1e-6)
        assert strong.dominates(weak)
        assert not weak.dominates(strong)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(Exception):
            PrivacyParameters(-1.0, 0.0)


class TestBasicComposition:
    def test_linear_in_rounds(self):
        total = basic_composition(0.1, 1e-8, 10)
        assert total.epsilon == pytest.approx(1.0)
        assert total.delta == pytest.approx(1e-7)

    def test_delta_capped_at_one(self):
        assert basic_composition(0.1, 0.5, 10).delta == 1.0

    def test_single_round_identity(self):
        total = basic_composition(0.3, 1e-6, 1)
        assert total.epsilon == pytest.approx(0.3)


class TestAdvancedComposition:
    def test_theorem_formula(self):
        eps0, delta0, rounds, delta_prime = 0.01, 1e-9, 100, 1e-6
        total = advanced_composition(eps0, delta0, rounds, delta_prime)
        expected = (math.sqrt(2 * rounds * math.log(1 / delta_prime)) * eps0
                    + 2 * rounds * eps0 ** 2)
        assert total.epsilon == pytest.approx(expected)
        assert total.delta == pytest.approx(delta_prime + rounds * delta0)

    def test_beats_basic_for_many_rounds(self):
        eps0, rounds = 0.01, 10_000
        adv = advanced_composition(eps0, 0.0, rounds, 1e-6)
        basic = basic_composition(eps0, 0.0, rounds)
        assert adv.epsilon < basic.epsilon

    def test_worse_than_basic_for_one_round(self):
        # For a single round the sqrt term's constant exceeds 1.
        adv = advanced_composition(0.1, 0.0, 1, 1e-6)
        assert adv.epsilon > 0.1


class TestPerRoundBudget:
    def test_formula(self):
        split = per_round_budget(1.0, 1e-6, 50)
        expected_eps = 1.0 / math.sqrt(8 * 50 * math.log(2 / 1e-6))
        assert split.epsilon == pytest.approx(expected_eps)
        assert split.delta == pytest.approx(1e-6 / 100)

    @pytest.mark.parametrize("rounds", [1, 5, 50, 500])
    def test_recomposes_within_budget(self, rounds):
        """The split must actually compose back to (eps, delta)."""
        assert verify_per_round_budget(1.0, 1e-6, rounds)

    @pytest.mark.parametrize("epsilon", [0.1, 0.5, 1.0])
    def test_recomposes_across_epsilons(self, epsilon):
        assert verify_per_round_budget(epsilon, 1e-8, 64)

    def test_monotone_in_rounds(self):
        few = per_round_budget(1.0, 1e-6, 10)
        many = per_round_budget(1.0, 1e-6, 1000)
        assert many.epsilon < few.epsilon


class TestSparseVectorBound:
    def test_theorem_3_1_formula(self):
        n = sparse_vector_sample_bound(
            sensitivity_scale=3.0, max_above=10, total_queries=1000,
            alpha=0.1, epsilon=1.0, delta=1e-6, beta=0.05,
        )
        expected = (256 * 3.0 * math.sqrt(10 * math.log(2 / 1e-6))
                    * math.log(4 * 1000 / 0.05) / (1.0 * 0.1))
        assert n == pytest.approx(expected)

    def test_grows_with_sqrt_T(self):
        kwargs = dict(sensitivity_scale=1.0, total_queries=100, alpha=0.1,
                      epsilon=1.0, delta=1e-6, beta=0.05)
        n_small = sparse_vector_sample_bound(max_above=4, **kwargs)
        n_large = sparse_vector_sample_bound(max_above=16, **kwargs)
        assert n_large / n_small == pytest.approx(2.0)

    def test_grows_logarithmically_with_k(self):
        kwargs = dict(sensitivity_scale=1.0, max_above=10, alpha=0.1,
                      epsilon=1.0, delta=1e-6, beta=0.05)
        n1 = sparse_vector_sample_bound(total_queries=100, **kwargs)
        n2 = sparse_vector_sample_bound(total_queries=10_000, **kwargs)
        # 100x more queries → only ~ log(4e4/b)/log(4e2/b) growth (< 2.2x).
        assert n2 / n1 < 2.2
