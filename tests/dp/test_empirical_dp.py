"""Empirical differential-privacy checks on output distributions.

Definition 2.1 is a statement about output distributions on adjacent
inputs. These tests estimate those distributions by repeated runs and
check the ``e^eps`` inequality (with statistical slack):

- the sparse-vector answer pattern on adjacent query streams;
- the exponential mechanism's analytic output probabilities (exact);
- the Laplace mechanism's analytic density ratio (exact).

These cannot *prove* DP but they reliably catch calibration bugs (wrong
sensitivity, wrong noise scale), which is their job here.
"""

import numpy as np

from repro.dp.sparse_vector import SparseVector


class TestSparseVectorDP:
    """Answer-pattern distributions on adjacent streams."""

    EPSILON, DELTA = 1.0, 1e-6
    RUNS = 4000

    def pattern_distribution(self, stream, seed_offset=0):
        """Distribution over the (top/bottom) answer pattern of a stream."""
        counts = {}
        for run in range(self.RUNS):
            sv = SparseVector(alpha=0.2, sensitivity=0.05,
                              epsilon=self.EPSILON, delta=self.DELTA,
                              max_above=2, rng=seed_offset + run)
            pattern = []
            for value in stream:
                if sv.halted:
                    break
                pattern.append(sv.process(value).above)
            key = tuple(pattern)
            counts[key] = counts.get(key, 0) + 1
        return {key: count / self.RUNS for key, count in counts.items()}

    def test_adjacent_streams_within_epsilon(self):
        """Adjacent datasets shift every query by <= the sensitivity; the
        answer-pattern probabilities must stay within e^eps (+ slack)."""
        base = [0.15, 0.10, 0.18, 0.12]
        # Each query moved by exactly the sensitivity (worst case).
        neighbor = [value + 0.05 for value in base]
        p = self.pattern_distribution(base, seed_offset=0)
        q = self.pattern_distribution(neighbor, seed_offset=10**6)
        bound = np.exp(self.EPSILON)
        slack = 4.0 * np.sqrt(1.0 / self.RUNS)  # ~4-sigma binomial noise
        for key in set(p) | set(q):
            p_k = p.get(key, 0.0)
            q_k = q.get(key, 0.0)
            if max(p_k, q_k) < 0.01:
                continue  # too rare to estimate
            assert p_k <= bound * q_k + self.DELTA + slack, key
            assert q_k <= bound * p_k + self.DELTA + slack, key

    def test_wrong_sensitivity_is_detectable(self):
        """Sanity of the methodology: with noise calibrated to a 100x
        smaller sensitivity, adjacent patterns separate far beyond e^eps."""
        base = [0.149] * 3
        neighbor = [0.151] * 3  # shift = true sensitivity 0.002... but
        # calibrate the SV for sensitivity 100x smaller than the shift:
        distributions = []
        for offset, stream in ((0, base), (10**6, neighbor)):
            counts = {}
            runs = 2000
            for run in range(runs):
                sv = SparseVector(alpha=0.2, sensitivity=2e-5, epsilon=1.0,
                                  delta=1e-6, max_above=2, rng=offset + run)
                pattern = []
                for value in stream:
                    if sv.halted:
                        break
                    pattern.append(sv.process(value).above)
                key = tuple(pattern)
                counts[key] = counts.get(key, 0) + 1
            distributions.append({k: c / runs for k, c in counts.items()})
        p, q = distributions
        worst_ratio = 0.0
        for key in set(p) | set(q):
            p_k, q_k = p.get(key, 0.0), q.get(key, 0.0)
            if min(p_k, q_k) > 0.005:
                worst_ratio = max(worst_ratio, p_k / q_k, q_k / p_k)
        # The distributions may even have disjoint support; if they share
        # support, the ratio should be enormous compared to e^1.
        shared = [key for key in p if q.get(key, 0.0) > 0.005
                  and p[key] > 0.005]
        if shared:
            assert worst_ratio > np.exp(1.0) * 3


class TestExponentialMechanismDP:
    def test_analytic_probability_ratio(self):
        """Exact check on the analytic output distribution."""
        epsilon, sensitivity = 0.8, 1.0

        def probabilities(scores):
            logits = (epsilon / (2 * sensitivity)) * np.asarray(scores)
            weights = np.exp(logits - logits.max())
            return weights / weights.sum()

        rng = np.random.default_rng(0)
        for _ in range(50):
            scores = rng.uniform(-3, 3, size=6)
            shift = rng.uniform(-1, 1, size=6)  # |shift| <= sensitivity
            p = probabilities(scores)
            q = probabilities(scores + shift)
            assert np.all(p <= np.exp(epsilon) * q + 1e-12)


class TestLaplaceDP:
    def test_analytic_density_ratio(self):
        """Laplace densities on adjacent values satisfy the e^eps bound."""
        epsilon, sensitivity = 0.5, 2.0
        scale = sensitivity / epsilon

        def density(x, center):
            return np.exp(-np.abs(x - center) / scale) / (2 * scale)

        xs = np.linspace(-20, 20, 2001)
        ratio = density(xs, 0.0) / density(xs, sensitivity)
        assert np.all(ratio <= np.exp(epsilon) + 1e-9)
        assert np.all(ratio >= np.exp(-epsilon) - 1e-9)
