"""Tests for the basic DP mechanisms.

Includes statistical checks of the noise calibration and a direct empirical
verification of the (epsilon, 0)-DP inequality for randomized response and
the exponential mechanism (small enough output spaces to estimate the
probabilities directly).
"""

import numpy as np
import pytest

from repro.dp.mechanisms import (
    exponential_mechanism,
    gaussian_mechanism,
    gaussian_sigma,
    laplace_mechanism,
    randomized_response,
)
from repro.exceptions import ValidationError


class TestLaplace:
    def test_scalar_in_scalar_out(self):
        out = laplace_mechanism(1.0, sensitivity=1.0, epsilon=1.0, rng=0)
        assert isinstance(out, float)

    def test_array_shape_preserved(self):
        out = laplace_mechanism(np.zeros((3, 2)), 1.0, 1.0, rng=0)
        assert out.shape == (3, 2)

    def test_noise_scale(self):
        rng = np.random.default_rng(0)
        draws = laplace_mechanism(np.zeros(200_000), sensitivity=2.0,
                                  epsilon=0.5, rng=rng)
        # Laplace(b) has std b*sqrt(2); b = sensitivity/epsilon = 4.
        assert np.std(draws) == pytest.approx(4.0 * np.sqrt(2), rel=0.05)

    def test_unbiased(self):
        draws = laplace_mechanism(np.full(100_000, 7.0), 1.0, 1.0, rng=1)
        assert np.mean(draws) == pytest.approx(7.0, abs=0.05)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValidationError):
            laplace_mechanism(0.0, 1.0, epsilon=-1.0)


class TestGaussian:
    def test_sigma_formula(self):
        sigma = gaussian_sigma(sensitivity=2.0, epsilon=0.5, delta=1e-5)
        expected = np.sqrt(2 * np.log(1.25 / 1e-5)) * 2.0 / 0.5
        assert sigma == pytest.approx(expected)

    def test_noise_scale(self):
        sigma = gaussian_sigma(1.0, 1.0, 1e-6)
        draws = gaussian_mechanism(np.zeros(200_000), 1.0, 1.0, 1e-6, rng=0)
        assert np.std(draws) == pytest.approx(sigma, rel=0.05)

    def test_sigma_decreases_with_epsilon(self):
        assert gaussian_sigma(1.0, 2.0, 1e-6) < gaussian_sigma(1.0, 1.0, 1e-6)


class TestExponentialMechanism:
    def test_prefers_high_scores(self):
        scores = np.array([0.0, 0.0, 10.0])
        picks = [exponential_mechanism(scores, 1.0, 5.0, rng=seed)
                 for seed in range(200)]
        assert np.mean(np.array(picks) == 2) > 0.9

    def test_uniform_when_scores_equal(self):
        scores = np.zeros(4)
        picks = [exponential_mechanism(scores, 1.0, 1.0, rng=seed)
                 for seed in range(2000)]
        counts = np.bincount(picks, minlength=4) / 2000
        np.testing.assert_allclose(counts, 0.25, atol=0.05)

    def test_extreme_scores_stable(self):
        scores = np.array([0.0, 5000.0])
        pick = exponential_mechanism(scores, 1.0, 1.0, rng=0)
        assert pick in (0, 1)

    def test_dp_inequality_empirical(self):
        """Direct check: output odds ratio bounded by exp(eps) on adjacent scores."""
        epsilon, sensitivity = 1.0, 1.0
        scores_d = np.array([1.0, 0.0, 0.5])
        scores_d_prime = scores_d + np.array([1.0, -1.0, 0.0])  # max shift = Δ

        def probabilities(scores):
            logits = (epsilon / (2 * sensitivity)) * scores
            weights = np.exp(logits - logits.max())
            return weights / weights.sum()

        p, q = probabilities(scores_d), probabilities(scores_d_prime)
        assert np.all(p <= np.exp(epsilon) * q + 1e-12)
        assert np.all(q <= np.exp(epsilon) * p + 1e-12)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            exponential_mechanism(np.array([]), 1.0, 1.0)


class TestRandomizedResponse:
    def test_output_is_bit(self):
        assert randomized_response(1, 1.0, rng=0) in (0, 1)

    def test_keep_probability(self):
        epsilon = 1.0
        keeps = np.mean([
            randomized_response(1, epsilon, rng=seed) == 1
            for seed in range(5000)
        ])
        expected = np.exp(epsilon) / (1 + np.exp(epsilon))
        assert keeps == pytest.approx(expected, abs=0.03)

    def test_dp_ratio(self):
        """Pr[out=1 | bit=1] / Pr[out=1 | bit=0] = e^eps exactly."""
        epsilon = 0.7
        p_keep = np.exp(epsilon) / (1 + np.exp(epsilon))
        ratio = p_keep / (1 - p_keep)
        assert ratio == pytest.approx(np.exp(epsilon))

    def test_rejects_non_bit(self):
        with pytest.raises(ValueError):
            randomized_response(2, 1.0)
