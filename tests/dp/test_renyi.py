"""Tests for the Rényi-DP accountant."""

import math

import pytest

from repro.dp.renyi import (
    RenyiAccountant,
    gaussian_composition_comparison,
    gaussian_rdp,
    laplace_rdp,
    rdp_to_dp,
)
from repro.exceptions import ValidationError


class TestGaussianRDP:
    def test_formula(self):
        assert gaussian_rdp(2.0, 4.0) == pytest.approx(4.0 / 8.0)

    def test_decreases_with_noise(self):
        assert gaussian_rdp(4.0, 2.0) < gaussian_rdp(1.0, 2.0)

    def test_rejects_order_one(self):
        with pytest.raises(ValidationError):
            gaussian_rdp(1.0, 1.0)


class TestLaplaceRDP:
    def test_positive_and_finite(self):
        for scale in (0.5, 1.0, 4.0):
            for order in (1.5, 2.0, 8.0):
                value = laplace_rdp(scale, order)
                assert 0.0 < value < math.inf

    def test_large_order_approaches_pure_epsilon(self):
        """As a -> inf, Laplace RDP tends to the pure-DP epsilon 1/b."""
        scale = 2.0  # pure epsilon = 0.5
        assert laplace_rdp(scale, 256.0) == pytest.approx(0.5, rel=0.05)

    def test_monotone_in_order(self):
        values = [laplace_rdp(1.0, order) for order in (1.5, 2.0, 4.0, 8.0)]
        assert values == sorted(values)


class TestConversion:
    def test_rdp_to_dp_formula(self):
        params = rdp_to_dp(order=5.0, rdp_epsilon=0.2, delta=1e-6)
        assert params.epsilon == pytest.approx(
            0.2 + math.log(1e6) / 4.0
        )

    def test_accountant_additive(self):
        accountant = RenyiAccountant(orders=(2.0, 4.0))
        accountant.record_gaussian(2.0, count=3)
        assert accountant.rdp_at(2.0) == pytest.approx(3 * gaussian_rdp(2.0, 2.0))
        assert accountant.releases == 3

    def test_untracked_order_rejected(self):
        accountant = RenyiAccountant(orders=(2.0,))
        with pytest.raises(ValidationError, match="not tracked"):
            accountant.rdp_at(3.0)

    def test_to_dp_picks_best_order(self):
        accountant = RenyiAccountant()
        accountant.record_gaussian(2.0, count=10)
        best = accountant.to_dp(1e-6)
        # Every tracked order gives a valid bound; best must be <= all.
        for order in accountant.orders:
            candidate = rdp_to_dp(order, accountant.rdp_at(order), 1e-6)
            assert best.epsilon <= candidate.epsilon + 1e-12


class TestComparison:
    def test_renyi_beats_advanced_for_many_releases(self):
        # Small per-release epsilon (large noise): the regime where
        # advanced composition helps over basic, and RDP helps further.
        result = gaussian_composition_comparison(
            noise_multiplier=50.0, releases=500, delta=1e-6,
        )
        assert result["renyi"].epsilon < result["advanced"].epsilon
        assert result["advanced"].epsilon < result["basic"].epsilon

    def test_advanced_quadratic_term_regime(self):
        """At large per-release epsilon, advanced composition's 2T eps^2
        term exceeds basic composition — RDP still wins by a wide margin."""
        result = gaussian_composition_comparison(
            noise_multiplier=8.0, releases=500, delta=1e-6,
        )
        assert result["advanced"].epsilon > result["basic"].epsilon
        assert result["renyi"].epsilon < result["basic"].epsilon / 5

    def test_single_release_sane(self):
        result = gaussian_composition_comparison(
            noise_multiplier=8.0, releases=1, delta=1e-6,
        )
        # RDP's generic conversion can be slightly loose for one release,
        # but must stay within a small factor of the classic calibration.
        assert result["renyi"].epsilon < 4 * result["per_release_epsilon"]

    def test_mixed_laplace_gaussian_accumulation(self):
        accountant = RenyiAccountant()
        accountant.record_gaussian(4.0, count=5)
        accountant.record_laplace(4.0, count=5)
        assert accountant.releases == 10
        assert accountant.to_dp(1e-6).epsilon > 0.0
