"""Tests for the online sparse-vector algorithm (Theorem 3.1 contract)."""

import numpy as np
import pytest

from repro.dp.accountant import PrivacyAccountant
from repro.dp.sparse_vector import SparseVector
from repro.exceptions import MechanismHalted, ValidationError


def make_sv(**overrides):
    params = dict(alpha=0.2, sensitivity=1e-4, epsilon=1.0, delta=1e-6,
                  max_above=3, rng=0)
    params.update(overrides)
    return SparseVector(**params)


class TestConstruction:
    def test_threshold_at_midpoint(self):
        sv = make_sv(alpha=0.4)
        assert sv.threshold == pytest.approx(0.3)

    def test_per_run_epsilon_from_advanced_composition(self):
        sv = make_sv(max_above=16)
        expected = 1.0 / np.sqrt(8 * 16 * np.log(2 / 1e-6))
        assert sv.epsilon_per_run == pytest.approx(expected)

    def test_rejects_bad_max_above(self):
        with pytest.raises(ValidationError):
            make_sv(max_above=0)

    def test_accountant_records_lifetime_spend(self):
        accountant = PrivacyAccountant()
        make_sv(accountant=accountant)
        assert accountant.num_spends == 1
        assert accountant.total_basic().epsilon == pytest.approx(1.0)

    def test_formally_private_flag(self):
        assert make_sv().is_formally_private
        assert not make_sv(noise_multiplier=0.5).is_formally_private


class TestThresholdGame:
    """The Theorem 3.1 accuracy contract at comfortable n (low noise)."""

    def test_clearly_above_answers_top(self):
        sv = make_sv()
        answer = sv.process(1.0)  # far above alpha = 0.2
        assert answer.above
        assert answer.above_index == 0

    def test_clearly_below_answers_bottom(self):
        sv = make_sv()
        answer = sv.process(0.0)
        assert not answer.above
        assert answer.above_index is None

    def test_contract_over_stream(self):
        """q >= alpha -> top, q <= alpha/2 -> bottom, w.h.p. at tiny noise."""
        sv = make_sv(sensitivity=1e-7, max_above=50)
        for j in range(100):
            value = 1.0 if j % 3 == 0 else 0.0
            answer = sv.process(value)
            assert answer.above == (value == 1.0)

    def test_midzone_either_answer_allowed(self):
        """Values in (alpha/2, alpha) may legitimately go either way."""
        outcomes = set()
        for seed in range(30):
            sv = make_sv(rng=seed, noise_multiplier=1.0,
                         sensitivity=5e-2)  # deliberately noisy
            outcomes.add(sv.process(0.15).above)
        assert outcomes == {True, False}

    def test_query_indices_sequential(self):
        sv = make_sv()
        indices = [sv.process(0.0).query_index for _ in range(5)]
        assert indices == [0, 1, 2, 3, 4]


class TestHalting:
    def test_halts_after_max_above(self):
        sv = make_sv(max_above=3)
        for _ in range(3):
            sv.process(1.0)
        assert sv.halted
        with pytest.raises(MechanismHalted):
            sv.process(1.0)

    def test_above_count_tracks(self):
        sv = make_sv(max_above=5)
        sv.process(1.0)
        sv.process(0.0)
        sv.process(1.0)
        assert sv.above_count == 2
        assert sv.queries_asked == 3

    def test_bottom_answers_unlimited(self):
        sv = make_sv(max_above=2)
        for _ in range(200):
            assert not sv.process(0.0).above
        assert not sv.halted

    def test_update_indices_sequential(self):
        sv = make_sv(max_above=4)
        tops = []
        for _ in range(4):
            tops.append(sv.process(1.0).above_index)
        assert tops == [0, 1, 2, 3]


class TestNoiseBehaviour:
    def test_noise_scales_with_sensitivity(self):
        """Higher sensitivity -> more noise -> mistakes near threshold."""
        mistakes_low, mistakes_high = 0, 0
        for seed in range(100):
            low = SparseVector(alpha=0.2, sensitivity=1e-6, epsilon=1.0,
                               delta=1e-6, max_above=2, rng=seed)
            high = SparseVector(alpha=0.2, sensitivity=0.05, epsilon=1.0,
                                delta=1e-6, max_above=2, rng=seed)
            mistakes_low += low.process(0.0).above
            mistakes_high += high.process(0.0).above
        assert mistakes_low == 0
        assert mistakes_high > 0

    def test_noise_multiplier_zero_is_deterministic(self):
        sv = make_sv(noise_multiplier=0.0)
        assert sv.process(0.151).above      # above 0.75 * 0.2 = 0.15
        sv2 = make_sv(noise_multiplier=0.0)
        assert not sv2.process(0.149).above

    def test_rejects_non_finite_query(self):
        with pytest.raises(ValidationError):
            make_sv().process(float("nan"))

    def test_threshold_noise_redrawn_after_top(self):
        """After a top, a fresh AboveThreshold run begins (new threshold)."""
        sv = make_sv(sensitivity=0.05, max_above=10, rng=1)
        first = sv._noisy_threshold
        sv.process(10.0)  # certainly top
        assert sv._noisy_threshold != first
