"""Statistical verification of the Theorem 3.1 contract.

Theorem 3.1: with ``n`` at least the stated bound, the sparse vector
answers the whole threshold game correctly (``q >= alpha`` -> top,
``q <= alpha/2`` -> bottom) with probability ``1 - beta``. We run the game
many times at the theorem's ``n`` and verify the empirical failure rate is
within ``beta``, and conversely that a drastically smaller ``n`` fails —
i.e. the bound is doing real work.
"""

import math

import numpy as np
import pytest

from repro.dp.composition import sparse_vector_sample_bound
from repro.dp.sparse_vector import SparseVector


ALPHA, EPSILON, DELTA, BETA = 0.2, 1.0, 1e-6, 0.1
MAX_ABOVE, TOTAL_QUERIES = 4, 40
SCALE = 1.0  # query sensitivity numerator (S in 3S/n with S = 1/3 here)


def game_failures(n: int, runs: int, rng_offset: int = 0) -> int:
    """Play the threshold game `runs` times; count contract violations."""
    sensitivity = SCALE / n
    failures = 0
    for run in range(runs):
        sv = SparseVector(alpha=ALPHA, sensitivity=sensitivity,
                          epsilon=EPSILON, delta=DELTA,
                          max_above=MAX_ABOVE, rng=rng_offset + run)
        rng = np.random.default_rng(1_000_000 + run)
        ok = True
        for _ in range(TOTAL_QUERIES):
            if sv.halted:
                break
            # Stream mixes clear-above, clear-below, and mid-zone values.
            kind = rng.integers(0, 3)
            if kind == 0:
                value, expected = ALPHA * 1.5, True
            elif kind == 1:
                value, expected = ALPHA * 0.25, False
            else:
                value, expected = ALPHA * 0.75, None  # any answer allowed
            answer = sv.process(value)
            if expected is not None and answer.above != expected:
                ok = False
                break
        failures += not ok
    return failures


class TestTheorem31Contract:
    def test_contract_holds_at_theorem_n(self):
        n = math.ceil(sparse_vector_sample_bound(
            SCALE, MAX_ABOVE, TOTAL_QUERIES, ALPHA, EPSILON, DELTA, BETA,
        ))
        runs = 60
        failures = game_failures(n, runs)
        # Allow generous statistical slack above beta = 0.1.
        assert failures / runs <= BETA + 0.1

    def test_contract_fails_at_tiny_n(self):
        """At n 100x below the bound, noise swamps the margin."""
        n = max(1, math.ceil(sparse_vector_sample_bound(
            SCALE, MAX_ABOVE, TOTAL_QUERIES, ALPHA, EPSILON, DELTA, BETA,
        ) / 100))
        runs = 40
        failures = game_failures(n, runs, rng_offset=10_000)
        assert failures / runs > 0.5

    def test_bound_monotone_in_targets(self):
        base = sparse_vector_sample_bound(SCALE, MAX_ABOVE, TOTAL_QUERIES,
                                          ALPHA, EPSILON, DELTA, BETA)
        tighter_alpha = sparse_vector_sample_bound(
            SCALE, MAX_ABOVE, TOTAL_QUERIES, ALPHA / 2, EPSILON, DELTA, BETA)
        tighter_eps = sparse_vector_sample_bound(
            SCALE, MAX_ABOVE, TOTAL_QUERIES, ALPHA, EPSILON / 2, DELTA, BETA)
        assert tighter_alpha == pytest.approx(2 * base)
        assert tighter_eps == pytest.approx(2 * base)
