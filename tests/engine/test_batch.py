"""Batch compilation, grouping, and scalar-path agreement."""

import numpy as np
import pytest

from repro.data import make_classification_dataset
from repro.engine import (
    batch_answers,
    batch_data_minima,
    batch_loss_on,
    compile_batch,
)
from repro.exceptions import ValidationError
from repro.losses.base import LossFunction
from repro.losses.families import (
    linear_queries_as_cm,
    random_hinge_family,
    random_linear_queries,
    random_logistic_family,
    random_quadratic_family,
    random_squared_family,
)
from repro.optimize.minimize import minimize_loss
from repro.optimize.projections import L2Ball


@pytest.fixture(scope="module")
def task():
    return make_classification_dataset(n=2_000, d=4, universe_size=150,
                                       rng=0)


@pytest.fixture(scope="module")
def histogram(task):
    return task.dataset.histogram()


def _thetas(losses, rng_seed=1):
    rng = np.random.default_rng(rng_seed)
    return [rng.standard_normal(loss.domain.dim) * 0.3 for loss in losses]


class TestGrouping:
    def test_families_grouped_separately(self, task):
        queries = random_linear_queries(task.universe, 2, rng=1)
        losses = (linear_queries_as_cm(queries)
                  + random_logistic_family(task.universe, 2, rng=2)
                  + random_squared_family(task.universe, 2, rng=3)
                  + random_quadratic_family(task.universe, 1, rng=4))
        batch = compile_batch(losses)
        kinds = sorted(batch.group_kinds)
        assert kinds == ["fallback", "glm", "glm", "linear-cm"]
        assert len(batch) == len(losses)

    def test_squared_normalizations_do_not_mix(self, task):
        a = random_squared_family(task.universe, 2, rng=5,
                                  normalization=0.25)
        b = random_squared_family(task.universe, 2, rng=6,
                                  normalization=0.125)
        batch = compile_batch(a + b)
        assert batch.group_kinds.count("glm") == 2

    def test_subclass_takes_fallback(self, task):
        class TweakedLogistic(random_logistic_family(task.universe, 1,
                                                     rng=7)[0].__class__):
            pass

        loss = TweakedLogistic(L2Ball(task.universe.dim))
        assert compile_batch([loss]).group_kinds == ["fallback"]


class TestLossValues:
    @pytest.mark.parametrize("family,seed", [
        (random_logistic_family, 10),
        (random_squared_family, 11),
        (random_hinge_family, 12),
        (random_quadratic_family, 13),
    ])
    def test_matches_scalar_loss_on(self, task, histogram, family, seed):
        losses = family(task.universe, 6, rng=seed)
        thetas = _thetas(losses, seed)
        batched = batch_loss_on(losses, thetas, histogram)
        scalar = [loss.loss_on(theta, histogram)
                  for loss, theta in zip(losses, thetas)]
        np.testing.assert_allclose(batched, scalar, atol=1e-10)

    def test_mixed_batch_preserves_order(self, task, histogram):
        losses = (random_logistic_family(task.universe, 3, rng=14)
                  + linear_queries_as_cm(
                      random_linear_queries(task.universe, 3, rng=15))
                  + random_squared_family(task.universe, 3, rng=16))
        thetas = _thetas(losses, 17)
        batched = batch_loss_on(losses, thetas, histogram)
        scalar = [loss.loss_on(theta, histogram)
                  for loss, theta in zip(losses, thetas)]
        np.testing.assert_allclose(batched, scalar, atol=1e-10)

    def test_theta_count_mismatch(self, task, histogram):
        losses = random_logistic_family(task.universe, 2, rng=18)
        with pytest.raises(ValidationError, match="thetas"):
            batch_loss_on(losses, _thetas(losses)[:1], histogram)

    def test_linear_queries_rejected(self, task, histogram):
        queries = random_linear_queries(task.universe, 2, rng=19)
        with pytest.raises(ValidationError, match="linear_answers"):
            batch_loss_on(queries, [np.zeros(1)] * 2, histogram)


class TestLinearAnswers:
    def test_matches_scalar(self, task, histogram):
        queries = random_linear_queries(task.universe, 9, rng=20)
        batched = batch_answers(queries, histogram)
        scalar = [histogram.dot(query.table) for query in queries]
        np.testing.assert_allclose(batched, scalar, atol=1e-12)

    def test_cm_losses_rejected(self, task, histogram):
        losses = random_logistic_family(task.universe, 2, rng=21)
        with pytest.raises(ValidationError, match="LinearQuery"):
            batch_answers(losses, histogram)


class TestDataMinima:
    def test_linear_cm_closed_form(self, task, histogram):
        losses = linear_queries_as_cm(
            random_linear_queries(task.universe, 5, rng=22))
        batched = batch_data_minima(losses, histogram)
        for loss, result in zip(losses, batched):
            scalar = minimize_loss(loss, histogram)
            np.testing.assert_allclose(result.theta, scalar.theta,
                                       atol=1e-10)
            assert result.value == pytest.approx(scalar.value, abs=1e-10)
            assert result.exact

    def test_squared_shared_moments(self, task, histogram):
        losses = random_squared_family(task.universe, 5, rng=23)
        batched = batch_data_minima(losses, histogram)
        for loss, result in zip(losses, batched):
            scalar = minimize_loss(loss, histogram)
            np.testing.assert_allclose(result.theta, scalar.theta,
                                       atol=1e-10)
            assert result.value == pytest.approx(scalar.value, abs=1e-10)

    def test_fallback_families_use_solver(self, task, histogram):
        losses = random_logistic_family(task.universe, 3, rng=24)
        batched = batch_data_minima(losses, histogram, solver_steps=80)
        for loss, result in zip(losses, batched):
            scalar = minimize_loss(loss, histogram, steps=80)
            np.testing.assert_allclose(result.theta, scalar.theta,
                                       atol=1e-10)

    def test_value_is_loss_at_theta(self, task, histogram):
        losses = random_squared_family(task.universe, 4, rng=25)
        for loss, result in zip(losses, batch_data_minima(losses,
                                                          histogram)):
            direct = loss.loss_on(result.theta, histogram)
            assert result.value == pytest.approx(direct, abs=1e-10)


class TestFallbackContract:
    def test_unknown_loss_still_evaluates(self, task, histogram):
        class OddLoss(LossFunction):
            def values(self, theta, universe):
                return np.abs(universe.points @ theta)

            def gradients(self, theta, universe):
                signs = np.sign(universe.points @ theta)
                return signs[:, None] * universe.points

        loss = OddLoss(L2Ball(task.universe.dim), name="odd")
        theta = np.full(task.universe.dim, 0.1)
        batched = batch_loss_on([loss], [theta], histogram)
        assert batched[0] == pytest.approx(loss.loss_on(theta, histogram))


class TestErrorContractParity:
    def test_unlabeled_universe_raises_loss_specification_error(self):
        from repro.data.builders import random_ball_net
        from repro.data.dataset import Dataset
        from repro.exceptions import LossSpecificationError
        from repro.losses.squared import SquaredLoss

        universe = random_ball_net(3, 50, rng=0)  # no labels
        histogram = Dataset.uniform_random(universe, 100, rng=1).histogram()
        loss = SquaredLoss(L2Ball(3))
        theta = np.zeros(3)
        with pytest.raises(LossSpecificationError, match="label"):
            loss.loss_on(theta, histogram)  # the scalar contract
        with pytest.raises(LossSpecificationError, match="label"):
            batch_loss_on([loss], [theta], histogram)  # batching keeps it


class TestCompiledBatchReuse:
    def test_squared_tables_computed_once(self, task, histogram):
        losses = linear_queries_as_cm(
            random_linear_queries(task.universe, 4, rng=30))
        batch = compile_batch(losses)
        thetas = [np.array([0.3])] * 4
        batch.loss_values(thetas, histogram)
        group = batch._groups[0]
        cached = group.squared_tables()
        batch.loss_values(thetas, histogram)
        batch.data_minima(histogram)
        assert group.squared_tables() is cached  # reused, not rebuilt


class TestClosedFormMinima:
    def test_filters_to_shared_kernel_families(self, task):
        from repro.engine import closed_form_minima
        from repro.losses.families import linear_queries_as_cm

        squared = random_squared_family(task.universe, 2, rng=40)
        logistic = random_logistic_family(task.universe, 2, rng=41)
        quadratic = random_quadratic_family(task.universe, 2, rng=42)
        embedded = linear_queries_as_cm(
            random_linear_queries(task.universe, 2, rng=43))
        lane = list(squared) + list(logistic) + list(quadratic) \
            + list(embedded)
        kept = closed_form_minima(lane, universe=task.universe)
        # only the shared-moment families survive the filter
        assert kept == list(squared) + list(embedded)

    def test_unlabeled_universe_drops_squared(self, task):
        """_squared_minima's closed form needs labels; mirror that."""
        from repro.data.builders import interval_grid
        from repro.engine import closed_form_minima

        squared = random_squared_family(task.universe, 2, rng=44)
        unlabeled = interval_grid(10)
        assert closed_form_minima(squared, universe=unlabeled) == []
        assert closed_form_minima(squared) == list(squared)
