"""Unit tests for the engine's per-family kernels."""

import numpy as np
import pytest

from repro.data import make_classification_dataset
from repro.engine import kernels
from repro.exceptions import ValidationError
from repro.losses.families import (
    random_linear_queries,
    random_logistic_family,
)
from repro.losses.linear import LinearQuery


@pytest.fixture(scope="module")
def task():
    return make_classification_dataset(n=1_000, d=3, universe_size=80, rng=0)


@pytest.fixture(scope="module")
def histogram(task):
    return task.dataset.histogram()


class TestStackTables:
    def test_stacks_rows_in_order(self, task):
        queries = random_linear_queries(task.universe, 5, rng=1)
        stacked = kernels.stack_tables(queries)
        assert stacked.shape == (5, task.universe.size)
        for row, query in zip(stacked, queries):
            np.testing.assert_array_equal(row, query.table)

    def test_empty_batch(self):
        assert kernels.stack_tables([]).shape == (0, 0)

    def test_size_mismatch_rejected(self, task):
        short = LinearQuery(np.ones(3))
        full = LinearQuery(np.ones(task.universe.size))
        with pytest.raises(ValidationError, match="universe size"):
            kernels.stack_tables([full, short])

    def test_zero_copy_for_shared_readonly_matrix_rows(self):
        matrix = np.random.default_rng(2).random((6, 40))
        matrix.setflags(write=False)  # frozen: queries may alias rows
        queries = [LinearQuery(matrix[j]) for j in range(6)]
        stacked = kernels.stack_tables(queries)
        # same memory, not a copy
        assert (stacked.__array_interface__["data"][0]
                == matrix.__array_interface__["data"][0])
        np.testing.assert_array_equal(stacked, matrix)

    def test_writable_matrix_rows_are_copied(self):
        # Regression: aliasing a *writable* buffer would let callers
        # mutate a validated query (and stale its memoized fingerprint).
        matrix = np.full((3, 40), 0.5)
        queries = [LinearQuery(matrix[j]) for j in range(3)]
        fingerprints = [query.fingerprint() for query in queries]
        matrix[:] = 1.0
        for query, fingerprint in zip(queries, fingerprints):
            np.testing.assert_array_equal(query.table, 0.5)
            assert query.fingerprint() == fingerprint
        stacked = kernels.stack_tables(queries)
        assert (stacked.__array_interface__["data"][0]
                != matrix.__array_interface__["data"][0])

    def test_frozen_view_of_writable_base_is_copied(self):
        # Regression: a read-only *view* is not enough — the base that
        # owns the memory must be frozen, or the caller can still mutate
        # the table through it.
        matrix = np.full((2, 40), 0.5)
        row = matrix[0]
        row.setflags(write=False)
        query = LinearQuery(row)
        matrix[0] = 1.0
        np.testing.assert_array_equal(query.table, 0.5)

    def test_copies_when_rows_reordered(self):
        matrix = np.random.default_rng(3).random((4, 40))
        matrix.setflags(write=False)
        queries = [LinearQuery(matrix[j]) for j in (1, 0, 2, 3)]
        stacked = kernels.stack_tables(queries)
        assert (stacked.__array_interface__["data"][0]
                != matrix.__array_interface__["data"][0])
        np.testing.assert_array_equal(stacked[0], matrix[1])

    def test_copies_for_independent_tables(self, task):
        queries = random_linear_queries(task.universe, 3, rng=4)
        stacked = kernels.stack_tables(queries)
        assert stacked.base is None or stacked.base.ndim != 2


class TestLinearAnswers:
    def test_matches_per_query_dots(self, task, histogram):
        queries = random_linear_queries(task.universe, 7, rng=5)
        stacked = kernels.stack_tables(queries)
        batched = kernels.linear_answers(stacked, histogram)
        scalar = [histogram.dot(query.table) for query in queries]
        np.testing.assert_allclose(batched, scalar, atol=1e-12)

    def test_shape_mismatch_rejected(self, histogram):
        with pytest.raises(ValidationError, match="columns"):
            kernels.linear_answers(np.ones((2, 3)), histogram)


class TestGLMKernels:
    def test_parameter_matrix_applies_rotations(self, task):
        losses = random_logistic_family(task.universe, 4, rng=6)
        thetas = [np.full(task.universe.dim, 0.1 * (j + 1))
                  for j in range(4)]
        parameters = kernels.glm_parameter_matrix(losses, thetas)
        assert parameters.shape == (task.universe.dim, 4)
        for j, (loss, theta) in enumerate(zip(losses, thetas)):
            np.testing.assert_allclose(parameters[:, j],
                                       loss.rotation.T @ theta)

    def test_margin_matrix_matches_per_loss_margins(self, task):
        losses = random_logistic_family(task.universe, 3, rng=7)
        thetas = [np.full(task.universe.dim, 0.2)] * 3
        parameters = kernels.glm_parameter_matrix(losses, thetas)
        margins = kernels.glm_margin_matrix(task.universe.points, parameters)
        for j, loss in enumerate(losses):
            features = task.universe.points @ loss.rotation.T
            np.testing.assert_allclose(margins[:, j], features @ thetas[j],
                                       atol=1e-12)

    def test_margin_matrix_dim_mismatch(self, task):
        with pytest.raises(ValidationError, match="dim"):
            kernels.glm_margin_matrix(task.universe.points,
                                      np.ones((task.universe.dim + 1, 2)))


class TestMoments:
    def test_second_moment(self, task, histogram):
        moment = kernels.second_moment(task.universe.points, histogram)
        expected = np.einsum("i,ij,ik->jk", histogram.weights,
                             task.universe.points, task.universe.points)
        np.testing.assert_allclose(moment, expected, atol=1e-12)

    def test_cross_moment(self, task, histogram):
        labels = task.universe.labels
        moment = kernels.cross_moment(task.universe.points, labels,
                                      histogram)
        expected = np.einsum("i,i,ij->j", histogram.weights, labels,
                             task.universe.points)
        np.testing.assert_allclose(moment, expected, atol=1e-12)

