"""Tests for the version-aware batch evaluator."""

import numpy as np
import pytest

from repro.data.builders import interval_grid
from repro.data.histogram import Histogram
from repro.data.log_histogram import LogHistogram
from repro.engine import VersionedBatchEvaluator
from repro.exceptions import ValidationError
from repro.losses.linear import LinearQuery


@pytest.fixture
def universe():
    return interval_grid(40)


@pytest.fixture
def tables(universe):
    rng = np.random.default_rng(0)
    return rng.random((12, universe.size))


@pytest.fixture
def core(universe):
    return LogHistogram.uniform(universe)


class TestAnswers:
    def test_matches_direct_matmul(self, tables, core):
        evaluator = VersionedBatchEvaluator(tables)
        out = evaluator.answers(core.weights, core.version)
        np.testing.assert_allclose(out, tables @ core.weights, atol=1e-15)

    def test_same_version_is_fully_cached(self, tables, core):
        evaluator = VersionedBatchEvaluator(tables)
        evaluator.answers(core.weights, core.version)
        recomputed = evaluator.recomputed_rows
        evaluator.answers(core.weights, core.version)
        assert evaluator.recomputed_rows == recomputed
        assert evaluator.cached_hits >= len(evaluator)

    def test_version_bump_invalidates_only_stale(self, tables, core,
                                                 universe):
        evaluator = VersionedBatchEvaluator(tables)
        # Warm three entries at version 0 via the streaming interface.
        evaluator.answer(core.weights, core.version, 0)
        warmed = evaluator.recomputed_rows
        core.apply_update(np.linspace(-1, 1, universe.size), 0.5)
        out = evaluator.answers(core.weights, core.version)
        # Everything recomputes (all rows were stamped <= old version),
        # and the result matches the new weights.
        np.testing.assert_allclose(out, tables @ core.weights, atol=1e-15)
        assert evaluator.recomputed_rows == warmed + len(evaluator)

    def test_partial_staleness_recomputes_subset(self, tables, core,
                                                 universe):
        evaluator = VersionedBatchEvaluator(tables, initial_block=4)
        evaluator.answer(core.weights, core.version, 0)  # rows 0..3 at v0
        core.apply_update(np.linspace(-1, 1, universe.size), 0.5)
        evaluator.answers(core.weights, core.version)    # all 12 at v1
        before = evaluator.recomputed_rows
        evaluator.answers(core.weights, core.version)
        assert evaluator.recomputed_rows == before  # nothing stale

    def test_returns_copy(self, tables, core, universe):
        evaluator = VersionedBatchEvaluator(tables)
        first = evaluator.answers(core.weights, core.version)
        core.apply_update(np.ones(universe.size) * 0.3, 1.0)
        pinned = first.copy()
        evaluator.answers(core.weights, core.version)
        np.testing.assert_array_equal(first, pinned)


class TestStreamingAnswer:
    def test_growing_blocks_double_until_update(self, tables, core):
        evaluator = VersionedBatchEvaluator(tables, initial_block=2)
        evaluator.answer(core.weights, core.version, 0)   # computes [0, 2)
        assert evaluator.recomputed_rows == 2
        evaluator.answer(core.weights, core.version, 1)   # cached
        assert evaluator.recomputed_rows == 2
        evaluator.answer(core.weights, core.version, 2)   # computes [2, 6)
        assert evaluator.recomputed_rows == 6

    def test_block_resets_after_version_change(self, tables, core,
                                               universe):
        evaluator = VersionedBatchEvaluator(tables, initial_block=2)
        evaluator.answer(core.weights, core.version, 0)
        evaluator.answer(core.weights, core.version, 2)   # block now 4
        core.apply_update(np.linspace(-1, 1, universe.size), 0.4)
        before = evaluator.recomputed_rows
        evaluator.answer(core.weights, core.version, 3)   # reset block: 2
        assert evaluator.recomputed_rows == before + 2

    def test_values_match_direct_dot(self, tables, core, universe):
        evaluator = VersionedBatchEvaluator(tables, initial_block=3)
        for j in range(len(evaluator)):
            if j == 5:
                core.apply_update(np.linspace(-1, 1, universe.size), 0.2)
            got = evaluator.answer(core.weights, core.version, j)
            assert got == pytest.approx(float(tables[j] @ core.weights),
                                        abs=1e-15)

    def test_index_out_of_range(self, tables, core):
        evaluator = VersionedBatchEvaluator(tables)
        with pytest.raises(ValidationError):
            evaluator.answer(core.weights, core.version, len(evaluator))


class TestFusedUpdateThenAnswers:
    def test_matches_separate_steps(self, tables, universe):
        rng = np.random.default_rng(3)
        direction = rng.uniform(-1, 1, universe.size)

        fused_core = LogHistogram.uniform(universe)
        fused = VersionedBatchEvaluator(tables)
        fused.answers(fused_core.weights, fused_core.version)
        out = fused.update_then_answers(fused_core, direction, 0.7)

        reference = Histogram.uniform(universe).multiplicative_update(
            direction, 0.7)
        np.testing.assert_allclose(out, tables @ reference.weights,
                                   atol=1e-12)
        assert fused_core.version == 1

    def test_reuses_compiled_layout(self, tables, universe):
        core = LogHistogram.uniform(universe)
        evaluator = VersionedBatchEvaluator(tables)
        held = evaluator._tables
        evaluator.update_then_answers(core, np.zeros(universe.size), 1.0)
        assert evaluator._tables is held  # no recompilation on update


class TestConstruction:
    def test_from_queries_stacks_tables(self, universe):
        rng = np.random.default_rng(4)
        queries = [LinearQuery(rng.random(universe.size), name=f"q{i}")
                   for i in range(5)]
        evaluator = VersionedBatchEvaluator.from_queries(queries)
        core = LogHistogram.uniform(universe)
        out = evaluator.answers(core.weights, core.version)
        expected = [core.dot(query.table) for query in queries]
        np.testing.assert_allclose(out, expected, atol=1e-15)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValidationError):
            VersionedBatchEvaluator(np.zeros(5))
        with pytest.raises(ValidationError):
            VersionedBatchEvaluator(np.zeros((2, 5)), initial_block=0)
