"""Tests for the GLM projection oracle's internal reduction."""

import numpy as np
import pytest

from repro.data.synthetic import make_classification_dataset
from repro.erm.glm_oracle import GLMProjectionOracle, _ProjectedGLM
from repro.losses.logistic import LogisticLoss
from repro.losses.families import random_logistic_family
from repro.optimize.projections import L2Ball


@pytest.fixture(scope="module")
def task():
    return make_classification_dataset(n=3_000, d=6, universe_size=80, rng=0)


class TestProjectedGLM:
    def test_projected_problem_dimension(self, task):
        base = LogisticLoss(L2Ball(6))
        phi = np.random.default_rng(0).standard_normal((3, 6)) / np.sqrt(3)
        projected = _ProjectedGLM(base, phi)
        assert projected.domain.dim == 3

    def test_margins_match_lifted_parameter(self, task):
        """<theta_m, phi x> == <phi^T theta_m, x>: the reduction identity."""
        base = LogisticLoss(L2Ball(6))
        rng = np.random.default_rng(1)
        phi = rng.standard_normal((3, 6)) / np.sqrt(3)
        projected = _ProjectedGLM(base, phi)
        theta_m = rng.standard_normal(3) * 0.3
        lifted = phi.T @ theta_m

        projected_margins = projected._features(task.universe) @ theta_m
        lifted_margins = task.universe.points @ lifted
        np.testing.assert_allclose(projected_margins, lifted_margins,
                                   atol=1e-10)

    def test_rotation_composition(self, task):
        """A rotated base GLM composes: features become phi @ R x."""
        base = random_logistic_family(task.universe, 1, rng=2)[0]
        assert base.rotation is not None
        rng = np.random.default_rng(3)
        phi = rng.standard_normal((2, 6)) / np.sqrt(2)
        projected = _ProjectedGLM(base, phi)
        np.testing.assert_allclose(projected.rotation, phi @ base.rotation)

    def test_link_shared_with_base(self, task):
        base = LogisticLoss(L2Ball(6))
        phi = np.eye(6)[:2]
        projected = _ProjectedGLM(base, phi)
        margins = np.array([0.5, -1.0])
        labels = np.array([1.0, -1.0])
        np.testing.assert_allclose(projected.link(margins, labels),
                                   base.link(margins, labels))

    def test_lipschitz_safety_factor(self, task):
        base = LogisticLoss(L2Ball(6))
        phi = np.eye(6)[:3]
        projected = _ProjectedGLM(base, phi)
        assert projected.lipschitz_bound == pytest.approx(2.0)


class TestOracleReduction:
    def test_identity_projection_recovers_generic_behavior(self, task):
        """With projection_dim >= d and phi ~ identity-scaled JL, the
        oracle should match the generic noisy-GD oracle's quality class."""
        from repro.erm.noisy_sgd import NoisyGradientDescentOracle
        from repro.experiments.workloads import single_query_excess

        loss = LogisticLoss(L2Ball(6))
        glm = GLMProjectionOracle(epsilon=2.0, delta=1e-6, projection_dim=6,
                                  steps=40)
        generic = NoisyGradientDescentOracle(epsilon=2.0, delta=1e-6,
                                             steps=40)
        glm_err = np.mean([
            single_query_excess(loss, task.dataset, glm, rng=s)
            for s in range(4)
        ])
        generic_err = np.mean([
            single_query_excess(loss, task.dataset, generic, rng=s)
            for s in range(4)
        ])
        assert glm_err < max(5 * generic_err, 0.25)

    def test_projection_is_fresh_per_call(self, task):
        """phi is drawn per call from the supplied rng (data-independent);
        two calls with different seeds generally differ."""
        loss = LogisticLoss(L2Ball(6))
        oracle = GLMProjectionOracle(epsilon=5.0, delta=1e-6,
                                     projection_dim=2, steps=30)
        a = oracle.answer(loss, task.dataset, rng=0)
        b = oracle.answer(loss, task.dataset, rng=1)
        assert not np.allclose(a, b)
