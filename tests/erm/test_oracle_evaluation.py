"""Tests for the oracle evaluation helper (OracleEvaluation statistics)."""


from repro.erm.oracle import NonPrivateOracle, evaluate_oracle
from repro.erm.output_perturbation import OutputPerturbationOracle
from repro.losses.quadratic import QuadraticLoss, RidgeRegularized
from repro.losses.squared import SquaredLoss
from repro.optimize.projections import L2Ball


class TestEvaluateOracle:
    def test_fields_consistent(self, labeled_dataset):
        loss = RidgeRegularized(SquaredLoss(L2Ball(2)), lam=1.0)
        oracle = OutputPerturbationOracle(epsilon=1.0, delta=1e-6)
        evaluation = evaluate_oracle(oracle, loss, labeled_dataset,
                                     trials=6, rng=0)
        assert evaluation.trials == 6
        assert 0.0 <= evaluation.mean_excess_risk <= evaluation.max_excess_risk
        assert evaluation.std_excess_risk >= 0.0

    def test_nonprivate_oracle_near_zero(self, cube_dataset):
        loss = QuadraticLoss(L2Ball(3))
        evaluation = evaluate_oracle(NonPrivateOracle(200), loss,
                                     cube_dataset, trials=2, rng=0)
        assert evaluation.max_excess_risk < 1e-6  # closed-form minimizer

    def test_deterministic_given_seed(self, labeled_dataset):
        loss = RidgeRegularized(SquaredLoss(L2Ball(2)), lam=1.0)
        oracle = OutputPerturbationOracle(epsilon=1.0, delta=1e-6)
        a = evaluate_oracle(oracle, loss, labeled_dataset, trials=4, rng=5)
        b = evaluate_oracle(oracle, loss, labeled_dataset, trials=4, rng=5)
        assert a.mean_excess_risk == b.mean_excess_risk

    def test_excess_clamped_nonnegative(self, cube_dataset):
        loss = QuadraticLoss(L2Ball(3))
        evaluation = evaluate_oracle(NonPrivateOracle(200), loss,
                                     cube_dataset, trials=3, rng=1)
        assert evaluation.mean_excess_risk >= 0.0

    def test_noisier_oracle_scores_worse(self, labeled_dataset):
        loss = RidgeRegularized(SquaredLoss(L2Ball(2)), lam=1.0)
        quiet = evaluate_oracle(
            OutputPerturbationOracle(epsilon=10.0, delta=1e-6),
            loss, labeled_dataset, trials=8, rng=2,
        )
        loud = evaluate_oracle(
            OutputPerturbationOracle(epsilon=0.05, delta=1e-6),
            loss, labeled_dataset, trials=8, rng=2,
        )
        assert quiet.mean_excess_risk < loud.mean_excess_risk
