"""Tests for the single-query DP-ERM oracles."""

import numpy as np
import pytest

from repro.data.synthetic import make_classification_dataset
from repro.erm.exponential import ExponentialMechanismOracle
from repro.erm.glm_oracle import GLMProjectionOracle
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.erm.objective_perturbation import ObjectivePerturbationOracle
from repro.erm.oracle import NonPrivateOracle, evaluate_oracle
from repro.erm.output_perturbation import OutputPerturbationOracle
from repro.exceptions import LossSpecificationError
from repro.losses.logistic import LogisticLoss
from repro.losses.quadratic import QuadraticLoss, RidgeRegularized
from repro.losses.squared import SquaredLoss
from repro.optimize.minimize import minimize_loss
from repro.optimize.projections import L2Ball


@pytest.fixture(scope="module")
def task():
    return make_classification_dataset(n=4_000, d=3, universe_size=80, rng=3)


@pytest.fixture
def logistic(task):
    return LogisticLoss(L2Ball(task.universe.dim))


@pytest.fixture
def ridge(task):
    return RidgeRegularized(SquaredLoss(L2Ball(task.universe.dim)), lam=1.0)


class TestNonPrivateOracle:
    def test_returns_near_optimum(self, task, logistic):
        oracle = NonPrivateOracle()
        evaluation = evaluate_oracle(oracle, logistic, task.dataset, trials=1)
        assert evaluation.max_excess_risk < 0.01

    def test_flagged_non_private(self):
        assert NonPrivateOracle().is_private is False


class TestOutputPerturbation:
    def test_answers_in_domain(self, task, ridge):
        oracle = OutputPerturbationOracle(epsilon=1.0, delta=1e-6)
        theta = oracle.answer(ridge, task.dataset, rng=0)
        assert ridge.domain.contains(theta, tol=1e-9)

    def test_requires_strong_convexity(self, task, logistic):
        oracle = OutputPerturbationOracle(epsilon=1.0, delta=1e-6)
        with pytest.raises(LossSpecificationError, match="strong convexity"):
            oracle.answer(logistic, task.dataset, rng=0)

    def test_sensitivity_formula(self, ridge):
        oracle = OutputPerturbationOracle(epsilon=1.0, delta=1e-6)
        # 2L / (sigma n) with L = 2, sigma = 1, n = 100.
        assert oracle.argmin_sensitivity(ridge, 100) == pytest.approx(
            2.0 * ridge.lipschitz_bound / 100
        )

    def test_error_decreases_with_epsilon(self, task, ridge):
        loose = evaluate_oracle(
            OutputPerturbationOracle(epsilon=0.05, delta=1e-6),
            ridge, task.dataset, trials=8, rng=0,
        )
        tight = evaluate_oracle(
            OutputPerturbationOracle(epsilon=5.0, delta=1e-6),
            ridge, task.dataset, trials=8, rng=0,
        )
        assert tight.mean_excess_risk < loose.mean_excess_risk

    def test_argmin_sensitivity_empirical(self, task, ridge):
        """The released argmin really moves <= 2L/(sigma n) between neighbors."""
        bound = OutputPerturbationOracle(1.0, 1e-6).argmin_sensitivity(
            ridge, task.dataset.n
        )
        base = minimize_loss(ridge, task.dataset.histogram()).theta
        for seed in range(5):
            neighbor = task.dataset.random_neighbor(rng=seed)
            other = minimize_loss(ridge, neighbor.histogram()).theta
            assert np.linalg.norm(base - other) <= bound + 1e-9


class TestObjectivePerturbation:
    def test_answers_in_domain(self, task, logistic):
        oracle = ObjectivePerturbationOracle(epsilon=1.0, delta=1e-6)
        theta = oracle.answer(logistic, task.dataset, rng=0)
        assert logistic.domain.contains(theta, tol=1e-9)

    def test_reasonable_accuracy_at_moderate_budget(self, task, logistic):
        oracle = ObjectivePerturbationOracle(epsilon=2.0, delta=1e-6,
                                             solver_steps=300)
        evaluation = evaluate_oracle(oracle, logistic, task.dataset,
                                     trials=4, rng=1)
        assert evaluation.mean_excess_risk < 0.25

    def test_requires_lipschitz(self, task):
        loss = QuadraticLoss(L2Ball(task.universe.dim))
        loss.lipschitz_bound = None
        oracle = ObjectivePerturbationOracle(epsilon=1.0, delta=1e-6)
        with pytest.raises(LossSpecificationError, match="Lipschitz"):
            oracle.answer(loss, task.dataset, rng=0)


class TestNoisyGradientDescent:
    def test_answers_in_domain(self, task, logistic):
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=20)
        theta = oracle.answer(logistic, task.dataset, rng=0)
        assert logistic.domain.contains(theta, tol=1e-9)

    def test_noise_sigma_decreases_with_n(self, logistic):
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=10)
        assert (oracle.noise_sigma(logistic, 10_000)
                < oracle.noise_sigma(logistic, 1_000))

    def test_error_decreases_with_n(self):
        errors = []
        for n in (500, 20_000):
            task = make_classification_dataset(n=n, d=3, universe_size=80,
                                               rng=5)
            loss = LogisticLoss(L2Ball(3))
            oracle = NoisyGradientDescentOracle(epsilon=0.5, delta=1e-6,
                                                steps=30)
            evaluation = evaluate_oracle(oracle, loss, task.dataset,
                                         trials=4, rng=2)
            errors.append(evaluation.mean_excess_risk)
        assert errors[1] < errors[0]

    def test_last_iterate_mode(self, task, ridge):
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6,
                                            steps=30, averaging="last")
        theta = oracle.answer(ridge, task.dataset, rng=0)
        assert ridge.domain.contains(theta, tol=1e-9)

    def test_rejects_bad_averaging(self):
        with pytest.raises(LossSpecificationError):
            NoisyGradientDescentOracle(1.0, 1e-6, averaging="median")


class TestGLMProjectionOracle:
    def test_requires_glm(self, task):
        oracle = GLMProjectionOracle(epsilon=1.0, delta=1e-6)
        with pytest.raises(LossSpecificationError, match="GLM"):
            oracle.answer(QuadraticLoss(L2Ball(3)), task.dataset, rng=0)

    def test_answers_in_domain(self, task, logistic):
        oracle = GLMProjectionOracle(epsilon=1.0, delta=1e-6,
                                     projection_dim=2, steps=30)
        theta = oracle.answer(logistic, task.dataset, rng=0)
        assert logistic.domain.contains(theta, tol=1e-9)

    def test_projection_dim_capped_by_d(self, task, logistic):
        oracle = GLMProjectionOracle(epsilon=1.0, delta=1e-6,
                                     projection_dim=64, steps=10)
        theta = oracle.answer(logistic, task.dataset, rng=0)
        assert theta.shape == (task.universe.dim,)

    def test_useful_accuracy(self, task, logistic):
        oracle = GLMProjectionOracle(epsilon=2.0, delta=1e-6,
                                     projection_dim=3, steps=40)
        evaluation = evaluate_oracle(oracle, logistic, task.dataset,
                                     trials=4, rng=3)
        assert evaluation.mean_excess_risk < 0.3


class TestExponentialMechanismOracle:
    def test_pure_dp(self):
        oracle = ExponentialMechanismOracle(epsilon=1.0)
        assert oracle.delta == 0.0

    def test_candidate_net_data_independent(self, task, logistic):
        oracle = ExponentialMechanismOracle(epsilon=1.0, candidates=16,
                                            net_seed=7)
        net_a = oracle.candidate_net(logistic)
        net_b = oracle.candidate_net(logistic)
        np.testing.assert_array_equal(net_a, net_b)

    def test_answer_comes_from_net(self, task, logistic):
        oracle = ExponentialMechanismOracle(epsilon=1.0, candidates=16)
        theta = oracle.answer(logistic, task.dataset, rng=0)
        net = oracle.candidate_net(logistic)
        assert any(np.allclose(theta, candidate) for candidate in net)

    def test_prefers_good_candidates(self, task, logistic):
        """At generous epsilon the pick should be near the net's best."""
        oracle = ExponentialMechanismOracle(epsilon=50.0, candidates=64)
        hist = task.dataset.histogram()
        net = oracle.candidate_net(logistic)
        values = np.array([logistic.loss_on(t, hist) for t in net])
        theta = oracle.answer(logistic, task.dataset, rng=0)
        picked_value = logistic.loss_on(theta, hist)
        assert picked_value <= np.percentile(values, 20)


class TestWithBudget:
    def test_rebudget_copies(self):
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6)
        cheap = oracle.with_budget(0.1, 1e-8)
        assert cheap.epsilon == 0.1
        assert oracle.epsilon == 1.0  # original untouched

    def test_rebudget_preserves_settings(self):
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=77)
        assert oracle.with_budget(0.2, 1e-7).steps == 77
