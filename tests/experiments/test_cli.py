"""Tests for the experiment CLI (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_every_bench_has_a_cli_entry(self):
        """Keep the CLI in sync with the experiment index (E1-E14)."""
        assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 15)}

    def test_unknown_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["e99"])

    def test_runs_and_saves(self, tmp_path, capsys):
        assert main(["e7", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Claim 3.5" in out
        assert (tmp_path / "e7.txt").exists()

    def test_seed_forwarded(self, tmp_path):
        main(["e8", "--seed", "3", "--out", str(tmp_path)])
        first = (tmp_path / "e8.txt").read_text()
        main(["e8", "--seed", "3", "--out", str(tmp_path)])
        assert (tmp_path / "e8.txt").read_text() == first
