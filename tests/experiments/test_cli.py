"""Tests for the experiment CLI (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_every_bench_has_a_cli_entry(self):
        """Keep the CLI in sync with the experiment index (E1-E16 plus
        the serving-layer demos that share their benchmark's number)."""
        assert set(EXPERIMENTS) == \
            {f"e{i}" for i in range(1, 17)} | {"e22", "e23", "e24"}

    def test_unknown_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["e99"])

    def test_runs_and_saves(self, tmp_path, capsys):
        assert main(["e7", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Claim 3.5" in out
        assert (tmp_path / "e7.txt").exists()

    def test_seed_forwarded(self, tmp_path):
        main(["e8", "--seed", "3", "--out", str(tmp_path)])
        first = (tmp_path / "e8.txt").read_text()
        main(["e8", "--seed", "3", "--out", str(tmp_path)])
        assert (tmp_path / "e8.txt").read_text() == first


class TestOperatorVerbs:
    """The `checkpoint` / `compact` durability verbs (PR 5)."""

    @pytest.fixture
    def deployment(self, tmp_path):
        from repro.data.synthetic import make_classification_dataset
        from repro.losses.families import random_quadratic_family
        from repro.serve.checkpoint import Checkpointer
        from repro.serve.service import PMWService

        task = make_classification_dataset(n=300, d=3, universe_size=40,
                                           rng=0)
        ledger = tmp_path / "budget.jsonl"
        service = PMWService(task.dataset, ledger_path=ledger, rng=0)
        sid = service.open_session(
            "pmw-convex", oracle="non-private", scale=4.0, alpha=0.4,
            epsilon=2.0, delta=1e-6, max_updates=4, solver_steps=30)
        losses = random_quadratic_family(task.universe, 4, rng=1)
        service.answer_batch((sid, losses[:2]))
        checkpointer = Checkpointer(service, tmp_path / "ck")
        checkpointer.checkpoint()
        service.answer_batch((sid, losses[2:]))
        service.close()
        return tmp_path

    def test_checkpoint_status_verb(self, deployment, capsys):
        code = main(["checkpoint", "--dir", str(deployment / "ck"),
                     "--ledger", str(deployment / "budget.jsonl")])
        out = capsys.readouterr().out
        assert code == 0
        assert "ledger stamp" in out
        assert "suffix records" in out or "full-replay authority" in out

    def test_checkpoint_status_empty_dir(self, deployment, tmp_path,
                                         capsys):
        empty = tmp_path / "none"
        empty.mkdir()
        assert main(["checkpoint", "--dir", str(empty)]) == 1
        assert "no checkpoints" in capsys.readouterr().out

    def test_compact_verb(self, deployment, capsys):
        from repro.serve.ledger import replay_ledger
        ledger = deployment / "budget.jsonl"
        before = replay_ledger(ledger)
        assert main(["compact", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out and "archived" in out
        after = replay_ledger(ledger)
        assert after.compacted_through == before.last_seq
        for sid in before.opens:
            assert after.accountant_for(sid).total_basic() == \
                before.accountant_for(sid).total_basic()

    def test_compact_then_status_reports_rotation(self, deployment,
                                                  capsys):
        main(["compact", "--ledger", str(deployment / "budget.jsonl")])
        capsys.readouterr()
        assert main(["checkpoint", "--dir", str(deployment / "ck"),
                     "--ledger",
                     str(deployment / "budget.jsonl")]) == 0
        assert "full-replay authority" in capsys.readouterr().out

    def test_e15_demo_runs(self, capsys):
        assert main(["e15"]) == 0
        out = capsys.readouterr().out
        assert "crash recovery" in out
        assert "True" in out  # bitwise-exact columns


class TestShardsVerb:
    """The `shards` failover-readiness verb + e22 demo (PR 7)."""

    @pytest.fixture
    def sharded_deployment(self, tmp_path):
        from repro.data.synthetic import make_classification_dataset
        from repro.losses.families import random_quadratic_family
        from repro.serve.shard import ShardedService

        task = make_classification_dataset(n=300, d=3, universe_size=40,
                                           rng=0)
        deploy = tmp_path / "deploy"
        with ShardedService(task.dataset, deploy, shards=2,
                            checkpoint_every=1, ledger_fsync=False,
                            rng=0) as service:
            for index in range(3):
                sid = service.open_session(
                    "pmw-convex", session_id=f"an-{index}",
                    analyst=f"an-{index}", rng=100 + index,
                    oracle="non-private", scale=4.0, alpha=0.4,
                    epsilon=2.0, delta=1e-6, max_updates=4,
                    solver_steps=30)
                service.serve_session_batch(
                    sid, random_quadratic_family(task.universe, 2,
                                                 rng=index))
        return deploy

    def test_shards_status_verb(self, sharded_deployment, capsys):
        assert main(["shards", "--dir", str(sharded_deployment)]) == 0
        out = capsys.readouterr().out
        assert "topology: 2 shards x 128 vnodes" in out
        assert "shard-00" in out and "shard-01" in out
        assert "checkpoint(s)" in out

    def test_shards_status_not_a_deployment(self, tmp_path, capsys):
        assert main(["shards", "--dir", str(tmp_path)]) == 1
        assert "no topology.json" in capsys.readouterr().out

    def test_e22_demo_runs(self, capsys):
        assert main(["e22"]) == 0
        out = capsys.readouterr().out
        assert "session sharding" in out
        assert "True" in out  # totals bitwise-exact column
