"""Tests for the experiment harness (runner, sweep, report)."""

import numpy as np
import pytest

from repro.experiments.report import (
    ExperimentReport,
    fit_power_law,
    format_table,
)
from repro.experiments.runner import run_trials
from repro.experiments.sweep import sweep


class TestRunTrials:
    def test_stats_fields(self):
        stats = run_trials(lambda g: float(g.random()), trials=10, rng=0)
        assert stats.trials == 10
        assert stats.minimum <= stats.mean <= stats.maximum
        assert len(stats.values) == 10

    def test_deterministic_across_calls(self):
        a = run_trials(lambda g: float(g.random()), trials=5, rng=3)
        b = run_trials(lambda g: float(g.random()), trials=5, rng=3)
        assert a.values == b.values

    def test_adding_trials_preserves_prefix(self):
        short = run_trials(lambda g: float(g.random()), trials=3, rng=3)
        long = run_trials(lambda g: float(g.random()), trials=6, rng=3)
        assert long.values[:3] == short.values

    def test_format(self):
        stats = run_trials(lambda g: 1.0, trials=2, rng=0)
        assert "±" in f"{stats}"

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            run_trials(lambda g: 0.0, trials=0)


class TestSweep:
    def test_records_per_value(self):
        result = sweep("n", [10, 20, 30],
                       lambda n, g: float(n) + g.random(), trials=2)
        assert len(result.records) == 3
        assert result.column("n") == [10, 20, 30]

    def test_series_extraction(self):
        result = sweep("n", [1, 2], lambda n, g: float(n), trials=2)
        xs, ys = result.series()
        assert xs == [1, 2]
        assert ys == pytest.approx([1.0, 2.0])

    def test_extra_merged(self):
        result = sweep("k", [5], lambda k, g: 0.0, trials=1,
                       extra={"workload": "test"})
        assert result.records[0]["workload"] == "test"


class TestFitPowerLaw:
    def test_exact_power_law(self):
        xs = np.array([1.0, 2.0, 4.0, 8.0])
        ys = 3.0 * xs ** -0.5
        slope, r2 = fit_power_law(xs, ys)
        assert slope == pytest.approx(-0.5, abs=1e-9)
        assert r2 == pytest.approx(1.0)

    def test_flat_series(self):
        slope, _ = fit_power_law([1, 10, 100], [5.0, 5.0, 5.0])
        assert slope == pytest.approx(0.0, abs=1e-9)

    def test_nonpositive_dropped(self):
        slope, _ = fit_power_law([1, 2, 4, -1], [1.0, 2.0, 4.0, 0.0])
        assert slope == pytest.approx(1.0, abs=1e-9)

    def test_insufficient_points(self):
        slope, r2 = fit_power_law([1.0], [2.0])
        assert np.isnan(slope)


class TestReport:
    def test_table_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2.34567], [10, 3.0]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "2.346" in text

    def test_report_render(self):
        report = ExperimentReport("test-exp")
        report.add("hello")
        report.add_table(["x"], [[1]])
        text = report.render()
        assert "test-exp" in text
        assert "hello" in text

    def test_shape_check_ok(self):
        report = ExperimentReport("shapes")
        ok = report.add_shape_check("demo", [1, 2, 4], [1.0, 2.0, 4.0],
                                    expected_slope=1.0, tolerance=0.1)
        assert ok
        assert "OK" in report.render()

    def test_shape_check_mismatch(self):
        report = ExperimentReport("shapes")
        ok = report.add_shape_check("demo", [1, 2, 4], [1.0, 2.0, 4.0],
                                    expected_slope=-1.0, tolerance=0.5)
        assert not ok
        assert "MISMATCH" in report.render()
