"""Tests for the shared experiment workload builders."""

import numpy as np
import pytest

from repro.erm.oracle import NonPrivateOracle
from repro.experiments.workloads import (
    classification_workload,
    family_max_error,
    pmw_max_error,
    regression_workload,
    single_query_excess,
)
from repro.losses.families import (
    random_logistic_family,
    random_squared_family,
)


class TestWorkloadBuilders:
    def test_classification_workload_fields(self):
        workload = classification_workload(
            n=1_000, d=3, k=5, family_builder=random_logistic_family,
            universe_size=60, rng=0,
        )
        assert workload.dataset.n == 1_000
        assert len(workload.losses) == 5
        assert workload.scale == pytest.approx(2.0)
        assert "classification" in workload.description

    def test_regression_workload_fields(self):
        workload = regression_workload(
            n=1_000, d=3, k=4, family_builder=random_squared_family,
            universe_size=60, rng=0,
        )
        assert len(workload.losses) == 4
        assert workload.universe.is_labeled

    def test_reproducible(self):
        a = classification_workload(n=500, d=2, k=3,
                                    family_builder=random_logistic_family,
                                    universe_size=40, rng=7)
        b = classification_workload(n=500, d=2, k=3,
                                    family_builder=random_logistic_family,
                                    universe_size=40, rng=7)
        np.testing.assert_array_equal(a.dataset.indices, b.dataset.indices)


class TestMeasurements:
    @pytest.fixture(scope="class")
    def workload(self):
        return classification_workload(
            n=20_000, d=3, k=6, family_builder=random_logistic_family,
            universe_size=60, rng=1,
        )

    def test_pmw_max_error_runs(self, workload):
        error, updates = pmw_max_error(
            workload, NonPrivateOracle(150), alpha=0.3, epsilon=2.0,
            max_updates=10, rng=0,
        )
        assert 0.0 <= error <= 1.0
        assert 0 <= updates <= 10

    def test_family_max_error_of_optima_is_zero(self, workload):
        from repro.optimize.minimize import minimize_loss
        data = workload.dataset.histogram()
        thetas = [minimize_loss(loss, data, steps=400).theta
                  for loss in workload.losses]
        assert family_max_error(workload.losses, data, thetas,
                                solver_steps=400) <= 2e-3

    def test_single_query_excess_nonnegative(self, workload):
        excess = single_query_excess(
            workload.losses[0], workload.dataset, NonPrivateOracle(200),
            rng=0,
        )
        assert excess >= 0.0
        assert excess < 0.05  # non-private oracle is near-exact


class TestExperimentSmoke:
    """Tiny-parameter smoke runs of every experiment driver."""

    def test_linear_row(self):
        from repro.experiments.table1 import run_linear_row
        report = run_linear_row(n=5_000, ks=(8, 32), trials=1,
                                max_updates=8, rng=0)
        assert "PMW" in report.render()

    def test_uglm_row(self):
        from repro.experiments.table1 import run_uglm_row
        report = run_uglm_row(dims=(2, 4), n=2_000, trials=1, rng=0)
        assert "GLM" in report.render()

    def test_strongly_convex_row(self):
        from repro.experiments.table1 import run_strongly_convex_row
        report = run_strongly_convex_row(
            sigmas=(0.5, 1.0), ns=(1_000, 4_000), n_fixed=2_000, k=4,
            trials=1, rng=0,
        )
        assert "sigma" in report.render()

    def test_crossover(self):
        from repro.experiments.crossover import run_crossover
        report = run_crossover(ks=(2, 8), n=5_000, trials=1, rng=0)
        assert "winner" in report.render()

    def test_update_count(self):
        from repro.experiments.diagnostics import run_update_count
        report = run_update_count(alphas=(0.4,), n=5_000, pool_size=5,
                                  queries=10, rng=0)
        assert "paper budget" in report.render()

    def test_offline_online(self):
        from repro.experiments.offline_online import run_offline_online
        report = run_offline_online(n=5_000, k=5, rounds=3, trials=1, rng=0)
        assert "offline" in report.render()

    def test_oracle_sweep(self):
        from repro.experiments.oracles import run_oracle_sweep
        report = run_oracle_sweep(ns=(500, 2_000), trials=1, rng=0)
        assert "noisy-GD" in report.render()

    def test_generalization(self):
        from repro.experiments.generalization import run_generalization
        report = run_generalization(n=40, pool_size=5, k=5, trials=1, rng=0)
        assert "gap" in report.render()

    def test_runtime(self):
        from repro.experiments.runtime import run_runtime_profile
        report = run_runtime_profile(universe_sizes=(40, 80), n=2_000, k=3,
                                     rng=0)
        assert "per-query" in report.render()


class TestLargeUniverseWorkload:
    """The sharded large-universe workload (engine + ShardedHistogram)."""

    def test_builds_shared_table_matrix(self):
        from repro.engine import kernels
        from repro.experiments.workloads import large_universe_workload

        workload = large_universe_workload(universe_size=5_000, k=8,
                                           n=2_000, shards=4, rng=0)
        assert workload.universe.size == 5_000
        assert len(workload.queries) == 8
        stacked = kernels.stack_tables(workload.queries)
        # the workload builds one contiguous matrix; stacking is zero-copy
        assert (stacked.__array_interface__["data"][0]
                == workload.queries[0].table.__array_interface__["data"][0])

    def test_runs_end_to_end_sharded(self):
        from repro.data.sharded import ShardedHistogram
        from repro.core.pmw_linear import PrivateMWLinear
        from repro.experiments.workloads import (
            large_universe_workload,
            sharded_linear_max_error,
        )

        workload = large_universe_workload(universe_size=5_000, k=12,
                                           n=5_000, shards=4, rng=1)
        worst, updates = sharded_linear_max_error(
            workload, alpha=0.2, epsilon=2.0, max_updates=10, rng=2)
        assert 0.0 <= worst <= 1.0
        assert 0 <= updates <= 10
        # the mechanism really runs a sharded hypothesis
        mechanism = PrivateMWLinear(
            workload.dataset, alpha=0.2, epsilon=2.0,
            shards=workload.shards, rng=3)
        assert isinstance(mechanism.hypothesis, ShardedHistogram)
        assert mechanism.hypothesis.num_shards == workload.shards

    def test_interval_tables_are_indicators(self):
        import numpy as np
        from repro.experiments.workloads import large_universe_workload

        workload = large_universe_workload(universe_size=2_000, k=5,
                                           n=1_000, rng=4)
        for query in workload.queries:
            assert set(np.unique(query.table)) <= {0.0, 1.0}
