"""Integration tests: the full pipeline at realistic (but small) scale.

These exercise the complete paper workflow — synthetic data generation,
family construction, oracle plug-in, the Figure 3 mechanism, accuracy
measurement, privacy accounting — across all four Table 1 loss families.
"""

import pytest

from repro.adaptive.analysts import WorstCaseAnalyst
from repro.adaptive.game import play_accuracy_game
from repro.core.accuracy import answer_error
from repro.core.pmw_cm import PrivateMWConvex
from repro.core.pmw_linear import PrivateMWLinear
from repro.data.synthetic import (
    make_classification_dataset,
    make_regression_dataset,
)
from repro.erm.glm_oracle import GLMProjectionOracle
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.erm.output_perturbation import OutputPerturbationOracle
from repro.losses.families import (
    random_halfspace_queries,
    random_logistic_family,
    random_ridge_family,
    random_squared_family,
)
from repro.losses.scaling import family_scale_bound


@pytest.fixture(scope="module")
def classification():
    return make_classification_dataset(n=30_000, d=3, universe_size=120,
                                       rng=0)


@pytest.fixture(scope="module")
def regression():
    return make_regression_dataset(n=30_000, d=3, universe_size=100,
                                   label_levels=5, rng=1)


class TestLipschitzPipeline:
    def test_logistic_family_end_to_end(self, classification):
        """Table 1 row 2 pipeline with a genuinely private run."""
        losses = random_logistic_family(classification.universe, 12, rng=2)
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=30)
        mechanism = PrivateMWConvex(
            classification.dataset, oracle,
            scale=family_scale_bound(losses), alpha=0.25, epsilon=1.0,
            delta=1e-6, schedule="calibrated", max_updates=20,
            solver_steps=250, rng=3,
        )
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        data = classification.dataset.histogram()
        errors = [answer_error(loss, data, a.theta, solver_steps=400)
                  for loss, a in zip(losses, answers)]
        assert max(errors) <= 0.3
        assert mechanism.privacy_guarantee().epsilon <= 1.1


class TestUGLMPipeline:
    def test_glm_oracle_plugs_in(self, classification):
        """Table 1 row 3: same mechanism, JT14-style oracle."""
        losses = random_logistic_family(classification.universe, 8, rng=4)
        oracle = GLMProjectionOracle(epsilon=1.0, delta=1e-6,
                                     projection_dim=3, steps=30)
        mechanism = PrivateMWConvex(
            classification.dataset, oracle,
            scale=family_scale_bound(losses), alpha=0.3, epsilon=1.0,
            delta=1e-6, schedule="calibrated", max_updates=15,
            solver_steps=250, rng=5,
        )
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        data = classification.dataset.histogram()
        errors = [answer_error(loss, data, a.theta, solver_steps=400)
                  for loss, a in zip(losses, answers)]
        assert max(errors) <= 0.35


class TestStronglyConvexPipeline:
    def test_ridge_family_with_output_perturbation(self, classification):
        """Table 1 row 4: strongly convex losses, CMS11-style oracle."""
        losses = random_ridge_family(classification.universe, 10, lam=1.0,
                                     rng=6)
        oracle = OutputPerturbationOracle(epsilon=1.0, delta=1e-6)
        mechanism = PrivateMWConvex(
            classification.dataset, oracle,
            scale=family_scale_bound(losses), alpha=0.3, epsilon=1.0,
            delta=1e-6, schedule="calibrated", max_updates=15,
            solver_steps=250, rng=7,
        )
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        data = classification.dataset.histogram()
        errors = [answer_error(loss, data, a.theta, solver_steps=300)
                  for loss, a in zip(losses, answers)]
        assert max(errors) <= 0.35


class TestRegressionPipeline:
    def test_squared_family(self, regression):
        """The paper's opening example: many linear regressions."""
        losses = random_squared_family(regression.universe, 10, rng=8)
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=30)
        mechanism = PrivateMWConvex(
            regression.dataset, oracle, scale=family_scale_bound(losses),
            alpha=0.25, epsilon=1.0, delta=1e-6, schedule="calibrated",
            max_updates=20, solver_steps=250, rng=9,
        )
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        data = regression.dataset.histogram()
        errors = [answer_error(loss, data, a.theta, solver_steps=300)
                  for loss, a in zip(losses, answers)]
        assert max(errors) <= 0.3


class TestLinearPipeline:
    def test_pmw_linear_many_queries(self, classification):
        """Table 1 row 1 on the same data substrate."""
        queries = random_halfspace_queries(classification.universe, 60,
                                           rng=10)
        mechanism = PrivateMWLinear(
            classification.dataset, alpha=0.15, epsilon=1.0, delta=1e-6,
            schedule="calibrated", max_updates=20, rng=11,
        )
        answers = mechanism.answer_all(queries, on_halt="hypothesis")
        data = classification.dataset.histogram()
        errors = [abs(q.answer(data) - a.value)
                  for q, a in zip(queries, answers)]
        assert max(errors) <= 0.2


class TestAdaptiveAdversary:
    def test_worst_case_analyst_stays_accurate(self, classification):
        """Definition 2.4 quantifies over adaptive adversaries; run one."""
        pool = random_logistic_family(classification.universe, 6, rng=12)
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=30)
        mechanism = PrivateMWConvex(
            classification.dataset, oracle, scale=family_scale_bound(pool),
            alpha=0.3, epsilon=1.0, delta=1e-6, schedule="calibrated",
            max_updates=15, solver_steps=250, rng=13,
        )
        analyst = WorstCaseAnalyst(
            pool, classification.dataset.histogram(), solver_steps=150
        )
        result = play_accuracy_game(mechanism, analyst, k=12,
                                    solver_steps=300)
        assert result.max_error <= 0.35


class TestSyntheticRelease:
    def test_synthetic_data_supports_new_queries(self, classification):
        """The hypothesis generalizes to queries never asked (MW's point)."""
        train = random_logistic_family(classification.universe, 15, rng=14)
        holdout = random_logistic_family(classification.universe, 5, rng=99)
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6, steps=30)
        mechanism = PrivateMWConvex(
            classification.dataset, oracle, scale=family_scale_bound(train),
            alpha=0.25, epsilon=1.0, delta=1e-6, schedule="calibrated",
            max_updates=20, solver_steps=250, rng=15,
        )
        mechanism.answer_all(train, on_halt="hypothesis")
        data = classification.dataset.histogram()
        hypothesis = mechanism.hypothesis
        from repro.optimize.minimize import minimize_loss
        for loss in holdout:
            theta = minimize_loss(loss, hypothesis, steps=300).theta
            assert answer_error(loss, data, theta,
                                solver_steps=300) <= 0.35
