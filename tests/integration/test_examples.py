"""Smoke tests: every example script must import cleanly and run.

The quickstart runs end-to-end (it is the advertised entry point); the
larger examples are validated by import + a reduced-scale invocation of
their building blocks, keeping the suite fast.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    @pytest.mark.parametrize("name", [
        "quickstart",
        "service_quickstart",
        "private_regression_workbench",
        "adaptive_analyst",
        "many_logistic_queries",
        "offline_marginal_release",
    ])
    def test_imports_and_has_main(self, name):
        module = load_example(name)
        assert callable(module.main)

    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "max excess risk" in out
        assert "privacy guarantee" in out

    def test_workbench_building_blocks(self):
        """The workbench's workload builder at reduced scale."""
        module = load_example("private_regression_workbench")
        from repro.data.synthetic import make_regression_dataset
        task = make_regression_dataset(n=500, d=2, universe_size=40,
                                       label_levels=3, rng=0)
        losses = module.build_workload(task.universe, rng=1)
        assert len(losses) == 30
        names = {type(loss).__name__ for loss in losses}
        assert {"SquaredLoss", "HuberLoss", "RidgeRegularized"} <= names
