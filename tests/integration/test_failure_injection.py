"""Failure-injection tests: the mechanism under broken components.

The paper's privacy proof (Theorem 3.9) does NOT depend on the oracle
answering accurately — only on it being (eps0, delta0)-DP. These tests
inject pathological oracles and verify:

- the mechanism never crashes and always returns domain-feasible answers;
- the privacy accounting is unchanged (budget spent only on calls made);
- Claim 3.5 still holds for whatever theta the oracle returns (it is an
  inequality for arbitrary feasible theta);
- with a *useless* oracle the hypothesis stops improving but the update
  budget still caps the damage.
"""

import numpy as np
import pytest

from repro.core.pmw_cm import PrivateMWConvex
from repro.core.update import claim_3_5_slack, dual_certificate
from repro.data.histogram import Histogram
from repro.erm.oracle import SingleQueryOracle
from repro.exceptions import OptimizationError
from repro.losses.families import random_quadratic_family
from repro.losses.quadratic import QuadraticLoss
from repro.optimize.projections import L2Ball


class AdversarialOracle(SingleQueryOracle):
    """Returns the WORST feasible point (maximizes the loss on the data)."""

    def __init__(self) -> None:
        super().__init__(epsilon=1.0, delta=1e-6)

    def answer(self, loss, dataset, rng=None):
        histogram = dataset.histogram()
        candidates = [loss.domain.random_point(np.random.default_rng(s))
                      for s in range(16)]
        values = [loss.loss_on(theta, histogram) for theta in candidates]
        return candidates[int(np.argmax(values))]


class ConstantOracle(SingleQueryOracle):
    """Ignores the data entirely; returns the domain center."""

    def __init__(self) -> None:
        super().__init__(epsilon=1.0, delta=1e-6)

    def answer(self, loss, dataset, rng=None):
        return loss.domain.center()


class OutOfDomainOracle(SingleQueryOracle):
    """Returns a point far outside the domain (a buggy implementation)."""

    def __init__(self) -> None:
        super().__init__(epsilon=1.0, delta=1e-6)

    def answer(self, loss, dataset, rng=None):
        return np.full(loss.domain.dim, 100.0)


def make_mechanism(dataset, oracle, **overrides):
    params = dict(scale=4.0, alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
                  schedule="calibrated", max_updates=8, solver_steps=150,
                  rng=0)
    params.update(overrides)
    return PrivateMWConvex(dataset, oracle, **params)


@pytest.mark.parametrize("oracle_cls", [AdversarialOracle, ConstantOracle,
                                        OutOfDomainOracle])
class TestBrokenOracles:
    def test_never_crashes_and_stays_feasible(self, cube_dataset, oracle_cls):
        mechanism = make_mechanism(cube_dataset, oracle_cls())
        losses = random_quadratic_family(cube_dataset.universe, 10, rng=1)
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        for loss, answer in zip(losses, answers):
            assert loss.domain.contains(answer.theta, tol=1e-9)

    def test_privacy_accounting_unchanged(self, cube_dataset, oracle_cls):
        mechanism = make_mechanism(cube_dataset, oracle_cls())
        losses = random_quadratic_family(cube_dataset.universe, 10, rng=2)
        mechanism.answer_all(losses, on_halt="hypothesis")
        oracle_spends = [s for s in mechanism.accountant.spends
                         if s.label.startswith("oracle")]
        assert len(oracle_spends) == mechanism.updates_performed
        for spend in oracle_spends:
            assert spend.epsilon == pytest.approx(
                mechanism.config.oracle_epsilon
            )

    def test_update_budget_caps_damage(self, cube_dataset, oracle_cls):
        mechanism = make_mechanism(cube_dataset, oracle_cls(), max_updates=3)
        losses = random_quadratic_family(cube_dataset.universe, 30, rng=3)
        mechanism.answer_all(losses, on_halt="hypothesis")
        assert mechanism.updates_performed <= 3


class TestClaim35WithArbitraryTheta:
    def test_holds_for_adversarial_oracle_output(self, cube_universe,
                                                 cube_dataset):
        """Claim 3.5 is an inequality for ANY feasible theta — including
        the worst one an adversarial oracle could return."""
        loss = QuadraticLoss(L2Ball(3))
        data = cube_dataset.histogram()
        hypothesis = Histogram.uniform(cube_universe)
        worst = AdversarialOracle().answer(loss, cube_dataset)
        certificate = dual_certificate(loss, hypothesis, np.asarray(worst))
        assert claim_3_5_slack(loss, certificate, data, hypothesis) >= -1e-9


class TestBrokenGradients:
    def test_nan_gradient_raises_cleanly(self, cube_dataset):
        """A loss producing NaN gradients fails loudly, not silently."""
        class NaNLoss(QuadraticLoss):
            def gradients(self, theta, universe):
                grads = super().gradients(theta, universe)
                grads[0, 0] = np.nan
                return grads

        from repro.optimize.gradient_descent import projected_gradient_descent
        loss = NaNLoss(L2Ball(3))
        hist = cube_dataset.histogram()
        with pytest.raises(OptimizationError, match="non-finite"):
            projected_gradient_descent(
                lambda t: loss.gradient_on(t, hist), loss.domain, steps=5
            )
