"""Integration: threshold/interval queries through PMW-linear (Sec 4.3's
interval-query special case on our substrate)."""

import numpy as np
import pytest

from repro.core.pmw_linear import PrivateMWLinear
from repro.data.builders import interval_grid
from repro.data.dataset import Dataset
from repro.losses.structured_queries import interval_queries, threshold_queries


@pytest.fixture(scope="module")
def grid_data():
    universe = interval_grid(64, -1.0, 1.0)
    rng = np.random.default_rng(0)
    # Bimodal distribution: thresholds see interesting structure.
    centers = rng.choice([-0.5, 0.6], size=50_000, p=[0.3, 0.7])
    raw = np.clip(centers + 0.1 * rng.standard_normal(50_000), -1, 1)
    indices = np.clip(((raw + 1) / 2 * 63).round().astype(int), 0, 63)
    return Dataset(universe, indices)


class TestThresholdPipeline:
    def test_all_thresholds_answered_accurately(self, grid_data):
        queries = threshold_queries(grid_data.universe)
        mechanism = PrivateMWLinear(grid_data, alpha=0.1, epsilon=1.0,
                                    delta=1e-6, schedule="calibrated",
                                    max_updates=16, rng=1)
        answers = mechanism.answer_all(queries, on_halt="hypothesis")
        data = grid_data.histogram()
        errors = [abs(q.answer(data) - a.value)
                  for q, a in zip(queries, answers)]
        assert max(errors) <= 0.15

    def test_monotone_structure_mostly_preserved(self, grid_data):
        """Thresholds are nested, so hypothesis answers should be largely
        monotone after the run (MW learns the CDF shape)."""
        queries = threshold_queries(grid_data.universe)
        mechanism = PrivateMWLinear(grid_data, alpha=0.08, epsilon=1.0,
                                    delta=1e-6, schedule="calibrated",
                                    max_updates=16, rng=2)
        mechanism.answer_all(queries, on_halt="hypothesis")
        hypothesis = mechanism.hypothesis
        answers = [q.answer(hypothesis) for q in queries]
        violations = sum(
            answers[i + 1] < answers[i] - 1e-9
            for i in range(len(answers) - 1)
        )
        assert violations == 0  # hypothesis answers are exactly a CDF

    def test_interval_queries_via_hypothesis(self, grid_data):
        """After learning thresholds, random intervals transfer: each
        interval is the difference of two thresholds, so its hypothesis
        error is at most two threshold errors. The sharply bimodal data
        makes the worst threshold slow to learn, so we check the mean and
        a 2x-threshold worst case."""
        thresholds = threshold_queries(grid_data.universe)
        mechanism = PrivateMWLinear(grid_data, alpha=0.1, epsilon=1.0,
                                    delta=1e-6, schedule="calibrated",
                                    max_updates=32, rng=3)
        # Two passes so later updates can revisit early thresholds.
        mechanism.answer_all(list(thresholds) * 2, on_halt="hypothesis")
        data = grid_data.histogram()
        hypothesis = mechanism.hypothesis
        threshold_worst = max(
            abs(q.answer(data) - q.answer(hypothesis)) for q in thresholds
        )
        intervals = interval_queries(grid_data.universe, count=25, rng=4)
        errors = [abs(q.answer(data) - q.answer(hypothesis))
                  for q in intervals]
        assert np.mean(errors) <= 0.15
        assert max(errors) <= 2 * threshold_worst + 1e-9
