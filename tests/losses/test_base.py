"""Tests for the LossFunction base contract."""

import numpy as np
import pytest

from repro.exceptions import LossSpecificationError, ValidationError
from repro.losses.quadratic import QuadraticLoss
from repro.losses.logistic import LogisticLoss
from repro.optimize.projections import L2Ball


class TestDatasetEvaluations:
    def test_loss_on_is_weighted_average(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        theta = np.array([0.1, 0.2, -0.1])
        hist = cube_dataset.histogram()
        expected = float(loss.values(theta, cube_universe) @ hist.weights)
        assert loss.loss_on(theta, hist) == pytest.approx(expected)

    def test_gradient_linearity(self, cube_universe, cube_dataset):
        """grad l_D = sum_x D(x) grad l_x — the identity eq. (3)/(4) rely on."""
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        theta = np.array([0.3, 0.0, -0.2])
        hist = cube_dataset.histogram()
        per_element = loss.gradients(theta, cube_universe)
        expected = per_element.T @ hist.weights
        np.testing.assert_allclose(loss.gradient_on(theta, hist), expected)

    def test_gradient_matches_finite_difference(self, labeled_ball_universe,
                                                labeled_dataset):
        loss = LogisticLoss(L2Ball(labeled_ball_universe.dim))
        theta = np.array([0.2, -0.3])
        hist = labeled_dataset.histogram()
        grad = loss.gradient_on(theta, hist)
        eps = 1e-6
        for i in range(2):
            shift = np.zeros(2)
            shift[i] = eps
            numeric = (loss.loss_on(theta + shift, hist)
                       - loss.loss_on(theta - shift, hist)) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, abs=1e-5)

    def test_theta_shape_checked(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        with pytest.raises(ValidationError):
            loss.loss_on(np.zeros(5), cube_dataset.histogram())


class TestScaleBound:
    def test_cauchy_schwarz_bound(self, cube_universe):
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        # diameter 2, Lipschitz 2 -> S <= 4.
        assert loss.scale_bound() == pytest.approx(4.0)

    def test_estimate_below_bound(self, cube_universe):
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        estimate = loss.estimate_scale(cube_universe, samples=64, rng=0)
        assert estimate <= loss.scale_bound() + 1e-9
        assert estimate > 0.0

    def test_missing_lipschitz_raises(self, cube_universe):
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        loss.lipschitz_bound = None
        with pytest.raises(LossSpecificationError, match="Lipschitz"):
            loss.scale_bound()


class TestTraitChecks:
    def test_max_gradient_norm_within_declared(self, labeled_ball_universe):
        loss = LogisticLoss(L2Ball(labeled_ball_universe.dim))
        observed = loss.max_gradient_norm(labeled_ball_universe, samples=32,
                                          rng=0)
        assert observed <= loss.lipschitz_bound + 1e-9

    def test_convexity_check_passes(self, labeled_ball_universe):
        loss = LogisticLoss(L2Ball(labeled_ball_universe.dim))
        assert loss.check_convexity(labeled_ball_universe, samples=32, rng=0)

    def test_convexity_check_catches_overdeclared_sigma(self,
                                                        labeled_ball_universe):
        loss = LogisticLoss(L2Ball(labeled_ball_universe.dim))
        loss.strong_convexity = 10.0  # logistic is NOT 10-strongly convex
        assert not loss.check_convexity(labeled_ball_universe, samples=64,
                                        rng=0)

    def test_strong_convexity_check_passes_for_quadratic(self, cube_universe):
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        assert loss.strong_convexity == 1.0
        assert loss.check_convexity(cube_universe, samples=32, rng=0)

    def test_requires_labels_helper(self, cube_universe, cube_dataset):
        loss = LogisticLoss(L2Ball(cube_universe.dim))
        with pytest.raises(LossSpecificationError, match="label"):
            loss.loss_on(np.zeros(cube_universe.dim),
                         cube_dataset.histogram())
