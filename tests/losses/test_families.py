"""Tests for random query-family generators."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.losses.families import (
    _random_rotation,
    linear_queries_as_cm,
    random_halfspace_queries,
    random_hinge_family,
    random_linear_queries,
    random_logistic_family,
    random_quadratic_family,
    random_ridge_family,
    random_squared_family,
)
from repro.losses.scaling import validate_family
from repro.utils.rng import as_generator


class TestRandomRotation:
    def test_orthogonal(self):
        generator = as_generator(0)
        for dim in (2, 3, 5):
            rotation = _random_rotation(dim, generator)
            np.testing.assert_allclose(rotation @ rotation.T, np.eye(dim),
                                       atol=1e-10)

    def test_one_dimensional_sign(self):
        generator = as_generator(0)
        rotation = _random_rotation(1, generator)
        assert abs(rotation[0, 0]) == 1.0


class TestLinearFamilies:
    def test_count_and_range(self, cube_universe):
        queries = random_linear_queries(cube_universe, 7, rng=0)
        assert len(queries) == 7
        for query in queries:
            assert query.table.min() >= 0.0
            assert query.table.max() <= 1.0

    def test_halfspaces_are_indicators(self, cube_universe):
        queries = random_halfspace_queries(cube_universe, 5, rng=0)
        for query in queries:
            assert set(np.unique(query.table)) <= {0.0, 1.0}

    def test_halfspaces_nontrivial(self, cube_universe):
        """Most halfspace queries should split the universe nontrivially."""
        queries = random_halfspace_queries(cube_universe, 20, rng=1)
        nontrivial = sum(
            0 < query.table.sum() < cube_universe.size for query in queries
        )
        assert nontrivial >= 15

    def test_as_cm_wrapping(self, cube_universe):
        queries = random_linear_queries(cube_universe, 3, rng=0)
        losses = linear_queries_as_cm(queries)
        assert len(losses) == 3
        assert all(loss.domain.dim == 1 for loss in losses)

    def test_k_validation(self, cube_universe):
        with pytest.raises(ValidationError):
            random_linear_queries(cube_universe, 0)


class TestCMFamilies:
    @pytest.mark.parametrize("builder", [
        random_logistic_family, random_squared_family, random_hinge_family,
    ])
    def test_glm_families_validate(self, labeled_ball_universe, builder):
        losses = builder(labeled_ball_universe, 4, rng=0)
        assert len(losses) == 4
        validate_family(losses, labeled_ball_universe, samples=8, rng=1)

    def test_quadratic_family_exact_ground_truth(self, cube_universe,
                                                 cube_dataset):
        """Each member's true answer is computable in closed form."""
        losses = random_quadratic_family(cube_universe, 3, rng=0)
        hist = cube_dataset.histogram()
        for loss in losses:
            theta = loss.exact_minimizer(hist)
            assert theta is not None
            assert loss.domain.contains(theta, tol=1e-9)

    def test_quadratic_members_distinct(self, cube_universe, cube_dataset):
        losses = random_quadratic_family(cube_universe, 2, rng=0)
        hist = cube_dataset.histogram()
        a = losses[0].exact_minimizer(hist)
        b = losses[1].exact_minimizer(hist)
        assert not np.allclose(a, b)

    def test_ridge_family_strongly_convex(self, labeled_ball_universe):
        losses = random_ridge_family(labeled_ball_universe, 3, lam=0.6, rng=0)
        assert all(loss.strong_convexity == pytest.approx(0.6)
                   for loss in losses)

    def test_families_reproducible(self, labeled_ball_universe):
        theta = np.array([0.3, -0.3])
        a = random_logistic_family(labeled_ball_universe, 2, rng=5)
        b = random_logistic_family(labeled_ball_universe, 2, rng=5)
        np.testing.assert_allclose(
            a[0].values(theta, labeled_ball_universe),
            b[0].values(theta, labeled_ball_universe),
        )

    def test_family_names_unique(self, labeled_ball_universe):
        losses = random_logistic_family(labeled_ball_universe, 5, rng=0)
        assert len({loss.name for loss in losses}) == 5
