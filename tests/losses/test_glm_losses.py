"""Tests for the GLM losses: squared, logistic, hinge, Huber."""

import numpy as np
import pytest

from repro.exceptions import LossSpecificationError
from repro.losses.hinge import HingeLoss, HuberLoss
from repro.losses.logistic import LogisticLoss
from repro.losses.squared import SquaredLoss
from repro.optimize.minimize import minimize_loss
from repro.optimize.projections import L2Ball


@pytest.fixture
def domain(labeled_ball_universe):
    return L2Ball(labeled_ball_universe.dim)


class TestSquaredLoss:
    def test_values_formula(self, labeled_ball_universe, domain):
        loss = SquaredLoss(domain)
        theta = np.array([0.5, -0.5])
        margins = labeled_ball_universe.points @ theta
        expected = 0.25 * (margins - labeled_ball_universe.labels) ** 2
        np.testing.assert_allclose(
            loss.values(theta, labeled_ball_universe), expected
        )

    def test_gradient_finite_difference(self, labeled_ball_universe, domain,
                                        labeled_dataset):
        loss = SquaredLoss(domain)
        theta = np.array([0.1, 0.4])
        hist = labeled_dataset.histogram()
        grad = loss.gradient_on(theta, hist)
        eps = 1e-6
        for i in range(2):
            shift = np.zeros(2)
            shift[i] = eps
            numeric = (loss.loss_on(theta + shift, hist)
                       - loss.loss_on(theta - shift, hist)) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, abs=1e-6)

    def test_exact_minimizer_beats_pgd(self, labeled_dataset, domain):
        loss = SquaredLoss(domain)
        hist = labeled_dataset.histogram()
        exact = minimize_loss(loss, hist)
        assert exact.exact
        # Compare against a long PGD run on the same objective.
        from repro.optimize.gradient_descent import projected_gradient_descent
        iterative = projected_gradient_descent(
            lambda t: loss.gradient_on(t, hist), domain, steps=5000,
            lipschitz=1.0,
        )
        assert exact.value <= loss.loss_on(iterative, hist) + 1e-6

    def test_lipschitz_with_default_normalization(self, labeled_ball_universe,
                                                  domain):
        loss = SquaredLoss(domain)
        assert loss.lipschitz_bound == pytest.approx(1.0)
        observed = loss.max_gradient_norm(labeled_ball_universe, samples=32,
                                          rng=0)
        assert observed <= 1.0 + 1e-9

    def test_is_glm(self, domain):
        assert SquaredLoss(domain).is_glm


class TestLogisticLoss:
    def test_loss_at_zero_is_log2(self, labeled_ball_universe, domain,
                                  labeled_dataset):
        loss = LogisticLoss(domain)
        value = loss.loss_on(np.zeros(2), labeled_dataset.histogram())
        assert value == pytest.approx(np.log(2))

    def test_numerical_stability_large_margins(self, domain):
        from repro.data.universe import Universe
        universe = Universe(np.array([[1.0, 0.0]]) * 1.0,
                            labels=np.array([1.0]))
        loss = LogisticLoss(L2Ball(2, radius=100.0))
        values = loss.values(np.array([100.0, 0.0]), universe)
        assert np.isfinite(values).all()
        assert values[0] < 1e-10  # confident correct prediction
        values = loss.values(np.array([-100.0, 0.0]), universe)
        assert values[0] == pytest.approx(100.0, rel=1e-6)  # ~ -margin

    def test_gradient_bounded_by_one(self, labeled_ball_universe, domain):
        loss = LogisticLoss(domain)
        observed = loss.max_gradient_norm(labeled_ball_universe, samples=32,
                                          rng=0)
        assert observed <= 1.0 + 1e-9

    def test_rejects_non_binary_labels(self, domain):
        from repro.data.universe import Universe
        universe = Universe(np.zeros((2, 2)), labels=np.array([0.0, 1.0]))
        loss = LogisticLoss(domain)
        with pytest.raises(LossSpecificationError, match=r"\{-1, \+1\}"):
            loss.values(np.zeros(2), universe)

    def test_minimizer_aligns_with_planted_direction(self, classification_task):
        loss = LogisticLoss(L2Ball(classification_task.universe.dim))
        hist = classification_task.dataset.histogram()
        result = minimize_loss(loss, hist, steps=600)
        cosine = (result.theta @ classification_task.theta_star
                  / max(np.linalg.norm(result.theta), 1e-12))
        assert cosine > 0.8


class TestHingeLoss:
    def test_values_formula(self, labeled_ball_universe, domain):
        loss = HingeLoss(domain)
        theta = np.array([0.2, 0.1])
        margins = labeled_ball_universe.points @ theta
        expected = np.maximum(0.0, 1.0 - labeled_ball_universe.labels * margins)
        np.testing.assert_allclose(
            loss.values(theta, labeled_ball_universe), expected
        )

    def test_subgradient_valid(self, labeled_ball_universe, domain):
        """First-order inequality holds with the chosen subgradient."""
        loss = HingeLoss(domain)
        assert loss.check_convexity(labeled_ball_universe, samples=48, rng=0)

    def test_subgradient_zero_on_inactive(self, domain):
        from repro.data.universe import Universe
        universe = Universe(np.array([[0.5, 0.0]]), labels=np.array([1.0]))
        loss = HingeLoss(L2Ball(2, radius=10.0))
        grads = loss.gradients(np.array([10.0, 0.0]), universe)  # margin 5 > 1
        np.testing.assert_array_equal(grads, 0.0)


class TestHuberLoss:
    def test_quadratic_inside_delta(self, domain):
        from repro.data.universe import Universe
        universe = Universe(np.array([[1.0, 0.0]]), labels=np.array([0.0]))
        loss = HuberLoss(L2Ball(2), delta=0.5)
        values = loss.values(np.array([0.3, 0.0]), universe)  # residual 0.3
        assert values[0] == pytest.approx(0.5 * 0.3**2)

    def test_linear_outside_delta(self, domain):
        from repro.data.universe import Universe
        universe = Universe(np.array([[1.0, 0.0]]), labels=np.array([-0.9]))
        loss = HuberLoss(L2Ball(2), delta=0.5)
        values = loss.values(np.array([1.0, 0.0]), universe)  # residual 1.9
        assert values[0] == pytest.approx(0.5 * (1.9 - 0.25))

    def test_derivative_clipped(self, labeled_ball_universe):
        loss = HuberLoss(L2Ball(2), delta=0.3)
        observed = loss.max_gradient_norm(labeled_ball_universe, samples=32,
                                          rng=0)
        assert observed <= 0.3 + 1e-9

    def test_convexity(self, labeled_ball_universe):
        loss = HuberLoss(L2Ball(2), delta=0.5)
        assert loss.check_convexity(labeled_ball_universe, samples=32, rng=0)


class TestRotations:
    def test_rotation_changes_loss(self, labeled_ball_universe, domain, rng):
        from repro.losses.families import random_logistic_family
        losses = random_logistic_family(labeled_ball_universe, 2, rng=rng)
        theta = np.array([0.5, 0.2])
        a = losses[0].values(theta, labeled_ball_universe)
        b = losses[1].values(theta, labeled_ball_universe)
        assert not np.allclose(a, b)

    def test_rotation_preserves_lipschitz(self, labeled_ball_universe, rng):
        from repro.losses.families import random_logistic_family
        loss = random_logistic_family(labeled_ball_universe, 1, rng=rng)[0]
        observed = loss.max_gradient_norm(labeled_ball_universe, samples=32,
                                          rng=0)
        assert observed <= 1.0 + 1e-6  # orthogonal rotation keeps norms
