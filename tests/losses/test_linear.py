"""Tests for linear queries and their CM embedding."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.losses.linear import LinearQuery, LinearQueryAsCM
from repro.optimize.minimize import minimize_loss


class TestLinearQuery:
    def test_answer_is_dot_product(self, cube_universe, cube_dataset):
        table = np.zeros(cube_universe.size)
        table[:4] = 1.0
        query = LinearQuery(table)
        hist = cube_dataset.histogram()
        assert query.answer(hist) == pytest.approx(hist.weights[:4].sum())

    def test_error(self, cube_universe, cube_dataset):
        query = LinearQuery(np.ones(cube_universe.size))
        hist = cube_dataset.histogram()
        assert query.error(hist, 0.7) == pytest.approx(0.3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError, match=r"\[0, 1\]"):
            LinearQuery(np.array([0.5, 1.5]))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            LinearQuery(np.array([]))

    def test_table_read_only(self):
        query = LinearQuery(np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            query.table[0] = 0.5

    def test_sensitivity_is_one_over_n(self, cube_universe, cube_dataset):
        """|q(D) - q(D')| <= 1/n for adjacent datasets."""
        query = LinearQuery(
            (np.arange(cube_universe.size) % 2).astype(float)
        )
        hist = cube_dataset.histogram()
        for seed in range(10):
            neighbor = cube_dataset.random_neighbor(rng=seed).histogram()
            diff = abs(query.answer(hist) - query.answer(neighbor))
            assert diff <= 1.0 / cube_dataset.n + 1e-12


class TestLinearQueryAsCM:
    def make(self, universe, rng=0):
        generator = np.random.default_rng(rng)
        table = (generator.random(universe.size) < 0.5).astype(float)
        return LinearQueryAsCM(LinearQuery(table))

    def test_minimizer_is_query_answer(self, cube_universe, cube_dataset):
        loss = self.make(cube_universe)
        hist = cube_dataset.histogram()
        result = minimize_loss(loss, hist)
        assert result.theta[0] == pytest.approx(loss.query.answer(hist))
        assert result.exact

    def test_one_dimensional_domain(self, cube_universe):
        loss = self.make(cube_universe)
        assert loss.domain.dim == 1

    def test_excess_risk_is_squared_answer_error(self, cube_universe,
                                                 cube_dataset):
        """err = (theta - <q,D>)^2 / 4 — Table 1's linear-queries embedding."""
        loss = self.make(cube_universe)
        hist = cube_dataset.histogram()
        answer = loss.query.answer(hist)
        theta = np.array([min(1.0, answer + 0.2)])
        optimum = minimize_loss(loss, hist).value
        excess = loss.loss_on(theta, hist) - optimum
        assert excess == pytest.approx((theta[0] - answer) ** 2 / 4, abs=1e-10)

    def test_lipschitz_declared(self, cube_universe):
        loss = self.make(cube_universe)
        observed = loss.max_gradient_norm(cube_universe, samples=16, rng=0)
        assert observed <= loss.lipschitz_bound + 1e-9

    def test_universe_size_mismatch(self, cube_universe, cube_dataset):
        query = LinearQuery(np.zeros(3))
        loss = LinearQueryAsCM(query)
        with pytest.raises(ValidationError, match="universe"):
            loss.loss_on(np.array([0.5]), cube_dataset.histogram())

    def test_convexity(self, cube_universe):
        loss = self.make(cube_universe)
        assert loss.check_convexity(cube_universe, samples=16, rng=1)
