"""Tests for QuadraticLoss and RidgeRegularized."""

import numpy as np
import pytest

from repro.losses.quadratic import QuadraticLoss, RidgeRegularized
from repro.losses.squared import SquaredLoss
from repro.losses.logistic import LogisticLoss
from repro.optimize.minimize import minimize_loss
from repro.optimize.projections import L2Ball


class TestQuadraticLoss:
    def test_exact_minimizer_is_projected_mean(self, cube_universe,
                                               cube_dataset):
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        hist = cube_dataset.histogram()
        theta = loss.exact_minimizer(hist)
        mean = cube_universe.points.T @ hist.weights
        np.testing.assert_allclose(theta, loss.domain.project(mean))

    def test_transform_applied(self, cube_universe, cube_dataset):
        rotation = np.array([[0.0, -1.0, 0.0],
                             [1.0, 0.0, 0.0],
                             [0.0, 0.0, 1.0]])
        loss = QuadraticLoss(L2Ball(3), transform=rotation)
        hist = cube_dataset.histogram()
        theta = loss.exact_minimizer(hist)
        mean = (cube_universe.points @ rotation.T).T @ hist.weights
        np.testing.assert_allclose(theta, loss.domain.project(mean))

    def test_strong_convexity_declared_and_real(self, cube_universe):
        loss = QuadraticLoss(L2Ball(3))
        assert loss.strong_convexity == 1.0
        assert loss.check_convexity(cube_universe, samples=32, rng=0)

    def test_minimize_dispatch_exact(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(3))
        assert minimize_loss(loss, cube_dataset.histogram()).exact


class TestRidgeRegularized:
    def test_values_add_penalty(self, labeled_ball_universe):
        base = SquaredLoss(L2Ball(2))
        ridge = RidgeRegularized(base, lam=0.8)
        theta = np.array([0.6, 0.0])
        base_values = base.values(theta, labeled_ball_universe)
        ridge_values = ridge.values(theta, labeled_ball_universe)
        np.testing.assert_allclose(ridge_values - base_values,
                                   0.5 * 0.8 * 0.36)

    def test_strong_convexity_sum(self):
        base = SquaredLoss(L2Ball(2))
        ridge = RidgeRegularized(base, lam=0.5)
        assert ridge.strong_convexity == pytest.approx(0.5)

    def test_gradient_includes_lam_theta(self, labeled_ball_universe,
                                         labeled_dataset):
        base = SquaredLoss(L2Ball(2))
        ridge = RidgeRegularized(base, lam=1.0)
        theta = np.array([0.2, -0.4])
        hist = labeled_dataset.histogram()
        expected = base.gradient_on(theta, hist) + theta
        np.testing.assert_allclose(ridge.gradient_on(theta, hist), expected)

    def test_exact_minimizer_matches_iterative(self, labeled_dataset):
        base = SquaredLoss(L2Ball(2))
        ridge = RidgeRegularized(base, lam=0.7)
        hist = labeled_dataset.histogram()
        result = minimize_loss(ridge, hist)
        assert result.exact
        from repro.optimize.gradient_descent import projected_gradient_descent
        iterative = projected_gradient_descent(
            lambda t: ridge.gradient_on(t, hist), ridge.domain,
            steps=5000, lipschitz=2.0, strong_convexity=0.7,
        )
        assert result.value <= ridge.loss_on(iterative, hist) + 1e-6

    def test_no_closed_form_for_logistic_base(self, labeled_dataset):
        ridge = RidgeRegularized(LogisticLoss(L2Ball(2)), lam=0.5)
        assert ridge.exact_minimizer(labeled_dataset.histogram()) is None

    def test_regularization_shrinks_solution(self, labeled_dataset):
        base = SquaredLoss(L2Ball(2))
        hist = labeled_dataset.histogram()
        plain = minimize_loss(base, hist).theta
        heavy = minimize_loss(RidgeRegularized(base, lam=50.0), hist).theta
        assert np.linalg.norm(heavy) < np.linalg.norm(plain) + 1e-9
        assert np.linalg.norm(heavy) < 0.1

    def test_lipschitz_bound_accounts_for_penalty(self):
        base = SquaredLoss(L2Ball(2))
        ridge = RidgeRegularized(base, lam=1.0)
        # base L = 1, lam * radius = 1 -> 2.
        assert ridge.lipschitz_bound == pytest.approx(2.0)

    def test_convexity_check(self, labeled_ball_universe):
        ridge = RidgeRegularized(SquaredLoss(L2Ball(2)), lam=0.5)
        assert ridge.check_convexity(labeled_ball_universe, samples=32, rng=0)
