"""Tests for the robust/extended losses (pinball, smoothed hinge, exp)."""

import numpy as np
import pytest

from repro.data.universe import Universe
from repro.exceptions import LossSpecificationError
from repro.losses.robust import (
    ExponentialLoss,
    PinballLoss,
    SmoothedHingeLoss,
)
from repro.optimize.minimize import minimize_loss
from repro.optimize.projections import L2Ball


def single_point_universe(x, y):
    return Universe(np.array([x], dtype=float), labels=np.array([y]))


class TestPinballLoss:
    def test_asymmetric_values(self):
        universe = single_point_universe([1.0, 0.0], 0.0)
        loss = PinballLoss(L2Ball(2), tau=0.9)
        over = loss.values(np.array([0.5, 0.0]), universe)   # residual +0.5
        under = loss.values(np.array([-0.5, 0.0]), universe)  # residual -0.5
        # High tau: underprediction is expensive, overprediction cheap.
        assert over[0] == pytest.approx(0.1 * 0.5)
        assert under[0] == pytest.approx(0.9 * 0.5)

    def test_median_special_case(self):
        universe = single_point_universe([1.0, 0.0], 0.3)
        loss = PinballLoss(L2Ball(2), tau=0.5)
        value = loss.values(np.array([0.8, 0.0]), universe)
        assert value[0] == pytest.approx(0.25)  # 0.5 * |0.5|

    def test_lipschitz_declared_matches(self, labeled_ball_universe):
        loss = PinballLoss(L2Ball(2), tau=0.8)
        observed = loss.max_gradient_norm(labeled_ball_universe, samples=32,
                                          rng=0)
        assert observed <= loss.lipschitz_bound + 1e-9
        assert loss.lipschitz_bound == pytest.approx(0.8)

    def test_convexity(self, labeled_ball_universe):
        for tau in (0.1, 0.5, 0.9):
            loss = PinballLoss(L2Ball(2), tau=tau)
            assert loss.check_convexity(labeled_ball_universe, samples=32,
                                        rng=0)

    def test_quantile_recovery(self):
        """Minimizing pinball over a 1-D offset recovers the tau-quantile."""
        rng = np.random.default_rng(0)
        labels = np.sort(rng.uniform(-1, 1, size=201))
        universe = Universe(np.ones((201, 1)), labels=labels)
        from repro.data.dataset import Dataset
        dataset = Dataset(universe, np.arange(201))
        for tau in (0.25, 0.5, 0.75):
            loss = PinballLoss(L2Ball(1, radius=1.5), tau=tau)
            theta = minimize_loss(loss, dataset.histogram(),
                                  steps=4000).theta
            assert theta[0] == pytest.approx(
                np.quantile(labels, tau), abs=0.05
            )

    def test_rejects_tau_one(self):
        with pytest.raises(LossSpecificationError):
            PinballLoss(L2Ball(2), tau=1.0)


class TestSmoothedHingeLoss:
    def test_three_regimes(self):
        universe = single_point_universe([1.0, 0.0], 1.0)
        loss = SmoothedHingeLoss(L2Ball(2, radius=5.0), gamma=0.5)
        # m >= 1: zero.
        assert loss.values(np.array([2.0, 0.0]), universe)[0] == 0.0
        # Quadratic zone at m = 0.75: (0.25)^2 / 1.0.
        assert loss.values(np.array([0.75, 0.0]), universe)[0] == \
            pytest.approx(0.0625)
        # Linear zone at m = 0: 1 - 0 - 0.25.
        assert loss.values(np.array([0.0, 0.0]), universe)[0] == \
            pytest.approx(0.75)

    def test_continuity_at_boundaries(self):
        universe = single_point_universe([1.0, 0.0], 1.0)
        loss = SmoothedHingeLoss(L2Ball(2, radius=5.0), gamma=0.4)
        for boundary in (1.0, 0.6):
            below = loss.values(np.array([boundary - 1e-9, 0.0]), universe)[0]
            above = loss.values(np.array([boundary + 1e-9, 0.0]), universe)[0]
            assert below == pytest.approx(above, abs=1e-6)

    def test_gradient_finite_difference(self, labeled_ball_universe,
                                        labeled_dataset):
        loss = SmoothedHingeLoss(L2Ball(2), gamma=0.3)
        theta = np.array([0.2, -0.1])
        hist = labeled_dataset.histogram()
        grad = loss.gradient_on(theta, hist)
        eps = 1e-6
        for i in range(2):
            shift = np.zeros(2)
            shift[i] = eps
            numeric = (loss.loss_on(theta + shift, hist)
                       - loss.loss_on(theta - shift, hist)) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, abs=1e-5)

    def test_lipschitz(self, labeled_ball_universe):
        loss = SmoothedHingeLoss(L2Ball(2), gamma=0.5)
        observed = loss.max_gradient_norm(labeled_ball_universe, samples=32,
                                          rng=0)
        assert observed <= 1.0 + 1e-9

    def test_convexity(self, labeled_ball_universe):
        loss = SmoothedHingeLoss(L2Ball(2), gamma=0.5)
        assert loss.check_convexity(labeled_ball_universe, samples=48, rng=0)

    def test_rejects_bad_labels(self):
        universe = single_point_universe([1.0, 0.0], 0.0)
        loss = SmoothedHingeLoss(L2Ball(2))
        with pytest.raises(LossSpecificationError):
            loss.values(np.zeros(2), universe)


class TestExponentialLoss:
    def test_value_in_clamp_region(self):
        universe = single_point_universe([1.0, 0.0], 1.0)
        loss = ExponentialLoss(L2Ball(2), clamp=1.0)
        value = loss.values(np.array([0.5, 0.0]), universe)[0]
        assert value == pytest.approx(np.exp(-0.5))

    def test_lipschitz_on_unit_setup(self, labeled_ball_universe):
        """On the standard unit-ball setup the clamp is inactive and the
        gradient stays within the declared e^clamp bound."""
        loss = ExponentialLoss(L2Ball(2), clamp=1.0)
        observed = loss.max_gradient_norm(labeled_ball_universe, samples=48,
                                          rng=0)
        assert observed <= np.e + 1e-9

    def test_convexity(self, labeled_ball_universe):
        loss = ExponentialLoss(L2Ball(2), clamp=1.0)
        assert loss.check_convexity(labeled_ball_universe, samples=48, rng=0)

    def test_minimizer_aligns_with_signal(self, classification_task):
        loss = ExponentialLoss(L2Ball(classification_task.universe.dim))
        hist = classification_task.dataset.histogram()
        result = minimize_loss(loss, hist, steps=600)
        cosine = (result.theta @ classification_task.theta_star
                  / max(np.linalg.norm(result.theta), 1e-12))
        assert cosine > 0.7

    def test_scale_bound_usable_by_pmw(self, labeled_ball_universe):
        loss = ExponentialLoss(L2Ball(2), clamp=1.0)
        assert loss.scale_bound() == pytest.approx(2.0 * np.e)


class TestInsidePMW:
    def test_mixed_robust_family_end_to_end(self):
        """The mechanism is loss-agnostic: run a mixed robust family.

        Uses a larger n because the exponential loss inflates the family
        scale S (hence the sparse-vector sensitivity) by a factor of e.
        """
        from repro.core.pmw_cm import PrivateMWConvex
        from repro.data.synthetic import make_classification_dataset
        from repro.erm.noisy_sgd import NoisyGradientDescentOracle
        from repro.core.accuracy import answer_error
        from repro.losses.scaling import family_scale_bound

        task = make_classification_dataset(n=40_000, d=3, universe_size=60,
                                           rng=3)
        universe = task.universe
        losses = [
            SmoothedHingeLoss(L2Ball(universe.dim), gamma=0.5),
            PinballLoss(L2Ball(universe.dim), tau=0.5),
            ExponentialLoss(L2Ball(universe.dim), clamp=1.0),
        ]
        scale = family_scale_bound(losses)
        oracle = NoisyGradientDescentOracle(epsilon=1.0, delta=1e-6,
                                            steps=30)
        mechanism = PrivateMWConvex(
            task.dataset, oracle, scale=scale, alpha=0.3,
            epsilon=1.0, delta=1e-6, schedule="calibrated", max_updates=10,
            solver_steps=250, rng=0,
        )
        answers = mechanism.answer_all(losses, on_halt="hypothesis")
        data = task.dataset.histogram()
        for loss, answer in zip(losses, answers):
            assert answer_error(loss, data, answer.theta,
                                solver_steps=400) <= 0.45
