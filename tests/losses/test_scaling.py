"""Tests for the scale parameter S and family validation."""

import pytest

from repro.exceptions import LossSpecificationError
from repro.losses.logistic import LogisticLoss
from repro.losses.quadratic import QuadraticLoss
from repro.losses.scaling import (
    empirical_value_width,
    family_scale_bound,
    validate_family,
)
from repro.optimize.projections import L2Ball


class TestFamilyScaleBound:
    def test_max_over_family(self, labeled_ball_universe):
        logistic = LogisticLoss(L2Ball(2))       # S <= 2
        quadratic = QuadraticLoss(L2Ball(2))     # S <= 4
        assert family_scale_bound([logistic, quadratic]) == pytest.approx(4.0)

    def test_empty_family_rejected(self):
        with pytest.raises(LossSpecificationError):
            family_scale_bound([])


class TestValueWidth:
    def test_width_within_scale_bound(self, labeled_ball_universe):
        """Section 3.4.2: the per-x value range has width <= S."""
        loss = LogisticLoss(L2Ball(2))
        width = empirical_value_width(loss, labeled_ball_universe,
                                      samples=64, rng=0)
        assert width <= loss.scale_bound() + 1e-9

    def test_width_positive_for_nonconstant_loss(self, labeled_ball_universe):
        loss = LogisticLoss(L2Ball(2))
        width = empirical_value_width(loss, labeled_ball_universe,
                                      samples=32, rng=0)
        assert width > 0.0


class TestValidateFamily:
    def test_valid_family_passes(self, labeled_ball_universe):
        losses = [LogisticLoss(L2Ball(2)), QuadraticLoss(L2Ball(2))]
        validate_family(losses, labeled_ball_universe, samples=16, rng=0)

    def test_underdeclared_lipschitz_caught(self, labeled_ball_universe):
        loss = LogisticLoss(L2Ball(2))
        loss.lipschitz_bound = 1e-6  # plainly false
        with pytest.raises(LossSpecificationError, match="Lipschitz"):
            validate_family([loss], labeled_ball_universe, samples=32, rng=0)

    def test_overdeclared_strong_convexity_caught(self, labeled_ball_universe):
        loss = LogisticLoss(L2Ball(2))
        loss.strong_convexity = 5.0
        with pytest.raises(LossSpecificationError, match="convexity"):
            validate_family([loss], labeled_ball_universe, samples=64, rng=0)
