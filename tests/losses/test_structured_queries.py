"""Tests for marginal / threshold / interval query families."""

import numpy as np
import pytest

from repro.data.builders import binary_cube, interval_grid, signed_cube
from repro.data.dataset import Dataset
from repro.exceptions import ValidationError
from repro.losses.structured_queries import (
    interval_queries,
    marginal_queries,
    threshold_queries,
)


class TestMarginals:
    def test_family_size(self):
        universe = binary_cube(4)
        queries = marginal_queries(universe, width=2)
        assert len(queries) == 6 * 4  # C(4,2) * 2^2

    def test_one_way_marginal_answer(self):
        universe = binary_cube(3)
        dataset = Dataset(universe, np.array([0, 7, 7, 7]))  # 000 and 111
        queries = marginal_queries(universe, width=1)
        by_name = {q.name: q for q in queries}
        hist = dataset.histogram()
        assert by_name["marginal[x0=1]"].answer(hist) == pytest.approx(0.75)
        assert by_name["marginal[x0=0]"].answer(hist) == pytest.approx(0.25)

    def test_complementary_patterns_sum_to_one(self):
        universe = binary_cube(3)
        dataset = Dataset.uniform_random(universe, 200, rng=0)
        hist = dataset.histogram()
        queries = {q.name: q for q in marginal_queries(universe, width=1)}
        for axis in range(3):
            total = (queries[f"marginal[x{axis}=0]"].answer(hist)
                     + queries[f"marginal[x{axis}=1]"].answer(hist))
            assert total == pytest.approx(1.0)

    def test_works_on_signed_cube(self):
        universe = signed_cube(3)
        queries = marginal_queries(universe, width=1)
        assert len(queries) == 6
        for query in queries:
            assert set(np.unique(query.table)) <= {0.0, 1.0}

    def test_limit_samples_family(self):
        universe = binary_cube(5)
        queries = marginal_queries(universe, width=3, limit=10, rng=0)
        assert len(queries) == 10
        assert len({q.name for q in queries}) == 10

    def test_full_width_marginal_is_point_query(self):
        universe = binary_cube(3)
        queries = marginal_queries(universe, width=3)
        for query in queries:
            assert query.table.sum() == pytest.approx(1.0)

    def test_rejects_non_binary_universe(self):
        universe = interval_grid(5)
        with pytest.raises(ValidationError, match="binary"):
            marginal_queries(universe, width=1)

    def test_rejects_bad_width(self):
        with pytest.raises(ValidationError):
            marginal_queries(binary_cube(3), width=4)


class TestThresholds:
    def test_all_thresholds(self):
        universe = interval_grid(9)
        queries = threshold_queries(universe)
        assert len(queries) == 9

    def test_monotone_answers(self):
        universe = interval_grid(15)
        dataset = Dataset.uniform_random(universe, 500, rng=1)
        hist = dataset.histogram()
        answers = [q.answer(hist) for q in threshold_queries(universe)]
        assert answers == sorted(answers)
        assert answers[-1] == pytest.approx(1.0)

    def test_count_subsampling(self):
        universe = interval_grid(100)
        queries = threshold_queries(universe, count=10)
        assert len(queries) <= 10

    def test_requires_1d(self):
        with pytest.raises(ValidationError, match="1-D"):
            threshold_queries(binary_cube(2))


class TestIntervals:
    def test_count(self):
        universe = interval_grid(50)
        queries = interval_queries(universe, count=7, rng=0)
        assert len(queries) == 7

    def test_interval_answer_matches_direct_count(self):
        universe = interval_grid(21, -1.0, 1.0)
        dataset = Dataset.uniform_random(universe, 300, rng=2)
        hist = dataset.histogram()
        queries = interval_queries(universe, count=5, rng=3)
        for query in queries:
            inside = query.table[dataset.indices]
            assert query.answer(hist) == pytest.approx(inside.mean())

    def test_requires_1d(self):
        with pytest.raises(ValidationError):
            interval_queries(binary_cube(2), count=3)


class TestWithPMWLinear:
    def test_marginals_through_pmw(self):
        """End-to-end: answer all 2-way marginals of a skewed cube dataset."""
        from repro.core.pmw_linear import PrivateMWLinear

        universe = binary_cube(5)
        rng = np.random.default_rng(4)
        skew = rng.dirichlet(np.full(universe.size, 0.2))
        dataset = Dataset(universe, rng.choice(universe.size, size=40_000,
                                               p=skew))
        queries = marginal_queries(universe, width=2)
        mechanism = PrivateMWLinear(dataset, alpha=0.1, epsilon=1.0,
                                    delta=1e-6, schedule="calibrated",
                                    max_updates=20, rng=5)
        answers = mechanism.answer_all(queries, on_halt="hypothesis")
        data = dataset.histogram()
        errors = [abs(q.answer(data) - a.value)
                  for q, a in zip(queries, answers)]
        assert max(errors) <= 0.15
