"""Cross-process metrics aggregation must be *exact*.

The sharded service merges per-shard registry snapshots into one
document (:meth:`MetricsRegistry.merge_snapshot`). The claim under
test: merging N registries is indistinguishable from having recorded
everything into one registry — counters sum, histogram bucket counts
and the explicit overflow counter add bucket-wise, nothing is smeared
or resampled — including when the source registries were recorded into
concurrently.
"""

import threading

import pytest

from repro.exceptions import ValidationError
from repro.obs.registry import LogScaleHistogram, MetricsRegistry


def snapshot_by_name(snapshot: dict, kind: str) -> dict:
    return {(record["name"], tuple(sorted(record["labels"].items()))): record
            for record in snapshot[kind]}


def assert_snapshots_equal(left: dict, right: dict) -> None:
    """Exact on every integer-valued field (counters, bucket counts,
    ``count``, ``overflow``, ``max``); histogram ``total`` is a float
    *sum*, so merge order may regroup the additions — it gets an
    ulp-level tolerance instead of bitwise equality."""
    assert left["counters"] == right["counters"]
    assert left["gauges"] == right["gauges"]
    assert len(left["histograms"]) == len(right["histograms"])
    for mine, theirs in zip(left["histograms"], right["histograms"]):
        mine, theirs = dict(mine), dict(theirs)
        assert mine.pop("total") == pytest.approx(theirs.pop("total"),
                                                  rel=1e-12)
        assert mine == theirs


def record_samples(registry: MetricsRegistry, samples) -> None:
    for value in samples:
        registry.counter("requests").inc()
        registry.histogram("latency").observe(value)


class TestExactAggregation:
    def test_sum_of_shards_equals_aggregate(self):
        # Samples spanning 9 decades, plus values >= the histogram's
        # ``high`` bound so the overflow counter is exercised.
        shards = [
            [1e-6 * (i + 1) for i in range(50)],
            [0.5 * (i + 1) for i in range(50)],
            [2e4, 5e4, 1e-8, 3.0, 3.0, 3.0],
        ]
        parts = []
        for samples in shards:
            registry = MetricsRegistry()
            record_samples(registry, samples)
            parts.append(registry.snapshot())
        oracle = MetricsRegistry()
        for samples in shards:
            record_samples(oracle, samples)

        merged = MetricsRegistry()
        for part in parts:
            merged.merge_snapshot(part)
        assert_snapshots_equal(merged.snapshot(), oracle.snapshot())

    def test_histogram_buckets_and_overflow_are_preserved(self):
        left = LogScaleHistogram()
        right = LogScaleHistogram()
        for value in (1e-4, 2e-3, 5.0, 2e4):
            left.observe(value)
        for value in (1e-4, 7.7, 9e4, 8e4):
            right.observe(value)
        merged = LogScaleHistogram.from_snapshot(left.state())
        merged.merge_state(right.state())

        both = LogScaleHistogram()
        for value in (1e-4, 2e-3, 5.0, 2e4, 1e-4, 7.7, 9e4, 8e4):
            both.observe(value)
        mine, theirs = merged.state(), both.state()
        assert mine.pop("total") == pytest.approx(theirs.pop("total"),
                                                  rel=1e-12)
        assert mine == theirs
        assert merged.overflow == 3

    def test_merge_is_associative_across_order(self):
        parts = []
        for seed in range(4):
            registry = MetricsRegistry()
            record_samples(registry,
                           [1e-5 * (seed + 1) * (i + 1) for i in range(20)])
            parts.append(registry.snapshot())
        forward = MetricsRegistry()
        for part in parts:
            forward.merge_snapshot(part)
        backward = MetricsRegistry()
        for part in reversed(parts):
            backward.merge_snapshot(part)
        assert_snapshots_equal(forward.snapshot(), backward.snapshot())


class TestConcurrentRecording:
    def test_concurrent_shard_recording_merges_exactly(self):
        """Four registries hammered by four threads each, then merged:
        the merged totals must equal the known ground truth — no sample
        lost to a race either during recording or during the merge."""
        registries = [MetricsRegistry() for _ in range(4)]
        per_thread = 500
        threads = []

        def hammer(registry, base):
            for index in range(per_thread):
                registry.counter("requests").inc()
                registry.counter("work", {"kind": "batch"}).inc(2)
                registry.histogram("latency").observe(base * (index + 1))

        for shard_index, registry in enumerate(registries):
            for thread_index in range(4):
                threads.append(threading.Thread(
                    target=hammer,
                    args=(registry, 1e-6 * (shard_index + thread_index + 1))))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        merged = MetricsRegistry()
        for registry in registries:
            merged.merge_snapshot(registry.snapshot())
        total = len(registries) * 4 * per_thread
        counters = snapshot_by_name(merged.snapshot(), "counters")
        assert counters[("requests", ())]["value"] == total
        assert counters[("work", (("kind", "batch"),))]["value"] == 2 * total
        histograms = snapshot_by_name(merged.snapshot(), "histograms")
        record = histograms[("latency", ())]
        assert record["count"] == total
        assert sum(count for _, count in record["counts"]) == total
        assert record["overflow"] == 0


class TestMergeSemantics:
    def test_labels_keep_shard_series_apart(self):
        parts = []
        for shard in ("shard-00", "shard-01"):
            registry = MetricsRegistry()
            registry.counter("requests").inc(3)
            registry.gauge("queue_depth").set(7)
            parts.append((shard, registry.snapshot()))
        merged = MetricsRegistry()
        for shard, part in parts:
            merged.merge_snapshot(part, labels={"shard": shard})
        counters = snapshot_by_name(merged.snapshot(), "counters")
        assert counters[("requests", (("shard", "shard-00"),))]["value"] == 3
        assert counters[("requests", (("shard", "shard-01"),))]["value"] == 3
        gauges = snapshot_by_name(merged.snapshot(), "gauges")
        assert gauges[("queue_depth", (("shard", "shard-01"),))]["value"] == 7

    def test_incoming_label_wins_over_extra_label(self):
        source = MetricsRegistry()
        source.counter("requests", {"shard": "original"}).inc(5)
        merged = MetricsRegistry()
        merged.merge_snapshot(source.snapshot(),
                              labels={"shard": "overridden"})
        counters = snapshot_by_name(merged.snapshot(), "counters")
        assert ("requests", (("shard", "original"),)) in counters

    def test_gauges_take_last_merged_value(self):
        first = MetricsRegistry()
        first.gauge("alive").set(1)
        second = MetricsRegistry()
        second.gauge("alive").set(0)
        merged = MetricsRegistry()
        merged.merge_snapshot(first.snapshot())
        merged.merge_snapshot(second.snapshot())
        gauges = snapshot_by_name(merged.snapshot(), "gauges")
        assert gauges[("alive", ())]["value"] == 0

    def test_layout_mismatch_raises(self):
        coarse = MetricsRegistry()
        coarse.histogram("latency", buckets_per_decade=5).observe(0.1)
        fine = MetricsRegistry()
        fine.histogram("latency").observe(0.1)
        with pytest.raises(ValidationError):
            fine.merge_snapshot(coarse.snapshot())

    def test_non_snapshot_document_raises(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().merge_snapshot({"format": "bogus"})
