"""MetricsRegistry: counters, gauges, log-scale histograms, exposition.

Covers the PR's registry contracts: snapshot -> JSON -> restore
round-trip equality, Prometheus text-exposition validity (cumulative
monotone buckets, ``+Inf`` equals ``_count``), the histogram tail fix
(log-scale edges past the old 3 276.8 ms saturation point, explicit
overflow, interpolated quantiles with the documented bias bound), and
lost-increment-free concurrent recording.
"""

from __future__ import annotations

import json
import math
import re
import threading

import pytest

from repro.exceptions import ValidationError
from repro.obs import LogScaleHistogram, MetricsRegistry


class TestCountersAndGauges:
    def test_counter_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests", {"kind": "ok"})
        counter.inc()
        counter.inc(4)
        assert registry.counter("requests", {"kind": "ok"}) is counter
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("requests").inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 8

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.counter("c", {"x": "1", "y": "2"})
        b = registry.counter("c", {"y": "2", "x": "1"})
        assert a is b

    def test_name_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ValidationError):
            registry.gauge("metric")

    def test_invalid_name_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("1bad name")

    def test_get_missing_returns_none(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None


class TestLogScaleHistogram:
    def test_empty_quantile_is_zero(self):
        histogram = LogScaleHistogram()
        assert histogram.quantile(0.5) == 0.0

    def test_quantile_bounds_validated(self):
        histogram = LogScaleHistogram()
        with pytest.raises(ValidationError):
            histogram.quantile(1.5)
        with pytest.raises(ValidationError):
            histogram.quantile(-0.1)

    def test_interpolated_quantile_relative_error_bound(self):
        """The documented bias bound: the interpolated quantile shares a
        bucket with the true order statistic, so relative error is at
        most the edge ratio minus one (12.2% at 20/decade)."""
        histogram = LogScaleHistogram()
        samples = [1e-6, 3.7e-5, 4.2e-4, 0.0013, 0.0088, 0.071, 0.44,
                   2.9, 17.0, 240.0]
        for value in samples:
            histogram.observe(value)
        bound = 10.0 ** (1.0 / histogram.buckets_per_decade) - 1.0
        ordered = sorted(samples)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
            rank = max(int(math.ceil(q * len(ordered))), 1)
            true_value = ordered[rank - 1]
            estimate = histogram.quantile(q)
            assert abs(estimate - true_value) / true_value <= bound + 1e-9

    def test_tail_beyond_old_saturation_point(self):
        """Durations past the old fixed table's 3 276.8 ms ceiling land
        in real buckets — p99 stays finite and below the top edge."""
        histogram = LogScaleHistogram()
        for value in (5.0, 60.0, 900.0, 3500.0):  # up to ~58 minutes
            histogram.observe(value)
        assert histogram.overflow == 0
        assert histogram.quantile(0.99) < histogram.top_edge
        assert histogram.quantile(0.99) >= 900.0 * (1 - 0.13)

    def test_overflow_explicit(self):
        histogram = LogScaleHistogram()
        histogram.observe(0.001)
        histogram.observe(histogram.high)       # at high => overflow
        histogram.observe(histogram.high * 10)
        assert histogram.overflow == 2
        assert histogram.count == 3
        # Quantiles landing in the overflow region report observed max.
        assert histogram.quantile(0.99) == histogram.max

    def test_negative_clamps_to_zero(self):
        histogram = LogScaleHistogram()
        histogram.observe(-1.0)
        assert histogram.count == 1
        assert histogram.max == 0.0

    def test_range_covers_100ns_to_over_an_hour(self):
        histogram = LogScaleHistogram()
        assert histogram.low <= 1e-7
        assert histogram.top_edge >= 3600.0


class TestSnapshotRoundTrip:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("gw.submitted").inc(12)
        registry.counter("gw.shed", {"kind": "overload"}).inc(3)
        registry.gauge("depth", {"session": "s1"}).set(4)
        histogram = registry.histogram("latency", {"stage": "e2e"})
        for value in (1e-6, 0.004, 0.25, 7.0, 1e9):
            histogram.observe(value)
        return registry

    def test_snapshot_json_restore_equality(self):
        registry = self.build()
        text = registry.to_json()
        restored = MetricsRegistry.from_snapshot(json.loads(text))
        assert restored.snapshot() == registry.snapshot()
        assert restored.to_json() == text

    def test_snapshot_is_pure_json_and_deterministic(self):
        registry = self.build()
        snapshot = registry.snapshot()
        assert snapshot["format"] == "repro.obs.registry/v1"
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert registry.snapshot() == snapshot

    def test_restored_histogram_preserves_tail_state(self):
        registry = self.build()
        restored = MetricsRegistry.from_snapshot(registry.snapshot())
        original = registry.get("latency", {"stage": "e2e"})
        clone = restored.get("latency", {"stage": "e2e"})
        assert clone.count == original.count
        assert clone.overflow == original.overflow == 1
        assert clone.max == original.max
        assert clone.quantile(0.5) == original.quantile(0.5)

    def test_from_snapshot_rejects_foreign_format(self):
        with pytest.raises(ValidationError):
            MetricsRegistry.from_snapshot({"format": "something/else"})

    def test_to_json_writes_file(self, tmp_path):
        registry = self.build()
        path = tmp_path / "metrics.json"
        registry.to_json(path)
        assert json.loads(path.read_text())["format"] == \
            "repro.obs.registry/v1"


class TestPrometheusExposition:
    def test_families_typed_and_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("gateway.shed", {"kind": "overload"}).inc(2)
        registry.gauge("budget.epsilon-spent", {"session": "a"}).set(0.5)
        text = registry.render_prometheus()
        assert "# TYPE gateway_shed counter" in text
        assert 'gateway_shed{kind="overload"} 2' in text
        assert "# TYPE budget_epsilon_spent gauge" in text
        assert 'budget_epsilon_spent{session="a"} 0.5' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", {"k": 'he said "hi"\\\n'}).inc()
        text = registry.render_prometheus()
        line = [ln for ln in text.splitlines() if ln.startswith("c{")][0]
        assert '\\"' in line and "\\\\" in line and "\\n" in line
        assert "\n" not in line

    def test_histogram_buckets_cumulative_and_inf_equals_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in (0.001, 0.001, 0.02, 0.5, 1e9):
            histogram.observe(value)
        text = registry.render_prometheus()
        pattern = re.compile(r'lat_bucket\{le="([^"]+)"\} (\d+)')
        buckets = [(le, int(count))
                   for le, count in pattern.findall(text)]
        assert buckets, "no bucket lines rendered"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        edges = [float(le) for le, _ in buckets[:-1]]
        assert edges == sorted(edges), "bucket edges must ascend"
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 5  # +Inf includes the overflow sample
        assert re.search(r"lat_count 5\b", text)
        assert "# TYPE lat histogram" in text

    def test_every_line_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.gauge("c-d", {"x": "1"}).set(2)
        registry.histogram("e").observe(0.1)
        sample = re.compile(
            r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[^{}]*\})? -?[0-9+.eEinf]+$")
        for line in registry.render_prometheus().splitlines():
            assert line.startswith("# TYPE ") or sample.match(line), line


class TestConcurrentRecording:
    def test_no_lost_increments_across_threads(self):
        """8 threads hammer one counter, one gauge, and one histogram
        concurrently; every increment and observation must survive."""
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        gauge = registry.gauge("level")
        histogram = registry.histogram("lat")
        threads_n, per_thread = 8, 2_000

        def hammer(seed):
            for index in range(per_thread):
                counter.inc()
                gauge.inc()
                histogram.observe((seed + index % 7) * 1e-4)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = threads_n * per_thread
        assert counter.value == expected
        assert gauge.value == expected
        assert histogram.count == expected
        assert sum(histogram.counts) + histogram.overflow == expected

    def test_concurrent_get_or_create_yields_one_metric(self):
        registry = MetricsRegistry()
        seen = []

        def create():
            seen.append(registry.counter("shared", {"k": "v"}))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(metric is seen[0] for metric in seen)
