"""Domain telemetry: budget gauges, mechanism state, cache counters.

Covers the PR's telemetry contracts: per-session budget gauges bitwise
equal to the accountant's journal-ordered sums — including after a
checkpoint/restore cycle, where the restored accountant must replay to
the identical float — SVT and hypothesis-version gauges tracking the
mechanism, and answer-cache counters keyed by ``cache_policy``
(stale misses separated from cold misses).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.builders import signed_cube
from repro.data.dataset import Dataset
from repro.dp.accountant import PrivacyAccountant
from repro.losses.families import random_quadratic_family
from repro.obs import (
    MetricsRegistry,
    publish_accountant,
    publish_service,
    publish_session,
)
from repro.serve.checkpoint import Checkpointer
from repro.serve.ledger import replay_ledger
from repro.serve.service import PMWService

SESSION_PARAMS = dict(
    oracle="non-private", scale=4.0, alpha=0.35, epsilon=2.0, delta=1e-6,
    max_updates=4, solver_steps=30, noise_multiplier=0.0,
)


@pytest.fixture
def dataset():
    """80% of mass on one vertex: quadratic queries force MW updates
    when ``noise_multiplier=0`` (same construction as tests/serve)."""
    universe = signed_cube(3)
    rng = np.random.default_rng(11)
    heavy = int(0.8 * 260)
    indices = np.concatenate([
        np.zeros(heavy, dtype=int),
        rng.choice(universe.size, size=260 - heavy),
    ])
    return Dataset(universe, indices)


def drive(service, sid, count=6, seed=5):
    universe = service.datasets["default"].universe
    for query in random_quadratic_family(universe, count, rng=seed):
        service.submit(sid, query, on_halt="hypothesis")


class TestAccountantGauges:
    def test_gauges_are_bitwise_accountant_sums(self):
        registry = MetricsRegistry()
        accountant = PrivacyAccountant(epsilon_budget=3.0)
        for epsilon in (0.1, 0.2, 0.30000000000000004, 0.1):
            accountant.spend(epsilon, 1e-7, label="q")
        publish_accountant(registry, "s1", accountant)
        labels = {"session": "s1"}
        expected = sum(s.epsilon for s in accountant.spends)
        assert registry.get("budget.epsilon_spent", labels).value \
            == expected
        assert registry.get("budget.num_spends", labels).value == 4
        assert registry.get("budget.epsilon_budget", labels).value == 3.0
        assert registry.get("budget.epsilon_remaining", labels).value \
            == accountant.remaining_epsilon()

    def test_unbudgeted_accountant_omits_remaining(self):
        registry = MetricsRegistry()
        accountant = PrivacyAccountant()
        accountant.spend(0.5, 0.0)
        publish_accountant(registry, "s1", accountant)
        assert registry.get("budget.epsilon_remaining",
                            {"session": "s1"}) is None

    def test_empty_accountant_publishes_zero(self):
        registry = MetricsRegistry()
        publish_accountant(registry, "s0", PrivacyAccountant())
        assert registry.get("budget.epsilon_spent",
                            {"session": "s0"}).value == 0.0

    def test_republish_refreshes_in_place(self):
        registry = MetricsRegistry()
        accountant = PrivacyAccountant()
        accountant.spend(0.25, 0.0)
        publish_accountant(registry, "s1", accountant)
        accountant.spend(0.5, 0.0)
        publish_accountant(registry, "s1", accountant)
        labels = {"session": "s1"}
        assert registry.get("budget.num_spends", labels).value == 2
        assert registry.get("budget.epsilon_spent", labels).value \
            == sum(s.epsilon for s in accountant.spends)


class TestSessionGauges:
    def test_mechanism_state_published(self, dataset):
        registry = MetricsRegistry()
        service = PMWService(dataset, rng=np.random.default_rng(3))
        sid = service.open_session("pmw-convex", **SESSION_PARAMS)
        drive(service, sid)
        session = service.session(sid)
        publish_session(registry, session)
        labels = {"session": sid}
        mechanism = session.mechanism
        assert registry.get("mechanism.svt_hard_queries", labels).value \
            == mechanism.svt_hard_queries
        assert registry.get("mechanism.svt_queries_asked", labels).value \
            == mechanism.svt_queries_asked
        assert registry.get("mechanism.update_rounds", labels).value \
            == mechanism.updates_performed
        assert registry.get("mechanism.hypothesis_version", labels).value \
            == session.hypothesis_version
        assert registry.get("mechanism.halted", labels).value \
            == int(session.halted)
        assert registry.get("session.queries_served", labels).value \
            == session.queries_served
        assert registry.get("mechanism.update_rounds", labels).value > 0
        service.close()

    def test_budget_gauge_matches_live_accountant_bitwise(self, dataset):
        registry = MetricsRegistry()
        service = PMWService(dataset, rng=np.random.default_rng(3))
        sid = service.open_session("pmw-convex", **SESSION_PARAMS)
        drive(service, sid)
        session = service.session(sid)
        publish_session(registry, session)
        expected = sum(s.epsilon for s in session.accountant.spends)
        assert registry.get("budget.epsilon_spent",
                            {"session": sid}).value == expected
        service.close()


class TestCacheGauges:
    def test_counters_labelled_by_policy(self, dataset):
        registry = MetricsRegistry()
        service = PMWService(dataset, cache_policy="track-hypothesis",
                             rng=np.random.default_rng(4))
        sid = service.open_session("pmw-convex", **SESSION_PARAMS)
        universe = dataset.universe
        queries = list(random_quadratic_family(universe, 4, rng=9))
        for query in queries:
            service.submit(sid, query, on_halt="hypothesis")
        service.submit(sid, queries[0], on_halt="hypothesis")  # replay
        publish_service(registry, service)
        labels = {"policy": "track-hypothesis"}
        stats = service.cache.stats()
        assert registry.get("cache.hits", labels).value == stats.hits
        assert registry.get("cache.misses", labels).value == stats.misses
        assert registry.get("cache.stale_misses", labels).value \
            == stats.stale_misses
        assert registry.get("cache.entries", labels).value == stats.entries
        assert stats.hits > 0
        service.close()

    def test_stale_misses_counted_separately(self):
        from repro.serve.cache import AnswerCache, CachedAnswer

        cache = AnswerCache()
        cache.put("s", "fp", CachedAnswer(
            value=1.0, source="hypothesis", query_index=None,
            hypothesis_version=1))
        assert cache.get("s", "fp", version=1) is not None
        assert cache.get("s", "fp", version=2) is None   # stale
        assert cache.get("s", "other", version=2) is None  # cold
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.stale_misses == 1
        cache.clear()
        assert cache.stats().stale_misses == 0


class TestLedgerAndRestoreConsistency:
    def test_gauges_bitwise_equal_ledger_replay(self, dataset, tmp_path):
        registry = MetricsRegistry()
        ledger_path = tmp_path / "budget.jsonl"
        service = PMWService(dataset, ledger_path=ledger_path,
                             rng=np.random.default_rng(5))
        sids = [service.open_session("pmw-convex", analyst=f"a{i}",
                                     **SESSION_PARAMS)
                for i in range(2)]
        for index, sid in enumerate(sids):
            drive(service, sid, seed=20 + index)
        publish_service(registry, service)
        replayed = replay_ledger(ledger_path)
        for sid in sids:
            gauge = registry.get("budget.epsilon_spent",
                                 {"session": sid}).value
            assert gauge == sum(record["epsilon"] for record
                                in replayed.spends.get(sid, []))
            assert gauge > 0
        assert registry.get("ledger.last_seq").value \
            == service.ledger.last_seq
        service.close()

    def test_gauges_survive_checkpoint_restore_bitwise(self, dataset,
                                                       tmp_path):
        """The acceptance criterion: budget gauges published from a
        *restored* service are bitwise identical to the pre-crash ones
        — restore replays the same journal-ordered spends, so the float
        sums cannot drift."""
        ledger_path = tmp_path / "budget.jsonl"
        directory = tmp_path / "checkpoints"
        service = PMWService(dataset, ledger_path=ledger_path,
                             rng=np.random.default_rng(6))
        sid = service.open_session("pmw-convex", **SESSION_PARAMS)
        drive(service, sid, seed=31)
        checkpointer = Checkpointer(service, directory)
        checkpointer.checkpoint()
        drive(service, sid, count=3, seed=32)  # post-checkpoint suffix

        before = MetricsRegistry()
        publish_service(before, service)
        service.close()

        restored = Checkpointer.restore(dataset, directory,
                                        ledger_path=ledger_path)
        after = MetricsRegistry()
        publish_service(after, restored)
        labels = {"session": sid}
        for gauge in ("budget.epsilon_spent", "budget.delta_spent",
                      "budget.num_spends"):
            assert after.get(gauge, labels).value \
                == before.get(gauge, labels).value, gauge
        assert after.get("mechanism.hypothesis_version", labels).value \
            == before.get("mechanism.hypothesis_version", labels).value
        restored.close()
