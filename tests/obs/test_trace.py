"""Tracing: span nesting, trace-id propagation, sinks, hot-path no-ops.

Covers the PR's tracing contracts: nesting and ordering of spans within
one trace (including through the gateway's coalesced batches, where one
worker executes several analysts' requests under the oldest request's
trace), JSONL sink validity, span-duration histograms on the registry,
and the off-by-default no-op fast path.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.data.builders import signed_cube
from repro.data.dataset import Dataset
from repro.losses.families import random_quadratic_family
from repro.obs import MetricsRegistry, NOOP_SPAN, Tracer, trace
from repro.serve.service import PMWService

import numpy as np


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    """Every test starts and ends with tracing uninstalled."""
    trace.uninstall()
    yield
    trace.uninstall()


class TestSpanBasics:
    def test_module_span_is_noop_when_uninstalled(self):
        assert trace.span("anything") is NOOP_SPAN
        assert trace.new_trace_id() is None
        assert trace.active() is None

    def test_nesting_parent_and_trace_inheritance(self):
        tracer = trace.install(registry=MetricsRegistry())
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        records = tracer.finished()
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["parent_id"] == records[1]["span_id"]

    def test_explicit_trace_id_roots_a_trace(self):
        tracer = trace.install()
        tid = tracer.new_trace_id()
        with trace.span("root", trace_id=tid):
            with trace.span("child"):
                pass
        assert [r["trace_id"] for r in tracer.finished()] == [tid, tid]

    def test_sibling_order_and_durations(self):
        tracer = trace.install()
        with trace.span("parent"):
            with trace.span("first"):
                time.sleep(0.002)
            with trace.span("second"):
                pass
        spans = tracer.finished()
        by_name = {r["name"]: r for r in spans}
        assert by_name["first"]["start"] < by_name["second"]["start"]
        assert by_name["first"]["duration"] >= 0.002
        assert by_name["parent"]["duration"] >= \
            by_name["first"]["duration"]

    def test_error_recorded_and_exception_propagates(self):
        tracer = trace.install()
        with pytest.raises(KeyError):
            with trace.span("faulty"):
                raise KeyError("boom")
        assert tracer.finished()[0]["error"] == "KeyError"

    def test_attrs_land_in_record(self):
        tracer = trace.install()
        with trace.span("batch", session="s1", batch_size=3):
            pass
        assert tracer.finished()[0]["attrs"] == {"session": "s1",
                                                 "batch_size": 3}

    def test_leaked_inner_span_does_not_reparent_later_work(self):
        tracer = trace.install()
        leaked = tracer.span("leaked")
        with trace.span("outer"):
            leaked.__enter__()
            # outer exits while `leaked` is still open: the defensive
            # pop unwinds it.
        with trace.span("after") as after:
            assert after.parent_id is None

    def test_thread_local_stacks_are_independent(self):
        tracer = trace.install()
        ids = {}

        def worker(name):
            with trace.span(name) as span:
                ids[name] = (span.trace_id, span.parent_id)

        with trace.span("main-root"):
            thread = threading.Thread(target=worker, args=("other",))
            thread.start()
            thread.join()
        assert ids["other"][1] is None          # no cross-thread parent
        main_root = [r for r in tracer.finished()
                     if r["name"] == "main-root"][0]
        assert ids["other"][0] != main_root["trace_id"]


class TestSinks:
    def test_registry_histogram_per_span_name(self):
        registry = MetricsRegistry()
        trace.install(registry=registry)
        for _ in range(3):
            with trace.span("phase.solve"):
                pass
        histogram = registry.get("span.phase.solve")
        assert histogram is not None and histogram.count == 3

    def test_jsonl_sink_is_valid_and_closed_on_uninstall(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        trace.install(jsonl_path=str(path))
        with trace.span("a"):
            with trace.span("b"):
                pass
        trace.uninstall()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [record["name"] for record in lines] == ["b", "a"]
        assert lines[0]["parent_id"] == lines[1]["span_id"]

    def test_ring_buffer_bounded(self):
        tracer = trace.install(keep=4)
        for index in range(10):
            with trace.span(f"s{index}"):
                pass
        names = [r["name"] for r in tracer.finished()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_render_tree_indents_children(self):
        tracer = trace.install()
        with trace.span("root") as root:
            with trace.span("child"):
                pass
        tree = tracer.render_tree(root.trace_id)
        lines = tree.splitlines()
        assert lines[0] == f"trace {root.trace_id}"
        assert lines[1].startswith("  - root")
        assert lines[2].startswith("    - child")

    def test_install_replaces_previous_tracer(self):
        first = trace.install()
        second = trace.install()
        assert trace.active() is second
        with trace.span("x"):
            pass
        assert first.finished() == []
        assert len(second.finished()) == 1

    def test_standalone_tracer_does_not_hook_module_path(self):
        tracer = Tracer()
        with tracer.span("manual"):
            assert trace.span("not-traced") is NOOP_SPAN
        assert len(tracer.finished()) == 1


class TestGatewayPropagation:
    @pytest.fixture
    def service(self):
        universe = signed_cube(3)
        rng = np.random.default_rng(7)
        weights = rng.dirichlet(np.full(universe.size, 0.5))
        indices = rng.choice(universe.size, size=240, p=weights)
        service = PMWService(Dataset(universe, indices),
                             rng=np.random.default_rng(7))
        yield service
        service.close()

    def open_session(self, service, name):
        return service.open_session(
            "pmw-convex", analyst=name, oracle="non-private", scale=4.0,
            alpha=0.4, epsilon=2.0, delta=1e-6, max_updates=4,
            solver_steps=30, noise_multiplier=0.0)

    def queries(self, universe, count, seed):
        return list(random_quadratic_family(universe, count, rng=seed))

    def test_each_request_gets_own_trace_serially(self, service):
        tracer = trace.install()
        sid = self.open_session(service, "alice")
        queries = self.queries(service.datasets["default"].universe, 3, 1)
        with service.gateway(workers=1) as gateway:
            for query in queries:
                gateway.submit(sid, query)
        roots = [r for r in tracer.finished()
                 if r["name"] == "gateway.execute"]
        assert len(roots) >= 3
        assert len({r["trace_id"] for r in roots}) == len(roots)

    def test_span_tree_under_coalesced_batch(self, service):
        """A flooded queue coalesces into one batch: every span of the
        batch's execution nests under a single gateway.execute root
        carrying the oldest request's trace, with the riders' trace IDs
        attached as an attribute."""
        tracer = trace.install()
        sid = self.open_session(service, "bob")
        queries = self.queries(service.datasets["default"].universe, 6, 2)
        with service.gateway(workers=1, max_coalesce=16) as gateway:
            with gateway.quiesce():
                # Enqueue while quiesced so the backlog must coalesce.
                futures = [gateway.submit_async(sid, query)
                           for query in queries]
            for future in futures:
                future.result(timeout=60)

        records = tracer.finished()
        roots = [r for r in records if r["name"] == "gateway.execute"]
        coalesced = [r for r in roots
                     if r["attrs"]["batch_size"] > 1]
        assert coalesced, "backlog never coalesced"
        batch = max(coalesced, key=lambda r: r["attrs"]["batch_size"])
        riders = batch["attrs"]["coalesced_traces"]
        assert len(riders) == batch["attrs"]["batch_size"] - 1
        assert batch["trace_id"] not in riders

        # Every span recorded during the batch execution belongs to the
        # batch root's trace and (transitively) parents up to it.
        tree = {r["span_id"]: r for r in records
                if r["trace_id"] == batch["trace_id"]}
        assert batch["span_id"] in tree
        children = [r for r in tree.values()
                    if r["span_id"] != batch["span_id"]]
        assert children, "batch executed no nested spans"
        for record in children:
            walker = record
            while walker["parent_id"] is not None:
                walker = tree[walker["parent_id"]]
            assert walker["span_id"] == batch["span_id"]

        expected_phases = {"serve.plan", "session.answer",
                           "mechanism.solve", "ledger.append"}
        seen = {r["name"] for r in children}
        # The service has no ledger here; ledger.append only fires with
        # one configured. Check the mechanism path itself.
        assert {"serve.plan", "session.answer",
                "mechanism.solve"} <= seen, (expected_phases, seen)

    def test_mechanism_round_phases_ordered(self, service):
        tracer = trace.install()
        sid = self.open_session(service, "carol")
        query = self.queries(service.datasets["default"].universe, 1, 3)[0]
        with service.gateway(workers=1) as gateway:
            gateway.submit(sid, query)
        names = [r["name"] for r in tracer.finished()]
        for phase in ("mechanism.fingerprint", "mechanism.cache_probe",
                      "mechanism.solve", "mechanism.svt"):
            assert phase in names, names
        assert names.index("mechanism.cache_probe") < \
            names.index("mechanism.solve")
        assert names.index("mechanism.solve") < \
            names.index("mechanism.svt")

    def test_uninstrumented_serving_unchanged(self, service):
        """With no tracer installed, requests carry trace_id None and
        serving works identically (the inert fast path)."""
        sid = self.open_session(service, "dave")
        query = self.queries(service.datasets["default"].universe, 1, 4)[0]
        with service.gateway(workers=1) as gateway:
            result = gateway.submit(sid, query)
        assert result.value is not None
