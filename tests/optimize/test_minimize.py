"""Tests for the minimize_loss dispatcher."""

import numpy as np
import pytest

from repro.losses.logistic import LogisticLoss
from repro.losses.quadratic import QuadraticLoss
from repro.optimize.minimize import minimize_loss
from repro.optimize.projections import L2Ball


class TestDispatch:
    def test_exact_path_used_for_quadratic(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        result = minimize_loss(loss, cube_dataset.histogram())
        assert result.exact

    def test_exact_quadratic_is_projected_mean(self, cube_universe,
                                               cube_dataset):
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        hist = cube_dataset.histogram()
        result = minimize_loss(loss, hist)
        mean = cube_universe.points.T @ hist.weights
        expected = loss.domain.project(mean)
        np.testing.assert_allclose(result.theta, expected, atol=1e-12)

    def test_iterative_path_for_logistic(self, labeled_ball_universe,
                                         labeled_dataset):
        loss = LogisticLoss(L2Ball(labeled_ball_universe.dim))
        result = minimize_loss(loss, labeled_dataset.histogram(), steps=300)
        assert not result.exact
        assert np.isfinite(result.value)

    def test_iterative_near_optimal(self, classification_task):
        """PGD should approach the planted direction on separable-ish data."""
        universe = classification_task.universe
        loss = LogisticLoss(L2Ball(universe.dim))
        hist = classification_task.dataset.histogram()
        result = minimize_loss(loss, hist, steps=600)
        # The planted theta* is a feasible point; the solver must do at
        # least as well (within tolerance).
        planted_value = loss.loss_on(classification_task.theta_star, hist)
        assert result.value <= planted_value + 0.02

    def test_value_matches_theta(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        hist = cube_dataset.histogram()
        result = minimize_loss(loss, hist)
        assert result.value == pytest.approx(loss.loss_on(result.theta, hist))

    def test_result_unpacks(self, cube_universe, cube_dataset):
        loss = QuadraticLoss(L2Ball(cube_universe.dim))
        theta, value = minimize_loss(loss, cube_dataset.histogram())
        assert theta.shape == (cube_universe.dim,)
        assert isinstance(value, float)

    def test_warm_start_accepted(self, labeled_ball_universe, labeled_dataset):
        loss = LogisticLoss(L2Ball(labeled_ball_universe.dim))
        hist = labeled_dataset.histogram()
        cold = minimize_loss(loss, hist, steps=200)
        warm = minimize_loss(loss, hist, steps=200, start=cold.theta)
        assert warm.value <= cold.value + 1e-6
