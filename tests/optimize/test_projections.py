"""Tests for parameter domains and projections."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.optimize.projections import Box, L2Ball, Simplex


class TestL2Ball:
    def test_interior_point_unchanged(self):
        ball = L2Ball(3)
        theta = np.array([0.1, 0.2, 0.3])
        np.testing.assert_array_equal(ball.project(theta), theta)

    def test_exterior_point_lands_on_boundary(self):
        ball = L2Ball(2, radius=1.0)
        projected = ball.project(np.array([3.0, 4.0]))
        assert np.linalg.norm(projected) == pytest.approx(1.0)
        np.testing.assert_allclose(projected, [0.6, 0.8])

    def test_offcenter_ball(self):
        ball = L2Ball(2, radius=1.0, center=np.array([5.0, 0.0]))
        projected = ball.project(np.array([0.0, 0.0]))
        np.testing.assert_allclose(projected, [4.0, 0.0])

    def test_projection_idempotent(self):
        ball = L2Ball(4, radius=0.5)
        rng = np.random.default_rng(0)
        for _ in range(10):
            point = rng.standard_normal(4) * 3
            once = ball.project(point)
            np.testing.assert_allclose(ball.project(once), once)

    def test_projection_is_nearest_point(self):
        """The projection minimizes distance among sampled feasible points."""
        ball = L2Ball(3)
        rng = np.random.default_rng(1)
        outside = np.array([2.0, -1.0, 0.5])
        projected = ball.project(outside)
        best = np.linalg.norm(outside - projected)
        for _ in range(200):
            candidate = ball.random_point(rng)
            assert np.linalg.norm(outside - candidate) >= best - 1e-9

    def test_diameter(self):
        assert L2Ball(5, radius=2.0).diameter() == 4.0

    def test_contains(self):
        ball = L2Ball(2)
        assert ball.contains(np.array([0.5, 0.5]))
        assert not ball.contains(np.array([1.0, 1.0]))

    def test_boundary_point(self):
        ball = L2Ball(2, radius=2.0)
        point = ball.boundary_point(np.array([0.0, -3.0]))
        np.testing.assert_allclose(point, [0.0, -2.0])

    def test_boundary_point_zero_direction(self):
        ball = L2Ball(2)
        np.testing.assert_allclose(
            ball.boundary_point(np.zeros(2)), np.zeros(2)
        )

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            L2Ball(3).project(np.ones(2))

    def test_random_point_feasible(self):
        ball = L2Ball(6, radius=0.7)
        for seed in range(5):
            assert ball.contains(ball.random_point(seed), tol=1e-9)


class TestBox:
    def test_clipping(self):
        box = Box.unit(3)
        projected = box.project(np.array([-1.0, 0.5, 2.0]))
        np.testing.assert_array_equal(projected, [0.0, 0.5, 1.0])

    def test_symmetric_constructor(self):
        box = Box.symmetric(2, half_width=3.0)
        np.testing.assert_array_equal(box.lows, [-3.0, -3.0])

    def test_diameter(self):
        assert Box.unit(4).diameter() == pytest.approx(2.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValidationError):
            Box(np.array([1.0]), np.array([0.0]))

    def test_center_inside(self):
        box = Box(np.array([2.0, -1.0]), np.array([4.0, 1.0]))
        assert box.contains(box.center())


class TestSimplex:
    def test_projection_on_simplex_unchanged(self):
        simplex = Simplex(3)
        point = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(simplex.project(point), point)

    def test_projection_sums_to_one(self):
        simplex = Simplex(5)
        rng = np.random.default_rng(0)
        for _ in range(20):
            projected = simplex.project(rng.standard_normal(5))
            assert projected.sum() == pytest.approx(1.0)
            assert (projected >= -1e-12).all()

    def test_known_case(self):
        # Projecting (1, 1) onto the 2-simplex gives (0.5, 0.5).
        np.testing.assert_allclose(
            Simplex(2).project(np.array([1.0, 1.0])), [0.5, 0.5]
        )

    def test_dominant_coordinate(self):
        projected = Simplex(3).project(np.array([10.0, 0.0, 0.0]))
        np.testing.assert_allclose(projected, [1.0, 0.0, 0.0])

    def test_center_is_uniform(self):
        np.testing.assert_allclose(Simplex(4).center(), 0.25)

    def test_diameter(self):
        assert Simplex(3).diameter() == pytest.approx(np.sqrt(2))

    def test_projection_is_nearest(self):
        simplex = Simplex(4)
        rng = np.random.default_rng(2)
        outside = np.array([0.9, -0.4, 0.8, 0.1])
        projected = simplex.project(outside)
        best = np.linalg.norm(outside - projected)
        for _ in range(300):
            candidate = rng.dirichlet(np.ones(4))
            assert np.linalg.norm(outside - candidate) >= best - 1e-9
