"""Tests for projected gradient descent, Frank–Wolfe, and the exact solver."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optimize.exact import (
    minimize_quadratic_over_ball,
    minimize_scalar_convex,
)
from repro.optimize.frank_wolfe import frank_wolfe
from repro.optimize.gradient_descent import projected_gradient_descent
from repro.optimize.projections import Box, L2Ball


class TestProjectedGradientDescent:
    def test_unconstrained_quadratic(self):
        # min (theta - b)^2/2 over a big ball: solution is b.
        b = np.array([0.3, -0.2])
        theta = projected_gradient_descent(
            lambda t: t - b, L2Ball(2, radius=10.0), steps=2000, lipschitz=12.0
        )
        np.testing.assert_allclose(theta, b, atol=0.05)

    def test_constrained_solution_on_boundary(self):
        b = np.array([3.0, 0.0])
        theta = projected_gradient_descent(
            lambda t: t - b, L2Ball(2, radius=1.0), steps=2000, lipschitz=4.0
        )
        np.testing.assert_allclose(theta, [1.0, 0.0], atol=0.05)

    def test_strongly_convex_schedule_faster(self):
        b = np.array([0.5, 0.5, -0.5])
        domain = L2Ball(3, radius=2.0)
        weak = projected_gradient_descent(
            lambda t: t - b, domain, steps=60, lipschitz=3.0
        )
        strong = projected_gradient_descent(
            lambda t: t - b, domain, steps=60, lipschitz=3.0,
            strong_convexity=1.0,
        )
        assert np.linalg.norm(strong - b) <= np.linalg.norm(weak - b) + 1e-9

    def test_objective_tracking_returns_best(self):
        b = np.array([0.2])
        theta = projected_gradient_descent(
            lambda t: t - b, L2Ball(1, radius=1.0), steps=500, lipschitz=2.0,
            objective=lambda t: 0.5 * float((t - b) @ (t - b)),
        )
        np.testing.assert_allclose(theta, b, atol=0.02)

    def test_early_stopping_with_tolerance(self):
        calls = {"n": 0}

        def gradient(t):
            calls["n"] += 1
            return t

        projected_gradient_descent(
            gradient, L2Ball(1), steps=10_000, lipschitz=1.0,
            objective=lambda t: 0.5 * float(t @ t), tolerance=1e-6,
        )
        assert calls["n"] < 10_000

    def test_subgradient_works_on_nonsmooth(self):
        # min |theta| over [-1, 1]: subgradient sign(theta).
        theta = projected_gradient_descent(
            lambda t: np.sign(t), Box.symmetric(1), steps=3000, lipschitz=1.0,
            start=np.array([0.9]),
        )
        assert abs(theta[0]) < 0.05

    def test_rejects_bad_gradient_shape(self):
        with pytest.raises(OptimizationError, match="shape"):
            projected_gradient_descent(
                lambda t: np.ones(3), L2Ball(2), steps=2
            )

    def test_rejects_nan_gradient(self):
        with pytest.raises(OptimizationError, match="non-finite"):
            projected_gradient_descent(
                lambda t: np.array([np.nan, 0.0]), L2Ball(2), steps=2
            )

    def test_start_respected(self):
        calls = []

        def gradient(t):
            calls.append(np.array(t))
            return np.zeros(2)

        projected_gradient_descent(
            gradient, L2Ball(2), steps=1, start=np.array([0.3, 0.4])
        )
        np.testing.assert_allclose(calls[0], [0.3, 0.4])


class TestFrankWolfe:
    def test_matches_pgd_on_smooth_problem(self):
        b = np.array([0.4, -0.1])
        domain = L2Ball(2, radius=1.0)
        fw = frank_wolfe(lambda t: t - b, domain, steps=800)
        np.testing.assert_allclose(fw, b, atol=0.02)

    def test_boundary_solution(self):
        b = np.array([0.0, 5.0])
        fw = frank_wolfe(lambda t: t - b, L2Ball(2), steps=800)
        np.testing.assert_allclose(fw, [0.0, 1.0], atol=0.02)

    def test_iterates_always_feasible(self):
        domain = L2Ball(3, radius=0.7)
        fw = frank_wolfe(lambda t: t + 1.0, domain, steps=50)
        assert np.linalg.norm(fw) <= 0.7 + 1e-9

    def test_requires_ball(self):
        with pytest.raises(OptimizationError, match="L2Ball"):
            frank_wolfe(lambda t: t, Box.unit(2), steps=5)


class TestExactQuadraticOverBall:
    def test_interior_solution(self):
        a = np.eye(2) * 2.0
        b = np.array([-0.5, 0.0])          # minimizer at (0.25, 0)
        theta = minimize_quadratic_over_ball(a, b, L2Ball(2))
        np.testing.assert_allclose(theta, [0.25, 0.0], atol=1e-10)

    def test_boundary_solution(self):
        a = np.eye(2)
        b = np.array([-5.0, 0.0])          # unconstrained min at (5, 0)
        theta = minimize_quadratic_over_ball(a, b, L2Ball(2, radius=1.0))
        np.testing.assert_allclose(theta, [1.0, 0.0], atol=1e-8)

    def test_anisotropic_matches_pgd(self):
        rng = np.random.default_rng(0)
        m = rng.standard_normal((3, 3))
        a = m @ m.T + 0.1 * np.eye(3)
        b = rng.standard_normal(3)
        domain = L2Ball(3, radius=0.8)
        exact = minimize_quadratic_over_ball(a, b, domain)
        iterative = projected_gradient_descent(
            lambda t: a @ t + b, domain, steps=20_000,
            lipschitz=float(np.linalg.norm(a)) + np.linalg.norm(b),
        )

        def objective(t):
            return 0.5 * t @ a @ t + b @ t

        assert objective(exact) <= objective(iterative) + 1e-4

    def test_singular_matrix_boundary(self):
        # A = 0: pure linear objective; minimum at the boundary opposite b.
        a = np.zeros((2, 2))
        b = np.array([1.0, 0.0])
        theta = minimize_quadratic_over_ball(a, b, L2Ball(2))
        np.testing.assert_allclose(theta, [-1.0, 0.0], atol=1e-8)

    def test_offcenter_domain(self):
        a = np.eye(2)
        b = np.zeros(2)  # unconstrained min at origin
        domain = L2Ball(2, radius=1.0, center=np.array([5.0, 0.0]))
        theta = minimize_quadratic_over_ball(a, b, domain)
        np.testing.assert_allclose(theta, [4.0, 0.0], atol=1e-8)

    def test_rejects_asymmetric(self):
        with pytest.raises(OptimizationError, match="symmetric"):
            minimize_quadratic_over_ball(
                np.array([[1.0, 2.0], [0.0, 1.0]]), np.zeros(2), L2Ball(2)
            )

    def test_rejects_indefinite(self):
        with pytest.raises(OptimizationError, match="semi-definite"):
            minimize_quadratic_over_ball(
                -np.eye(2), np.zeros(2), L2Ball(2)
            )


class TestScalarConvex:
    def test_interior_min(self):
        x = minimize_scalar_convex(lambda t: (t - 0.3) ** 2, 0.0, 1.0)
        assert x == pytest.approx(0.3, abs=1e-6)

    def test_boundary_min(self):
        x = minimize_scalar_convex(lambda t: t, 0.0, 1.0)
        assert x == pytest.approx(0.0, abs=1e-6)

    def test_rejects_bad_interval(self):
        with pytest.raises(OptimizationError):
            minimize_scalar_convex(lambda t: t, 1.0, 0.0)
