"""Property tests pinning every registered backend to the NumPy default.

The :mod:`repro.backend` contract says accelerated backends may change
*arithmetic* (dtype, fusion, vendor kernels) but never *math*: on any
MW workload their results must stay within ``1e-6`` of the
:class:`~repro.backend.NumpyBackend` reference. This suite lets
Hypothesis hunt for update sequences and query shapes that stress the
band, for every backend registered on this machine:

- **MW steps** — fused accumulate + deferred normalize over random
  update sequences: materialized weights within ``1e-6``;
- **linear answers / GLM margins / moments** — the engine kernels
  (:func:`~repro.engine.kernels.linear_answers` and friends) through a
  backend-carrying histogram vs the dense NumPy path;
- **inverse-CDF sampling** — fixed seeds, same draws (a boundary flip
  on a tiny universe would mean real CDF divergence, not rounding);
- **monotone objective** — the MW potential ``KL(data ‖ hypothesis)``
  is non-increasing under certificate-signed updates on every backend
  (the analysis' Lemma 3.4 invariant must not be a float64 accident).

The CI default job sees ``['float32', 'numpy']``; the jax job adds
``'jax'``. The numpy-vs-numpy case is intentionally kept in the matrix:
it pins the refactor itself (agreement there is exact).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.backend import available_backends, get_backend
from repro.data.histogram import Histogram
from repro.data.log_histogram import hypothesis_core
from repro.data.universe import Universe
from repro.engine import kernels

TOLERANCE = 1e-6
SIZE = 32
UNIVERSE = Universe(np.arange(SIZE, dtype=float)[:, None], name="line32")

BACKENDS = available_backends()

update_sequences = st.lists(
    st.tuples(
        hnp.arrays(dtype=float, shape=SIZE,
                   elements=st.floats(min_value=-1.0, max_value=1.0)),
        st.floats(min_value=1e-4, max_value=1.0),
    ),
    min_size=1, max_size=10,
)

tables_arrays = hnp.arrays(
    dtype=float, shape=(6, SIZE),
    elements=st.floats(min_value=0.0, max_value=1.0),
)

weight_arrays = hnp.arrays(
    dtype=float, shape=SIZE,
    elements=st.floats(min_value=1e-6, max_value=50.0,
                       allow_subnormal=False),
)


def materialized(backend_name, updates):
    core = hypothesis_core(UNIVERSE, backend=backend_name)
    for direction, eta in updates:
        core.apply_update(direction, eta)
    return np.asarray(core.weights, dtype=float)


@pytest.mark.parametrize("name", BACKENDS)
class TestHotPathAgreement:
    @given(updates=update_sequences)
    @settings(max_examples=40, deadline=None)
    def test_mw_steps_agree(self, name, updates):
        reference = materialized("numpy", updates)
        candidate = materialized(name, updates)
        assert np.max(np.abs(candidate - reference)) <= TOLERANCE

    @given(updates=update_sequences, tables=tables_arrays)
    @settings(max_examples=30, deadline=None)
    def test_linear_answers_agree(self, name, updates, tables):
        def answers(backend_name):
            core = hypothesis_core(UNIVERSE, backend=backend_name)
            for direction, eta in updates:
                core.apply_update(direction, eta)
            return np.asarray(
                kernels.linear_answers(tables, core.freeze()),
                dtype=float)

        np.testing.assert_allclose(answers(name), answers("numpy"),
                                   atol=TOLERANCE, rtol=0)

    @given(weights=weight_arrays)
    @settings(max_examples=30, deadline=None)
    def test_moments_agree(self, name, weights):
        rng = np.random.default_rng(5)
        features = rng.standard_normal((SIZE, 3))
        labels = rng.standard_normal(SIZE)

        def moments(backend_name):
            histogram = Histogram(UNIVERSE, weights,
                                  backend=backend_name)
            return (np.asarray(kernels.second_moment(features, histogram),
                               dtype=float),
                    np.asarray(kernels.cross_moment(features, labels,
                                                    histogram),
                               dtype=float))

        second, cross = moments(name)
        second_ref, cross_ref = moments("numpy")
        np.testing.assert_allclose(second, second_ref, atol=TOLERANCE,
                                   rtol=0)
        np.testing.assert_allclose(cross, cross_ref, atol=TOLERANCE,
                                   rtol=0)

    def test_glm_margins_agree(self, name):
        rng = np.random.default_rng(6)
        points = rng.standard_normal((SIZE, 4))
        parameters = rng.standard_normal((4, 8))
        reference = kernels.glm_margin_matrix(points, parameters)
        candidate = np.asarray(
            kernels.glm_margin_matrix(points, parameters,
                                      backend=get_backend(name)),
            dtype=float)
        np.testing.assert_allclose(candidate, reference, atol=TOLERANCE,
                                   rtol=0)

    def test_sampling_agrees_under_fixed_seeds(self, name):
        updates = [(np.linspace(-1, 1, SIZE), 0.4),
                   (np.cos(np.arange(SIZE)), 0.2)]

        def draws(backend_name):
            core = hypothesis_core(UNIVERSE, backend=backend_name)
            for direction, eta in updates:
                core.apply_update(direction, eta)
            return core.freeze().sample_indices(
                512, rng=np.random.default_rng(99))

        # 32 bins put every CDF boundary ~0.03 apart — a flipped index
        # here would be genuine divergence, not boundary rounding.
        np.testing.assert_array_equal(draws(name), draws("numpy"))


@pytest.mark.parametrize("name", BACKENDS)
def test_mw_objective_monotone(name):
    """``KL(data ‖ hypothesis)`` never increases under signed updates.

    The potential argument behind the MW regret bound (Lemma 3.4) is
    what makes PMW's update count finite; it must hold on every
    backend's arithmetic, not just float64. Updates follow the
    mechanism's sign convention: penalize where the hypothesis
    over-answers relative to the data.
    """
    rng = np.random.default_rng(7)
    # Concentrated data vs a uniform start manufactures the >= 3*eta
    # answer gaps PMW's sparse vector would fire on; the regret
    # inequality (eta*gap - eta^2 > 0) then guarantees strict descent.
    data_weights = np.full(SIZE, 0.1)
    data_weights[0] = 20.0
    data = Histogram(UNIVERSE, data_weights)
    tables = rng.random((30, SIZE))

    eta = 0.05
    core = hypothesis_core(UNIVERSE, backend=name)
    potential = data.kl_divergence(core.freeze())
    fired = 0
    for table in tables:
        gap = float(core.freeze().dot(table)) - float(data.dot(table))
        if abs(gap) < 3 * eta:
            continue  # the mechanism would not update on this query
        core.apply_update(-np.sign(gap) * table, eta)
        fired += 1
        next_potential = data.kl_divergence(core.freeze())
        # Tiny slack: float32 materialization can wobble the potential
        # by a few ulps without breaking monotonicity.
        assert next_potential <= potential + 1e-6
        potential = next_potential
    assert fired >= 3  # the check must not pass vacuously
