"""Property tests: the batched engine must agree with the scalar path.

The engine's contract (see :mod:`repro.engine`) is that every kernel
computes the *same* quantity as the per-query code through a reassociated
product — so batched and scalar answers may differ only by floating-point
associativity. These tests pin that divergence below 1e-10 over
randomized weights, parameters, and query structure, and check the
sharded histogram against the dense one under the same operations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data import make_classification_dataset
from repro.data.histogram import Histogram
from repro.data.sharded import ShardedHistogram
from repro.engine import batch_answers, batch_data_minima, batch_loss_on
from repro.losses.families import (
    linear_queries_as_cm,
    random_linear_queries,
    random_logistic_family,
    random_squared_family,
)
from repro.optimize.minimize import minimize_loss

TASK = make_classification_dataset(n=1_000, d=3, universe_size=40, rng=0)
SIZE = TASK.universe.size

weight_arrays = hnp.arrays(
    dtype=float, shape=SIZE,
    elements=st.floats(min_value=0.0, max_value=50.0),
).filter(lambda w: w.sum() > 1e-6)

seeds = st.integers(min_value=0, max_value=2**20)


def _histogram(weights):
    return Histogram(TASK.universe, weights)


class TestScalarBatchedAgreement:
    @given(weights=weight_arrays, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_linear_answers(self, weights, seed):
        histogram = _histogram(weights)
        queries = random_linear_queries(TASK.universe, 6, rng=seed)
        batched = batch_answers(queries, histogram)
        scalar = [histogram.dot(query.table) for query in queries]
        np.testing.assert_allclose(batched, scalar, atol=1e-10)

    @given(weights=weight_arrays, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_glm_loss_values(self, weights, seed):
        histogram = _histogram(weights)
        losses = (random_logistic_family(TASK.universe, 3, rng=seed)
                  + random_squared_family(TASK.universe, 3, rng=seed + 1))
        rng = np.random.default_rng(seed)
        thetas = [rng.standard_normal(loss.domain.dim) * 0.5
                  for loss in losses]
        batched = batch_loss_on(losses, thetas, histogram)
        scalar = [loss.loss_on(theta, histogram)
                  for loss, theta in zip(losses, thetas)]
        np.testing.assert_allclose(batched, scalar, atol=1e-10)

    @given(weights=weight_arrays, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_linear_cm_values_and_minima(self, weights, seed):
        histogram = _histogram(weights)
        losses = linear_queries_as_cm(
            random_linear_queries(TASK.universe, 4, rng=seed))
        rng = np.random.default_rng(seed)
        thetas = [np.array([rng.random()]) for _ in losses]
        batched = batch_loss_on(losses, thetas, histogram)
        scalar = [loss.loss_on(theta, histogram)
                  for loss, theta in zip(losses, thetas)]
        np.testing.assert_allclose(batched, scalar, atol=1e-10)
        minima = batch_data_minima(losses, histogram)
        for loss, result in zip(losses, minima):
            reference = minimize_loss(loss, histogram)
            np.testing.assert_allclose(result.theta, reference.theta,
                                       atol=1e-10)
            assert result.value == pytest.approx(reference.value,
                                                 abs=1e-10)

    @given(weights=weight_arrays, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_squared_minima(self, weights, seed):
        histogram = _histogram(weights)
        losses = random_squared_family(TASK.universe, 4, rng=seed)
        minima = batch_data_minima(losses, histogram)
        for loss, result in zip(losses, minima):
            reference = minimize_loss(loss, histogram)
            np.testing.assert_allclose(result.theta, reference.theta,
                                       atol=1e-10)
            assert result.value == pytest.approx(reference.value,
                                                 abs=1e-10)


class TestShardedAgainstDense:
    @given(weights=weight_arrays, seed=seeds,
           shards=st.integers(min_value=1, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_update_and_reductions(self, weights, seed, shards):
        dense = Histogram(TASK.universe, weights)
        sharded = ShardedHistogram(TASK.universe, weights,
                                   num_shards=shards)
        rng = np.random.default_rng(seed)
        direction = rng.uniform(-3.0, 3.0, SIZE)
        dense_updated = dense.multiplicative_update(direction, 0.6)
        sharded_updated = sharded.multiplicative_update(direction, 0.6)
        np.testing.assert_array_equal(sharded_updated.weights,
                                      dense_updated.weights)
        values = rng.standard_normal(SIZE)
        assert sharded.dot(values) == pytest.approx(dense.dot(values),
                                                    abs=1e-10)
        assert sharded.total_variation(dense_updated) == pytest.approx(
            dense.total_variation(dense_updated), abs=1e-10)
        kl_dense = dense.kl_divergence(dense_updated)
        kl_sharded = sharded.kl_divergence(sharded_updated)
        if np.isinf(kl_dense):
            assert np.isinf(kl_sharded)
        else:
            assert kl_sharded == pytest.approx(kl_dense, abs=1e-10)
