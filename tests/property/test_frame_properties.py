"""Property tests for the shard wire-frame codec.

The supervisor trusts :mod:`repro.serve.shard.frames` with the serving
hot path, so the codec's contract is checked as properties rather than
examples:

1. **Round trip** — any value built from the codec's structural
   vocabulary decodes back equal (dtype- and shape-exact for ndarrays,
   sign-exact for floats, NaN-faithful).
2. **Torn frames** — every proper prefix of a valid frame raises
   :class:`~repro.exceptions.FrameTruncated`; a short read can never
   yield a value or an untyped exception.
3. **Corruption is typed** — arbitrary byte mutations decode or raise a
   :class:`~repro.exceptions.FrameError` subclass, nothing else.
4. **Version discipline** — any frame stamped with a foreign version
   byte is refused with :class:`~repro.exceptions.FrameVersionMismatch`
   before any payload is interpreted.

``tools/check_wire_protocol.py`` covers the same ground with a fixed
deterministic corpus plus committed golden frames; this suite lets
hypothesis hunt for value shapes the corpus never thought of.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import (
    FrameError,
    FrameTruncated,
    FrameVersionMismatch,
)
from repro.serve.shard import frames
from repro.serve.shard.frames import (
    KIND_REPLY_OK,
    KIND_REQUEST,
    decode_frame,
    encode_frame,
)
from repro.serve.session import ServeResult

ndarrays = hnp.arrays(
    dtype=st.sampled_from(
        [np.float64, np.float32, np.int64, np.int32, np.uint8,
         np.bool_, np.complex128]),
    shape=hnp.array_shapes(min_dims=0, max_dims=3, max_side=4),
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),  # unbounded: exercises the i64/bigint split
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=20),
    st.binary(max_size=20),
    ndarrays,
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(
            st.one_of(st.text(max_size=8), st.integers(),
                      st.binary(max_size=8)),
            children, max_size=4),
    ),
    max_leaves=12,
)

results = st.builds(
    ServeResult,
    session_id=st.text(max_size=12),
    fingerprint=st.text(alphabet="0123456789abcdef", min_size=64,
                        max_size=64),
    value=ndarrays,
    source=st.sampled_from(["fresh", "cache", "replay"]),
    query_index=st.integers(min_value=0, max_value=2 ** 31),
    epsilon_spent=st.floats(min_value=0, max_value=100),
    delta_spent=st.floats(min_value=0, max_value=1),
)


def equal(left, right) -> bool:
    """Deep equality: dtype/shape-exact arrays, sign- and NaN-exact
    floats."""
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return (isinstance(left, np.ndarray)
                and isinstance(right, np.ndarray)
                and left.dtype == right.dtype
                and left.shape == right.shape
                and np.array_equal(left, right, equal_nan=True))
    if isinstance(left, ServeResult):
        return (isinstance(right, ServeResult)
                and all(equal(getattr(left, f), getattr(right, f))
                        for f in left.__dataclass_fields__))
    if type(left) is not type(right):
        return False
    if isinstance(left, (list, tuple)):
        return (len(left) == len(right)
                and all(equal(a, b) for a, b in zip(left, right)))
    if isinstance(left, dict):
        return (left.keys() == right.keys()
                and all(equal(v, right[k]) for k, v in left.items()))
    if isinstance(left, float):
        if math.isnan(left) or math.isnan(right):
            return math.isnan(left) and math.isnan(right)
        return (left == right
                and np.signbit(left) == np.signbit(right))
    return left == right


class TestRoundTrip:
    @given(payload=st.lists(values, max_size=3))
    @settings(max_examples=150, deadline=None)
    def test_values_survive_the_pipe(self, payload):
        data = encode_frame(KIND_REPLY_OK, frames.VERBS["metrics"],
                            payload)
        frame = decode_frame(data, allow_pickle=False)
        assert frame.kind == KIND_REPLY_OK
        assert equal(list(frame.values), payload)

    @given(result=results)
    @settings(max_examples=50, deadline=None)
    def test_serve_results_survive_structurally(self, result):
        # The hot reply path: ServeResult must never hit the pickle
        # escape hatch, so allow_pickle=False has to round-trip it.
        data = encode_frame(KIND_REPLY_OK, frames.VERBS["serve_batch"],
                            [[result]])
        decoded = decode_frame(data, allow_pickle=False).values[0][0]
        assert equal(decoded, result)

    @given(deadline=st.floats(min_value=1e-3, max_value=1e6),
           verb=st.sampled_from(sorted(frames.VERBS.values())))
    @settings(max_examples=50, deadline=None)
    def test_header_fields_survive(self, deadline, verb):
        data = encode_frame(KIND_REQUEST, verb, [],
                            deadline=deadline,
                            flags=frames.FLAG_IDEMPOTENT)
        frame = decode_frame(data)
        assert frame.verb == verb
        assert frame.deadline == deadline
        assert frame.flags & frames.FLAG_IDEMPOTENT


class TestTornFrames:
    @given(payload=st.lists(values, max_size=2), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_any_prefix_raises_truncated(self, payload, data):
        encoded = encode_frame(KIND_REPLY_OK, frames.VERBS["metrics"],
                               payload)
        cut = data.draw(st.integers(min_value=0,
                                    max_value=len(encoded) - 1))
        try:
            decode_frame(encoded[:cut], allow_pickle=False)
        except FrameTruncated:
            return
        raise AssertionError(
            f"prefix of {cut}/{len(encoded)} bytes did not raise "
            f"FrameTruncated")


class TestCorruption:
    @given(payload=st.lists(values, max_size=2), data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_mutations_decode_or_raise_typed(self, payload, data):
        encoded = bytearray(encode_frame(
            KIND_REPLY_OK, frames.VERBS["metrics"], payload))
        position = data.draw(st.integers(min_value=0,
                                         max_value=len(encoded) - 1))
        encoded[position] = data.draw(
            st.integers(min_value=0, max_value=255))
        try:
            decode_frame(bytes(encoded), allow_pickle=False)
        except FrameError:
            pass  # typed refusal is the contract
        except RecursionError:
            pass  # nesting bomb from a corrupt count is bounded

    @given(junk=st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_bytes_never_escape_untyped(self, junk):
        try:
            decode_frame(junk, allow_pickle=False)
        except FrameError:
            pass
        else:
            # Only a byte string that happens to be a valid frame may
            # decode; anything shorter than a header cannot be one.
            assert len(junk) >= 16


class TestVersionDiscipline:
    @given(version=st.integers(min_value=0, max_value=255))
    @settings(max_examples=50, deadline=None)
    def test_foreign_version_refused_loudly(self, version):
        data = bytearray(encode_frame(
            KIND_REQUEST, frames.VERBS["ping"], []))
        data[2] = version
        if version == frames.VERSION:
            decode_frame(bytes(data))
            return
        try:
            decode_frame(bytes(data))
        except FrameVersionMismatch as exc:
            assert exc.got == version
            assert exc.expected == frames.VERSION
        else:
            raise AssertionError("foreign version byte was accepted")

    def test_committed_foreign_version_golden(self):
        """The committed VERSION+1 fixture is refused pre-payload.

        The fixture's body is all-0xff garbage, so any attempt to
        interpret the payload before checking the version byte would
        surface as ``FrameCorrupt`` — seeing ``FrameVersionMismatch``
        proves the refusal happens first. The fixture's byte stability
        is enforced by ``tools/check_wire_protocol.py``; this test only
        needs it to exist and be refused.
        """
        import pathlib

        path = (pathlib.Path(__file__).parent.parent / "fixtures"
                / "wire" / "request_ping_foreign_version.bin")
        data = path.read_bytes()
        assert data[2] == frames.VERSION + 1
        assert data[16:] == b"\xff" * len(data[16:])  # garbage body
        try:
            decode_frame(data, allow_pickle=False)
        except FrameVersionMismatch as exc:
            assert exc.got == frames.VERSION + 1
            assert exc.expected == frames.VERSION
        else:
            raise AssertionError(
                "committed foreign-version frame was accepted")
