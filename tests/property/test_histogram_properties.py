"""Property-based tests (hypothesis) for histogram invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.histogram import Histogram
from repro.data.universe import Universe


UNIVERSE = Universe(np.arange(12, dtype=float)[:, None], name="line12")

weight_arrays = hnp.arrays(
    dtype=float, shape=12,
    elements=st.floats(min_value=0.0, max_value=100.0),
).filter(lambda w: w.sum() > 1e-6)

directions = hnp.arrays(
    dtype=float, shape=12,
    elements=st.floats(min_value=-5.0, max_value=5.0),
)

etas = st.floats(min_value=1e-6, max_value=10.0)


class TestNormalizationInvariants:
    @given(weights=weight_arrays)
    def test_always_normalized(self, weights):
        hist = Histogram(UNIVERSE, weights)
        assert hist.weights.sum() == pytest.approx(1.0)
        assert (hist.weights >= 0).all()

    @given(weights=weight_arrays, direction=directions, eta=etas)
    @settings(max_examples=60)
    def test_update_preserves_normalization(self, weights, direction, eta):
        hist = Histogram(UNIVERSE, weights)
        updated = hist.multiplicative_update(direction, eta)
        assert updated.weights.sum() == pytest.approx(1.0)
        assert (updated.weights >= 0).all()
        assert np.isfinite(updated.weights).all()

    @given(weights=weight_arrays, direction=directions, eta=etas)
    @settings(max_examples=60)
    def test_update_preserves_support(self, weights, direction, eta):
        """Zero-weight elements stay zero; positive stay positive."""
        hist = Histogram(UNIVERSE, weights)
        updated = hist.multiplicative_update(direction, eta)
        zero_before = hist.weights == 0.0
        assert (updated.weights[zero_before] == 0.0).all()

    @given(weights=weight_arrays, eta=etas)
    @settings(max_examples=40)
    def test_constant_direction_is_identity(self, weights, eta):
        """Adding a constant to the exponent cancels in normalization."""
        hist = Histogram(UNIVERSE, weights)
        updated = hist.multiplicative_update(np.full(12, 3.0), eta)
        np.testing.assert_allclose(updated.weights, hist.weights, atol=1e-12)


class TestDistanceProperties:
    @given(a=weight_arrays, b=weight_arrays)
    @settings(max_examples=60)
    def test_tv_symmetric_and_bounded(self, a, b):
        ha, hb = Histogram(UNIVERSE, a), Histogram(UNIVERSE, b)
        tv = ha.total_variation(hb)
        assert tv == pytest.approx(hb.total_variation(ha))
        assert 0.0 <= tv <= 1.0 + 1e-12

    @given(a=weight_arrays, b=weight_arrays)
    @settings(max_examples=60)
    def test_kl_nonnegative(self, a, b):
        ha, hb = Histogram(UNIVERSE, a), Histogram(UNIVERSE, b)
        assert ha.kl_divergence(hb) >= -1e-12

    @given(a=weight_arrays)
    @settings(max_examples=40)
    def test_kl_to_uniform_bounded_by_log_size(self, a):
        """The MW potential bound: KL(D || uniform) <= log |X|."""
        hist = Histogram(UNIVERSE, a)
        uniform = Histogram.uniform(UNIVERSE)
        assert hist.kl_divergence(uniform) <= np.log(12) + 1e-9

    @given(a=weight_arrays, b=weight_arrays, values=directions)
    @settings(max_examples=60)
    def test_dot_lipschitz_in_tv(self, a, b, values):
        """|<v, D> - <v, D'>| <= max|v| * ||D - D'||_1 — the linear-query
        accuracy transfer PMW relies on."""
        ha, hb = Histogram(UNIVERSE, a), Histogram(UNIVERSE, b)
        lhs = abs(ha.dot(values) - hb.dot(values))
        rhs = np.max(np.abs(values)) * ha.l1_distance(hb)
        assert lhs <= rhs + 1e-9
