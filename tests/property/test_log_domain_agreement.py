"""Property tests pinning the lazy log-domain path to the immutable path.

The versioned :class:`~repro.data.log_histogram.LogHistogram` accumulates
``eta * u`` increments in place with deferred normalization; the immutable
:class:`~repro.data.histogram.Histogram` normalizes on every update. The
two must agree — on weights, on query answers, and on the KL potential of
the MW analysis — to ``1e-10`` across randomized update sequences, with
snapshot/restore splicing allowed anywhere in the sequence.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.histogram import Histogram
from repro.data.log_histogram import LogHistogram
from repro.data.universe import Universe

SIZE = 24
UNIVERSE = Universe(np.arange(SIZE, dtype=float)[:, None], name="line24")
DATA = Histogram(UNIVERSE, np.linspace(1.0, 3.0, SIZE))

update_sequences = st.lists(
    st.tuples(
        hnp.arrays(dtype=float, shape=SIZE,
                   elements=st.floats(min_value=-1.0, max_value=1.0)),
        st.floats(min_value=1e-4, max_value=2.0),
    ),
    min_size=1, max_size=12,
)

weight_arrays = hnp.arrays(
    dtype=float, shape=SIZE,
    # Subnormal weights (< ~2.2e-308) are excluded: they carry no
    # meaningful probability mass (no count/n histogram produces them),
    # and log-of-subnormal loses enough precision that the two
    # representations legitimately diverge past 1e-10 on the KL
    # potential while still agreeing on every answer.
    elements=st.floats(min_value=0.0, max_value=50.0,
                       allow_subnormal=False),
).filter(lambda w: w.sum() > 1e-6)


def run_both(weights, updates, *, num_shards=None, workers=None,
             snapshot_at=None):
    immutable = Histogram(UNIVERSE, weights)
    core = LogHistogram(UNIVERSE, weights, num_shards=num_shards,
                        workers=workers)
    for index, (direction, eta) in enumerate(updates):
        if snapshot_at is not None and index == snapshot_at:
            state = json.loads(json.dumps(core.state_dict()))
            core = LogHistogram.from_state(UNIVERSE, state)
        immutable = immutable.multiplicative_update(direction, eta)
        core.apply_update(direction, eta)
    return immutable, core


class TestLogDomainAgreement:
    @given(weights=weight_arrays, updates=update_sequences)
    @settings(max_examples=60, deadline=None)
    def test_weights_within_1e10(self, weights, updates):
        immutable, core = run_both(weights, updates)
        assert np.max(np.abs(core.weights - immutable.weights)) <= 1e-10

    @given(weights=weight_arrays, updates=update_sequences)
    @settings(max_examples=40, deadline=None)
    def test_answers_within_1e10(self, weights, updates):
        immutable, core = run_both(weights, updates)
        probe = np.linspace(0.0, 1.0, SIZE)
        assert abs(core.dot(probe) - immutable.dot(probe)) <= 1e-10
        frozen = core.freeze()
        assert abs(frozen.dot(probe) - immutable.dot(probe)) <= 1e-10

    @given(weights=weight_arrays, updates=update_sequences)
    @settings(max_examples=40, deadline=None)
    def test_kl_potential_within_1e10(self, weights, updates):
        """The MW potential KL(D || Dhat) — the analysis' Lyapunov
        function — agrees between the two representations."""
        immutable, core = run_both(weights, updates)
        lazy_potential = DATA.kl_divergence(core.freeze())
        eager_potential = DATA.kl_divergence(immutable)
        if np.isinf(eager_potential):
            assert np.isinf(lazy_potential)
        else:
            # Relative 1e-10: KL is unbounded (denormal weights push it
            # into the hundreds), unlike the [0, 1]-bounded weights and
            # answers where the absolute bound applies.
            assert abs(lazy_potential - eager_potential) <= \
                1e-10 * max(1.0, abs(eager_potential))

    @given(weights=weight_arrays, updates=update_sequences,
           data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_agreement_survives_snapshot_restore(self, weights, updates,
                                                 data):
        """Restoring mid-sequence must not open a gap to the immutable
        path — the raw log-domain state round-trips exactly."""
        cut = data.draw(st.integers(min_value=0, max_value=len(updates)))
        immutable, core = run_both(weights, updates, snapshot_at=cut)
        assert core.version == len(updates)
        assert np.max(np.abs(core.weights - immutable.weights)) <= 1e-10

    @given(weights=weight_arrays, updates=update_sequences)
    @settings(max_examples=25, deadline=None)
    def test_sharded_core_matches_dense_core(self, weights, updates):
        _, dense = run_both(weights, updates)
        _, sharded = run_both(weights, updates, num_shards=5)
        np.testing.assert_array_equal(sharded.weights, dense.weights)


class TestMechanismLevelAgreement:
    def test_linear_mechanism_versions_agree(self):
        """Same seed, versioned vs legacy PMW-linear: identical noise
        stream, near-identical released answers (the two hypothesis
        representations differ only by deferred-normalization float
        error)."""
        from repro.core.pmw_linear import PrivateMWLinear
        from repro.data.dataset import Dataset
        from repro.losses.linear import LinearQuery

        rng = np.random.default_rng(5)
        dataset = Dataset(UNIVERSE,
                          rng.choice(SIZE, size=400,
                                     p=DATA.weights))
        queries = [
            LinearQuery(np.clip(rng.random(SIZE), 0.0, 1.0),
                        name=f"q{i}")
            for i in range(20)
        ]

        def run(versioned):
            mechanism = PrivateMWLinear(dataset, alpha=0.2, epsilon=2.0,
                                        max_updates=8,
                                        versioned_core=versioned, rng=9)
            return mechanism.answer_all(queries, on_halt="hypothesis")

        lazy, eager = run(True), run(False)
        assert [a.from_update for a in lazy] == \
            [a.from_update for a in eager]
        for a, b in zip(lazy, eager):
            assert abs(a.value - b.value) <= 1e-9
