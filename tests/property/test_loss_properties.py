"""Property-based tests for the loss library's contracts.

For every registered GLM loss: convexity along random segments, the chain
rule (gradients = phi' * features), Lipschitz compliance, and invariance
laws (orthogonal rotations preserve gradient norms; scaling the
normalization scales values linearly).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.builders import labeled_universe, random_ball_net
from repro.losses.hinge import HingeLoss, HuberLoss
from repro.losses.logistic import LogisticLoss
from repro.losses.robust import PinballLoss, SmoothedHingeLoss
from repro.losses.squared import SquaredLoss
from repro.optimize.projections import L2Ball


BASE = random_ball_net(3, 40, rng=0)
UNIVERSE = labeled_universe(BASE, (-1.0, 1.0))
DOMAIN = L2Ball(3)

LOSS_BUILDERS = [
    lambda: SquaredLoss(DOMAIN),
    lambda: LogisticLoss(DOMAIN),
    lambda: HingeLoss(DOMAIN),
    lambda: HuberLoss(DOMAIN, delta=0.5),
    lambda: PinballLoss(DOMAIN, tau=0.3),
    lambda: SmoothedHingeLoss(DOMAIN, gamma=0.4),
]

seeds = st.integers(min_value=0, max_value=100_000)
mix = st.floats(min_value=0.0, max_value=1.0)


def random_theta(seed):
    return DOMAIN.random_point(np.random.default_rng(seed))


@pytest.mark.parametrize("builder", LOSS_BUILDERS,
                         ids=lambda b: type(b()).__name__)
class TestLossLaws:
    @given(seed_a=seeds, seed_b=seeds, lam=mix)
    @settings(max_examples=30, deadline=None)
    def test_convex_along_segments(self, builder, seed_a, seed_b, lam):
        """l(lam a + (1-lam) b; x) <= lam l(a;x) + (1-lam) l(b;x)."""
        loss = builder()
        a, b = random_theta(seed_a), random_theta(seed_b)
        middle = lam * a + (1 - lam) * b
        lhs = loss.values(middle, UNIVERSE)
        rhs = lam * loss.values(a, UNIVERSE) + (1 - lam) * loss.values(b, UNIVERSE)
        assert np.all(lhs <= rhs + 1e-9)

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_chain_rule(self, builder, seed):
        """gradients == phi'(margins) * features, row by row."""
        loss = builder()
        theta = random_theta(seed)
        features = UNIVERSE.points
        margins = features @ theta
        slopes = loss.link_derivative(margins, UNIVERSE.labels)
        expected = slopes[:, None] * features
        np.testing.assert_allclose(loss.gradients(theta, UNIVERSE), expected)

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_lipschitz_compliance(self, builder, seed):
        loss = builder()
        theta = random_theta(seed)
        norms = np.linalg.norm(loss.gradients(theta, UNIVERSE), axis=1)
        assert norms.max() <= loss.lipschitz_bound + 1e-9

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_values_finite_and_nonnegative(self, builder, seed):
        loss = builder()
        values = loss.values(random_theta(seed), UNIVERSE)
        assert np.all(np.isfinite(values))
        assert np.all(values >= -1e-12)


class TestInvariances:
    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_rotation_preserves_gradient_norms(self, seed):
        """With an orthogonal rotation, per-point gradient norms match the
        unrotated loss at the rotated parameter."""
        from repro.losses.families import _random_rotation
        rng = np.random.default_rng(seed)
        rotation = _random_rotation(3, rng)
        plain = LogisticLoss(DOMAIN)
        rotated = LogisticLoss(DOMAIN, rotation=rotation)
        theta = random_theta(seed)
        rotated_norms = np.linalg.norm(
            rotated.gradients(theta, UNIVERSE), axis=1
        )
        # Margins of the rotated loss equal margins of the plain loss at
        # R^T theta; gradient norms are |phi'| * ||R x|| = |phi'| * ||x||.
        plain_norms = np.linalg.norm(
            plain.gradients(rotation.T @ theta, UNIVERSE), axis=1
        )
        np.testing.assert_allclose(rotated_norms, plain_norms, atol=1e-9)

    @given(seed=seeds, scale=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_squared_normalization_linear(self, seed, scale):
        theta = random_theta(seed)
        base = SquaredLoss(DOMAIN, normalization=0.25)
        scaled = SquaredLoss(DOMAIN, normalization=0.25 * scale)
        np.testing.assert_allclose(
            scaled.values(theta, UNIVERSE),
            scale * base.values(theta, UNIVERSE),
        )
