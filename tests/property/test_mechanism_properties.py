"""Property-based tests for the paper's key inequalities.

These are the load-bearing claims of the analysis, checked over randomized
losses, datasets, and hypotheses rather than hand-picked cases:

- Claim 3.5 (dual certificate): ``<u, Dhat - D> >= l_D(theta_hat) -
  l_D(theta)`` for EVERY theta in the domain, not just good oracle answers.
- Equation (3): ``<u, Dhat> >= 0`` by first-order optimality.
- Section 3.4.2's sensitivity lemma: ``|err_l(D, H) - err_l(D', H)| <=
  3S/n`` over random adjacent pairs.
- The scaling condition: ``|u(x)| <= S`` everywhere.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accuracy import empirical_error_query_sensitivity
from repro.core.update import claim_3_5_slack, dual_certificate
from repro.data.builders import signed_cube
from repro.data.dataset import Dataset
from repro.data.histogram import Histogram
from repro.losses.quadratic import QuadraticLoss
from repro.optimize.projections import L2Ball


UNIVERSE = signed_cube(3)
LOSS = QuadraticLoss(L2Ball(3))

seeds = st.integers(min_value=0, max_value=10_000)


def random_histogram(seed: int) -> Histogram:
    rng = np.random.default_rng(seed)
    return Histogram(UNIVERSE, rng.dirichlet(np.full(UNIVERSE.size, 0.5)))


def random_theta(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed + 777)
    return LOSS.domain.random_point(rng)


class TestClaim35:
    @given(data_seed=seeds, hyp_seed=seeds, theta_seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_dual_certificate_inequality(self, data_seed, hyp_seed,
                                         theta_seed):
        data = random_histogram(data_seed)
        hypothesis = random_histogram(hyp_seed)
        theta_oracle = random_theta(theta_seed)
        certificate = dual_certificate(LOSS, hypothesis, theta_oracle)
        slack = claim_3_5_slack(LOSS, certificate, data, hypothesis)
        assert slack >= -1e-8

    @given(hyp_seed=seeds, theta_seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_first_order_optimality(self, hyp_seed, theta_seed):
        hypothesis = random_histogram(hyp_seed)
        certificate = dual_certificate(LOSS, hypothesis,
                                       random_theta(theta_seed))
        assert certificate.hypothesis_inner >= -1e-8

    @given(hyp_seed=seeds, theta_seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_certificate_within_scale(self, hyp_seed, theta_seed):
        """|u(x)| <= S everywhere — the scaling condition in action."""
        hypothesis = random_histogram(hyp_seed)
        certificate = dual_certificate(LOSS, hypothesis,
                                       random_theta(theta_seed))
        assert np.max(np.abs(certificate.direction)) <= LOSS.scale_bound() + 1e-9


class TestSensitivityLemma:
    @given(data_seed=seeds, hyp_seed=seeds,
           row=st.integers(min_value=0, max_value=199),
           new_value=st.integers(min_value=0, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_error_query_sensitivity(self, data_seed, hyp_seed, row,
                                     new_value):
        rng = np.random.default_rng(data_seed)
        dataset = Dataset(UNIVERSE, rng.integers(0, UNIVERSE.size, size=200))
        neighbor = dataset.replace_row(row, new_value)
        hypothesis = random_histogram(hyp_seed)
        realized = empirical_error_query_sensitivity(
            LOSS, dataset.histogram(), neighbor.histogram(), hypothesis
        )
        bound = 3.0 * LOSS.scale_bound() / dataset.n
        assert realized <= bound + 1e-9


class TestLinearQuerySensitivity:
    @given(data_seed=seeds, row=st.integers(min_value=0, max_value=99),
           new_value=st.integers(min_value=0, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_one_over_n(self, data_seed, row, new_value):
        from repro.losses.linear import LinearQuery

        rng = np.random.default_rng(data_seed)
        dataset = Dataset(UNIVERSE, rng.integers(0, UNIVERSE.size, size=100))
        neighbor = dataset.replace_row(row, new_value)
        query = LinearQuery(rng.random(UNIVERSE.size))
        diff = abs(query.answer(dataset.histogram())
                   - query.answer(neighbor.histogram()))
        assert diff <= 1.0 / dataset.n + 1e-12
