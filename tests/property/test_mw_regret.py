"""Property tests for Lemma 3.4 — the bounded-regret property of MW.

Lemma 3.4: for EVERY sequence ``u_1, ..., u_T in [-S, S]^X``, the MW
learner's iterates satisfy

    ``(1/T) sum_t <u_t, Dhat_t - D> <= 2 S sqrt(log|X| / T)``

for every comparator ``D``. This is the engine of the paper's accuracy
proof (Claim 3.7), so we verify it adversarially: both on random
sequences and on the worst-case sequence that greedily maximizes each
round's regret term.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.builders import signed_cube
from repro.data.histogram import Histogram


UNIVERSE = signed_cube(4)  # |X| = 16
LOG_SIZE = np.log(UNIVERSE.size)


def run_mw(direction_fn, comparator: Histogram, rounds: int,
           scale: float) -> float:
    """Run MW with directions from ``direction_fn``; return average regret."""
    eta = np.sqrt(LOG_SIZE / rounds)
    hypothesis = Histogram.uniform(UNIVERSE)
    total = 0.0
    for t in range(rounds):
        direction = direction_fn(t, hypothesis)
        assert np.max(np.abs(direction)) <= scale + 1e-12
        total += hypothesis.dot(direction) - comparator.dot(direction)
        hypothesis = hypothesis.multiplicative_update(-direction / scale, eta)
    return total / rounds


class TestLemma34:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           rounds=st.integers(min_value=1, max_value=60),
           scale=st.floats(min_value=0.1, max_value=8.0))
    @settings(max_examples=40, deadline=None)
    def test_random_sequences(self, seed, rounds, scale):
        rng = np.random.default_rng(seed)
        comparator = Histogram(
            UNIVERSE, rng.dirichlet(np.full(UNIVERSE.size, 0.4))
        )

        def directions(t, hypothesis):
            return rng.uniform(-scale, scale, size=UNIVERSE.size)

        regret = run_mw(directions, comparator, rounds, scale)
        bound = 2.0 * scale * np.sqrt(LOG_SIZE / rounds)
        assert regret <= bound + 1e-9

    @given(seed=st.integers(min_value=0, max_value=10_000),
           rounds=st.integers(min_value=1, max_value=60))
    @settings(max_examples=40, deadline=None)
    def test_greedy_adversary(self, seed, rounds):
        """The worst sequence: u_t = S * sign(Dhat_t - D) maximizes each
        round's term; the bound must still hold."""
        scale = 3.0
        rng = np.random.default_rng(seed)
        comparator = Histogram(
            UNIVERSE, rng.dirichlet(np.full(UNIVERSE.size, 0.4))
        )

        def directions(t, hypothesis):
            return scale * np.sign(hypothesis.weights - comparator.weights)

        regret = run_mw(directions, comparator, rounds, scale)
        bound = 2.0 * scale * np.sqrt(LOG_SIZE / rounds)
        assert regret <= bound + 1e-9

    def test_greedy_adversary_long_horizon(self):
        """Deterministic long-run check with the point-mass comparator."""
        scale, rounds = 2.0, 400
        comparator = Histogram.point_mass(UNIVERSE, 3)

        def directions(t, hypothesis):
            return scale * np.sign(hypothesis.weights - comparator.weights)

        regret = run_mw(directions, comparator, rounds, scale)
        bound = 2.0 * scale * np.sqrt(LOG_SIZE / rounds)
        assert regret <= bound + 1e-9

    def test_figure_3_consistency(self):
        """With T = 64 S^2 log|X| / alpha^2 the regret bound equals alpha/4
        — exactly the contradiction driving Claim 3.7."""
        scale, alpha = 2.0, 0.4
        rounds = int(np.ceil(64 * scale**2 * LOG_SIZE / alpha**2))
        bound = 2.0 * scale * np.sqrt(LOG_SIZE / rounds)
        assert bound <= alpha / 4.0 + 1e-9
