"""Property-based tests for domain projections."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.optimize.projections import Box, L2Ball, Simplex


vectors = hnp.arrays(
    dtype=float, shape=4,
    elements=st.floats(min_value=-50.0, max_value=50.0),
)


class TestBallProjection:
    @given(point=vectors)
    def test_feasible(self, point):
        ball = L2Ball(4, radius=1.0)
        assert np.linalg.norm(ball.project(point)) <= 1.0 + 1e-9

    @given(point=vectors)
    def test_idempotent(self, point):
        ball = L2Ball(4, radius=1.0)
        once = ball.project(point)
        np.testing.assert_allclose(ball.project(once), once, atol=1e-12)

    @given(point=vectors, other=vectors)
    @settings(max_examples=60)
    def test_projection_is_contraction(self, point, other):
        """||P(x) - P(y)|| <= ||x - y|| — projections onto convex sets."""
        ball = L2Ball(4, radius=1.0)
        lhs = np.linalg.norm(ball.project(point) - ball.project(other))
        rhs = np.linalg.norm(point - other)
        assert lhs <= rhs + 1e-9


class TestBoxProjection:
    @given(point=vectors)
    def test_feasible(self, point):
        box = Box.symmetric(4, half_width=1.0)
        projected = box.project(point)
        assert (projected >= -1.0 - 1e-12).all()
        assert (projected <= 1.0 + 1e-12).all()

    @given(point=vectors, other=vectors)
    @settings(max_examples=60)
    def test_contraction(self, point, other):
        box = Box.unit(4)
        lhs = np.linalg.norm(box.project(point) - box.project(other))
        assert lhs <= np.linalg.norm(point - other) + 1e-9


class TestSimplexProjection:
    @given(point=vectors)
    def test_feasible(self, point):
        simplex = Simplex(4)
        projected = simplex.project(point)
        assert projected.sum() == pytest.approx(1.0)
        assert (projected >= -1e-12).all()

    @given(point=vectors)
    def test_idempotent(self, point):
        simplex = Simplex(4)
        once = simplex.project(point)
        np.testing.assert_allclose(simplex.project(once), once, atol=1e-9)

    @given(point=vectors, shift=st.floats(min_value=-10, max_value=10))
    @settings(max_examples=60)
    def test_shift_invariant(self, point, shift):
        """Simplex projection is invariant to adding a constant."""
        simplex = Simplex(4)
        a = simplex.project(point)
        b = simplex.project(point + shift)
        np.testing.assert_allclose(a, b, atol=1e-9)
