"""Property-based tests for the serving layer's cache idempotence.

The load-bearing claim: serving the *same* query twice through
:class:`PMWService` never spends privacy budget on the second call and
returns a numerically identical answer — over randomized losses, datasets,
mechanism seeds, and interleavings, not hand-picked cases. (Replaying a
released answer is post-processing; the cache must make that literal.)
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.builders import signed_cube
from repro.data.dataset import Dataset
from repro.losses.families import (
    random_linear_queries,
    random_quadratic_family,
)
from repro.serve.service import PMWService

UNIVERSE = signed_cube(3)

seeds = st.integers(min_value=0, max_value=10_000)

CONVEX_PARAMS = dict(oracle="non-private", scale=4.0, alpha=0.3, beta=0.1,
                     epsilon=2.0, delta=1e-6, schedule="calibrated",
                     max_updates=6, solver_steps=100)


def random_dataset(seed: int) -> Dataset:
    rng = np.random.default_rng(seed)
    weights = rng.dirichlet(np.full(UNIVERSE.size, 0.6))
    return Dataset(UNIVERSE, rng.choice(UNIVERSE.size, size=200, p=weights))


class TestCacheIdempotence:
    @given(data_seed=seeds, loss_seed=seeds, mech_seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_second_serving_is_free_and_identical(self, data_seed, loss_seed,
                                                  mech_seed):
        service = PMWService(random_dataset(data_seed), rng=mech_seed)
        sid = service.open_session("pmw-convex", **CONVEX_PARAMS)
        loss = random_quadratic_family(UNIVERSE, 1, rng=loss_seed)[0]

        first = service.submit(sid, loss)
        spends_after_first = service.session(sid).accountant.num_spends
        second = service.submit(sid, loss)

        assert service.session(sid).accountant.num_spends == \
            spends_after_first
        assert second.free
        assert second.source == "cache"
        np.testing.assert_array_equal(np.asarray(first.value),
                                      np.asarray(second.value))

    @given(data_seed=seeds, loss_seed=seeds, mech_seed=seeds,
           interleave_seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_free_even_with_interleaved_queries(self, data_seed, loss_seed,
                                                mech_seed, interleave_seed):
        """Idempotence must survive other queries mutating the hypothesis
        in between: the cache replays the *released* answer, it does not
        recompute against the drifted hypothesis."""
        service = PMWService(random_dataset(data_seed), rng=mech_seed)
        sid = service.open_session("pmw-convex", **CONVEX_PARAMS)
        target = random_quadratic_family(UNIVERSE, 1, rng=loss_seed)[0]
        others = random_quadratic_family(UNIVERSE, 3,
                                         rng=interleave_seed + 1)

        first = service.submit(sid, target)
        for other in others:
            service.submit(sid, other, on_halt="hypothesis")
        spends_before = service.session(sid).accountant.num_spends
        replay = service.submit(sid, target)

        assert service.session(sid).accountant.num_spends == spends_before
        assert replay.free and replay.source == "cache"
        np.testing.assert_array_equal(np.asarray(first.value),
                                      np.asarray(replay.value))

    @given(data_seed=seeds, query_seed=seeds, mech_seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_rebuilt_equal_query_object_is_free(self, data_seed, query_seed,
                                                mech_seed):
        """Equality is by fingerprint, not object identity: an analyst
        re-deriving the same query pays nothing the second time."""
        service = PMWService(random_dataset(data_seed), rng=mech_seed)
        sid = service.open_session("pmw-linear", alpha=0.25, epsilon=1.0,
                                   delta=1e-6, max_updates=5)
        query = random_linear_queries(UNIVERSE, 1, rng=query_seed)[0]
        rebuilt = random_linear_queries(UNIVERSE, 1, rng=query_seed)[0]
        assert query is not rebuilt

        first = service.submit(sid, query)
        spends = service.session(sid).accountant.num_spends
        second = service.submit(sid, rebuilt)

        assert service.session(sid).accountant.num_spends == spends
        assert second.free and second.source == "cache"
        assert first.value == second.value
