"""Property tests for the consistent-hash session→shard router.

Three load-bearing claims (the routing layer of
:mod:`repro.serve.shard`):

1. **Restart stability** — routing is a pure function of (session id,
   topology): two independently built routers agree on every
   assignment, so a restarted supervisor can never misroute a session
   whose shard directory already holds its ledger.
2. **Exact locality of resharding** — removing a shard remaps *only*
   that shard's sessions (survivor-to-survivor moves are impossible by
   construction), and adding a shard only *steals* sessions (every
   changed session maps to the new shard). These are exact invariants,
   not statistical ones.
3. **Bounded churn** — the fraction of sessions remapped by a
   one-shard topology change stays ≤ 1/n + ε, the consistent-hashing
   bound that makes resharding affordable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.shard.router import ConsistentHashRouter

session_ids = st.sets(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
        min_size=1, max_size=24,
    ),
    min_size=1, max_size=200,
)

shard_counts = st.integers(min_value=2, max_value=6)


def shard_names(n: int) -> list[str]:
    return [f"shard-{index:02d}" for index in range(n)]


class TestRestartStability:
    @given(sids=session_ids, n=shard_counts)
    @settings(max_examples=50, deadline=None)
    def test_independent_routers_agree(self, sids, n):
        first = ConsistentHashRouter(shard_names(n))
        second = ConsistentHashRouter(shard_names(n))
        assert first.assignments(sids) == second.assignments(sids)

    @given(sids=session_ids, n=shard_counts)
    @settings(max_examples=50, deadline=None)
    def test_insertion_order_is_irrelevant(self, sids, n):
        forward = ConsistentHashRouter(shard_names(n))
        backward = ConsistentHashRouter(reversed(shard_names(n)))
        assert forward.assignments(sids) == backward.assignments(sids)


class TestReshardingLocality:
    @given(sids=session_ids, n=shard_counts)
    @settings(max_examples=50, deadline=None)
    def test_remove_only_remaps_the_removed_shards_sessions(self, sids, n):
        router = ConsistentHashRouter(shard_names(n))
        before = router.assignments(sids)
        removed = shard_names(n)[-1]
        router.remove_shard(removed)
        after = router.assignments(sids)
        for sid in sids:
            if before[sid] == removed:
                assert after[sid] != removed
            else:
                assert after[sid] == before[sid]

    @given(sids=session_ids, n=shard_counts)
    @settings(max_examples=50, deadline=None)
    def test_add_only_steals_sessions_for_the_new_shard(self, sids, n):
        router = ConsistentHashRouter(shard_names(n))
        before = router.assignments(sids)
        router.add_shard("shard-new")
        after = router.assignments(sids)
        for sid in sids:
            if after[sid] != before[sid]:
                assert after[sid] == "shard-new"

    @given(sids=session_ids, n=shard_counts)
    @settings(max_examples=50, deadline=None)
    def test_remove_then_readd_roundtrips(self, sids, n):
        router = ConsistentHashRouter(shard_names(n))
        before = router.assignments(sids)
        removed = shard_names(n)[0]
        router.remove_shard(removed)
        router.add_shard(removed)
        assert router.assignments(sids) == before


class TestBoundedChurn:
    @given(n=shard_counts, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_add_remaps_at_most_one_nth_plus_epsilon(self, n, seed):
        # A fixed large id population per seed: the 1/n bound is about
        # the *expected* arc length owned by the new shard, so it needs
        # enough sessions for the empirical fraction to concentrate.
        sids = [f"session-{seed}-{index}" for index in range(2000)]
        router = ConsistentHashRouter(shard_names(n))
        before = router.assignments(sids)
        router.add_shard("shard-new")
        after = router.assignments(sids)
        moved = sum(1 for sid in sids if after[sid] != before[sid])
        # ε = 0.08 absorbs vnode placement variance at 128 vnodes/shard
        # over a 2000-session sample (observed spread is ~±0.03).
        assert moved / len(sids) <= 1.0 / (n + 1) + 0.08


class TestValidation:
    def test_duplicate_and_unknown_shards_raise(self):
        from repro.exceptions import ValidationError

        import pytest

        router = ConsistentHashRouter(["a", "b"])
        with pytest.raises(ValidationError):
            router.add_shard("a")
        with pytest.raises(ValidationError):
            router.remove_shard("missing")
        router.remove_shard("b")
        with pytest.raises(ValidationError):
            router.remove_shard("a")  # never empty the ring
