"""Fixtures for the serving-layer tests.

Small datasets, deterministic (``noise_multiplier=0`` where update
behaviour must be forced), and non-private oracles where only the serving
plumbing is under test — the mechanisms themselves are covered by
``tests/core``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.builders import signed_cube


SERVE_PARAMS = dict(
    oracle="non-private", scale=4.0, alpha=0.3, beta=0.1, epsilon=2.0,
    delta=1e-6, schedule="calibrated", max_updates=8, solver_steps=120,
)


@pytest.fixture
def cube_universe():
    return signed_cube(3)


@pytest.fixture
def cube_dataset(cube_universe):
    rng = np.random.default_rng(12345)
    weights = rng.dirichlet(np.full(cube_universe.size, 0.7))
    indices = rng.choice(cube_universe.size, size=300, p=weights)
    return Dataset(cube_universe, indices)


@pytest.fixture
def concentrated_dataset(cube_universe):
    """80% of mass on one vertex: quadratic queries force updates when
    noise_multiplier = 0 (same construction as tests/core)."""
    indices = np.concatenate([np.full(240, 5), np.arange(8).repeat(8)[:60]])
    return Dataset(cube_universe, indices)


@pytest.fixture
def serve_params():
    return dict(SERVE_PARAMS)
