"""Serving-layer engine integration: batch lanes are engine-prewarmed."""

import numpy as np
import pytest

from repro.data import make_classification_dataset
from repro.losses.families import random_squared_family
from repro.serve.planner import plan_batch
from repro.serve.service import PMWService

PARAMS = dict(scale=2.0, alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
              max_updates=5, solver_steps=60, oracle="non-private")


@pytest.fixture
def task():
    return make_classification_dataset(n=2_000, d=3, universe_size=80,
                                       rng=0)


@pytest.fixture
def losses(task):
    return random_squared_family(task.universe, 8, rng=1)


def test_batch_serving_prewarms_mechanism_cache(task, losses):
    service = PMWService(task.dataset, rng=2)
    sid = service.open_session("pmw-convex", **PARAMS)
    service.answer_batch((sid, losses))
    mechanism = service.session(sid).mechanism
    # every distinct loss in the lane hit the batched data-minima pass
    for loss in losses:
        assert loss.fingerprint() in mechanism._data_minima


def test_batch_serving_matches_sequential_submits(task, losses):
    batched = PMWService(task.dataset, rng=3)
    sid_b = batched.open_session("pmw-convex", **PARAMS)
    batch_results = batched.answer_batch((sid_b, losses))

    sequential = PMWService(task.dataset, rng=3)
    sid_s = sequential.open_session("pmw-convex", **PARAMS)
    seq_results = [sequential.submit(sid_s, loss, on_halt="hypothesis")
                   for loss in losses]

    for a, b in zip(batch_results, seq_results):
        assert a.source == b.source
        np.testing.assert_allclose(np.asarray(a.value),
                                   np.asarray(b.value), atol=1e-10)


def test_plan_mechanism_lane_preserves_order(task, losses):
    service = PMWService(task.dataset, rng=4)
    sid = service.open_session("pmw-convex", **PARAMS)
    session = service.session(sid)
    stream = [losses[0], losses[1], losses[0], losses[2]]
    plan = plan_batch(session, stream)
    lane = plan.mechanism_lane(stream)
    assert lane == [losses[0], losses[1], losses[2]]


def test_session_prewarm_noop_for_linear(task):
    from repro.losses.families import random_linear_queries

    service = PMWService(task.dataset, rng=5)
    sid = service.open_session("pmw-linear", alpha=0.2, epsilon=2.0,
                               max_updates=10)
    queries = random_linear_queries(task.universe, 4, rng=6)
    assert service.session(sid).prewarm(queries) == 0
    results = service.answer_batch((sid, queries))
    assert len(results) == 4
