"""Serving-layer engine integration: batch lanes are engine-prewarmed."""

import numpy as np
import pytest

from repro.data import make_classification_dataset
from repro.losses.families import random_squared_family
from repro.serve.planner import plan_batch
from repro.serve.service import PMWService

PARAMS = dict(scale=2.0, alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
              max_updates=5, solver_steps=60, oracle="non-private")


@pytest.fixture
def task():
    return make_classification_dataset(n=2_000, d=3, universe_size=80,
                                       rng=0)


@pytest.fixture
def losses(task):
    return random_squared_family(task.universe, 8, rng=1)


def test_batch_serving_prewarms_mechanism_cache(task, losses):
    service = PMWService(task.dataset, rng=2)
    sid = service.open_session("pmw-convex", **PARAMS)
    service.answer_batch((sid, losses))
    mechanism = service.session(sid).mechanism
    # every distinct loss in the lane hit the batched data-minima pass
    for loss in losses:
        assert loss.fingerprint() in mechanism._data_minima


def test_batch_serving_matches_sequential_submits(task, losses):
    batched = PMWService(task.dataset, rng=3)
    sid_b = batched.open_session("pmw-convex", **PARAMS)
    batch_results = batched.answer_batch((sid_b, losses))

    sequential = PMWService(task.dataset, rng=3)
    sid_s = sequential.open_session("pmw-convex", **PARAMS)
    seq_results = [sequential.submit(sid_s, loss, on_halt="hypothesis")
                   for loss in losses]

    for a, b in zip(batch_results, seq_results):
        assert a.source == b.source
        np.testing.assert_allclose(np.asarray(a.value),
                                   np.asarray(b.value), atol=1e-10)


def test_lane_hypothesis_minima_match_scalar(task):
    """Prewarm registers the lane for hypothesis-side batching; the
    batched shared-moment solves must agree with the scalar dispatch."""
    from repro.erm.oracle import NonPrivateOracle
    from repro.core.pmw_cm import PrivateMWConvex

    losses = random_squared_family(task.universe, 6, rng=11)
    kwargs = dict(scale=2.0 * max(loss.scale_bound() for loss in losses),
                  alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
                  max_updates=5, solver_steps=60, noise_multiplier=0.0)
    batched = PrivateMWConvex(task.dataset, NonPrivateOracle(60), rng=13,
                              **kwargs)
    scalar = PrivateMWConvex(task.dataset, NonPrivateOracle(60), rng=13,
                             **kwargs)
    batched.prewarm(losses)
    assert list(batched._lane_minima) == [loss.fingerprint()
                                          for loss in losses]
    for loss in losses:
        a = batched.answer(loss)
        b = scalar.answer(loss)
        assert a.from_update == b.from_update
        np.testing.assert_allclose(a.theta, b.theta, atol=1e-10)
    # the batch pass actually populated current-version entries
    version = batched.hypothesis_version
    assert any(key_version == version
               for _, key_version in batched._hypothesis_minima)


def test_linear_prewarm_matches_scalar_rounds(task):
    """A prewarmed PMW-linear twin answers identically to a cold one."""
    from repro.core.pmw_linear import PrivateMWLinear
    from repro.losses.families import random_linear_queries

    queries = random_linear_queries(task.universe, 12, rng=5)
    kwargs = dict(alpha=0.2, epsilon=1.5, delta=1e-6, max_updates=6,
                  noise_multiplier=0.0)
    warm = PrivateMWLinear(task.dataset, rng=7, **kwargs)
    cold = PrivateMWLinear(task.dataset, rng=7, **kwargs)
    added = warm.prewarm(queries + queries)  # duplicates dedupe
    assert added == len(queries)
    assert warm.prewarm(queries) == 0  # already warm
    for query in queries:
        got = warm.answer(query)
        want = cold.answer(query)
        assert got.from_update == want.from_update
        assert got.value == pytest.approx(want.value, abs=1e-12)


def test_linear_batch_serving_prewarms_true_answers(task):
    from repro.losses.families import random_linear_queries

    service = PMWService(task.dataset, rng=6)
    sid = service.open_session("pmw-linear", alpha=0.2, epsilon=1.5,
                               delta=1e-6, max_updates=6)
    queries = random_linear_queries(task.universe, 6, rng=7)
    service.answer_batch((sid, queries))
    mechanism = service.session(sid).mechanism
    for query in queries:
        assert query.fingerprint() in mechanism._true_answers


def test_plan_mechanism_lane_preserves_order(task, losses):
    service = PMWService(task.dataset, rng=4)
    sid = service.open_session("pmw-convex", **PARAMS)
    session = service.session(sid)
    stream = [losses[0], losses[1], losses[0], losses[2]]
    plan = plan_batch(session, stream)
    lane = plan.mechanism_lane(stream)
    assert lane == [losses[0], losses[1], losses[2]]


def test_session_prewarm_linear_counts_distinct(task):
    """PMW-linear sessions batch their true-answer side on prewarm
    (one loss-matrix matvec per lane) — added in the gateway PR."""
    from repro.losses.families import random_linear_queries

    service = PMWService(task.dataset, rng=5)
    sid = service.open_session("pmw-linear", alpha=0.2, epsilon=2.0,
                               max_updates=10)
    queries = random_linear_queries(task.universe, 4, rng=6)
    assert service.session(sid).prewarm(queries) == 4
    results = service.answer_batch((sid, queries))
    assert len(results) == 4


def test_session_prewarm_noop_without_hook(task):
    """Mechanisms without a prewarm hook stay a no-op (plug-in path)."""
    from repro.serve.session import Session

    class Hookless:
        halted = False

    session = Session("bare", Hookless())
    assert session.prewarm(["anything"]) == 0
