"""Tests for the answer cache."""

import threading

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.serve.cache import AnswerCache, CachedAnswer


def entry(value=1.0, source="no-update", index=0):
    return CachedAnswer(value=value, source=source, query_index=index)


class TestBasics:
    def test_get_miss_then_hit(self):
        cache = AnswerCache()
        assert cache.get("s1", "fp") is None
        cache.put("s1", "fp", entry())
        hit = cache.get("s1", "fp")
        assert hit is not None and hit.value == 1.0
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_sessions_isolated(self):
        cache = AnswerCache()
        cache.put("s1", "fp", entry(1.0))
        assert cache.get("s2", "fp") is None

    def test_contains_does_not_touch_stats(self):
        cache = AnswerCache()
        cache.put("s1", "fp", entry())
        assert cache.contains("s1", "fp")
        assert not cache.contains("s1", "other")
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_drop_session(self):
        cache = AnswerCache()
        cache.put("s1", "a", entry())
        cache.put("s1", "b", entry())
        cache.put("s2", "a", entry())
        assert cache.drop_session("s1") == 2
        assert len(cache) == 1
        assert cache.contains("s2", "a")

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            AnswerCache(max_entries=0)


class TestLRU:
    def test_eviction_order(self):
        cache = AnswerCache(max_entries=2)
        cache.put("s", "a", entry(1))
        cache.put("s", "b", entry(2))
        cache.get("s", "a")        # refresh a
        cache.put("s", "c", entry(3))  # evicts b
        assert cache.contains("s", "a")
        assert not cache.contains("s", "b")
        assert cache.contains("s", "c")


class TestImmutability:
    def test_caller_mutation_cannot_corrupt_replays(self):
        """The cache stores a read-only copy: mutating the array a caller
        received must not change what later duplicates are served."""
        cache = AnswerCache()
        released = np.array([0.1, 0.2])
        cache.put("s", "fp", entry(released, "update", 0))
        released *= 0.0  # analyst mutates their copy in place
        replay = cache.get("s", "fp")
        np.testing.assert_array_equal(replay.value, [0.1, 0.2])
        with pytest.raises(ValueError):
            replay.value[0] = 99.0  # cached array is frozen


class TestStateRoundTrip:
    def test_array_and_scalar_values(self):
        cache = AnswerCache(max_entries=10)
        cache.put("s", "cm", entry(np.array([0.1, 0.2]), "update", 3))
        cache.put("s", "lin", entry(0.75, "no-update", 4))
        restored = AnswerCache.from_state(cache.to_state())
        cm = restored.get("s", "cm")
        np.testing.assert_array_equal(cm.value, [0.1, 0.2])
        assert isinstance(cm.value, np.ndarray)
        assert cm.source == "update" and cm.query_index == 3
        lin = restored.get("s", "lin")
        assert lin.value == 0.75 and not isinstance(lin.value, np.ndarray)
        assert restored.max_entries == 10

    def test_state_is_json_round_trippable(self):
        import json
        cache = AnswerCache()
        cache.put("s", "fp", entry(np.zeros(3)))
        state = json.loads(json.dumps(cache.to_state()))
        assert AnswerCache.from_state(state).contains("s", "fp")


class TestThreadSafety:
    def test_concurrent_put_get(self):
        cache = AnswerCache(max_entries=64)
        errors = []

        def worker(tid):
            try:
                for i in range(200):
                    cache.put(f"s{tid}", f"fp{i % 16}", entry(i))
                    cache.get(f"s{tid}", f"fp{i % 16}")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
