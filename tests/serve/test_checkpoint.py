"""Crash-injection suite for checkpointing, compaction, and restart.

The bugs this PR exists for only surface under kill-at-every-byte
schedules, not happy-path suites: a torn tmp file, a half-finished
rotation, a journal truncated mid-record after a checkpoint. Every test
here asserts the strongest form of recovery — restored accountant
*records* (not just totals) bitwise-equal to the pre-crash ones.
"""

import json
import os

import pytest

from repro.exceptions import ValidationError
from repro.losses.families import random_quadratic_family
from repro.serve.checkpoint import Checkpointer, checkpoint_stamp
from repro.serve.ledger import BudgetLedger, fsync_dir, replay_ledger
from repro.serve.service import PMWService


def open_convex(service, **overrides):
    params = dict(oracle="non-private", scale=4.0, alpha=0.3, beta=0.1,
                  epsilon=2.0, delta=1e-6, schedule="calibrated",
                  max_updates=8, solver_steps=120)
    params.update(overrides)
    return service.open_session("pmw-convex", analyst="alice", **params)


def records_by_session(service):
    return {sid: service.session(sid).accountant.to_records()
            for sid in service.session_ids}


@pytest.fixture
def crashed_deployment(cube_dataset, tmp_path):
    """A service that checkpointed, then served a crash window, then
    died. Returns everything a restart (or a fault injector) needs."""
    ledger_path = tmp_path / "budget.jsonl"
    checkpoint_dir = tmp_path / "checkpoints"
    service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
    sids = [open_convex(service) for _ in range(2)]
    losses = random_quadratic_family(cube_dataset.universe, 6, rng=4)
    for sid in sids:
        service.answer_batch((sid, losses[:3]))
    checkpointer = Checkpointer(service, checkpoint_dir)
    checkpoint_path = checkpointer.checkpoint()
    # The crash window: journaled after the checkpoint.
    for sid in sids:
        service.answer_batch((sid, losses[3:]))
    expected = records_by_session(service)
    service.close()
    return dict(dataset=cube_dataset, ledger=ledger_path,
                checkpoints=checkpoint_dir, snapshot=checkpoint_path,
                sids=sids, expected=expected)


class TestCheckpointer:
    def test_checkpoint_and_restore_suffix(self, crashed_deployment):
        env = crashed_deployment
        restored = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                        ledger_path=env["ledger"])
        assert records_by_session(restored) == env["expected"]
        restored.close()

    def test_restore_equals_full_replay_bitwise(self, crashed_deployment):
        """checkpoint+suffix and full-journal replay must agree to the
        last bit — the tiers describe one history."""
        env = crashed_deployment
        suffix = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                      ledger_path=env["ledger"])
        cold = PMWService.restore(env["dataset"],
                                  ledger_path=env["ledger"])
        assert records_by_session(suffix) == records_by_session(cold)
        suffix.close()
        cold.close()

    def test_restored_service_continues(self, crashed_deployment):
        env = crashed_deployment
        restored = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                        ledger_path=env["ledger"])
        loss = random_quadratic_family(env["dataset"].universe, 1,
                                       rng=99)[0]
        result = restored.submit(env["sids"][0], loss)
        assert result.source in ("update", "no-update", "cache",
                                 "hypothesis")
        journaled = restored.ledger.replay()
        live = restored.session(env["sids"][0]).accountant
        assert journaled.accountant_for(env["sids"][0]).total_basic() == \
            live.total_basic()
        restored.close()

    def test_maybe_checkpoint_threshold(self, cube_dataset, tmp_path):
        service = PMWService(cube_dataset,
                             ledger_path=tmp_path / "b.jsonl", rng=0)
        sid = open_convex(service)
        checkpointer = Checkpointer(service, tmp_path / "ck",
                                    every_records=4)
        first = checkpointer.checkpoint()
        assert checkpointer.maybe_checkpoint() is None  # not advanced yet
        losses = random_quadratic_family(cube_dataset.universe, 6, rng=1)
        for loss in losses:
            service.submit(sid, loss)
        path = checkpointer.maybe_checkpoint()
        if service.ledger.last_seq - checkpoint_stamp(first) >= 4:
            assert path is not None
            assert checkpointer.maybe_checkpoint() is None  # re-armed
        service.close()

    def test_keep_prunes_old_generations(self, cube_dataset, tmp_path):
        service = PMWService(cube_dataset,
                             ledger_path=tmp_path / "b.jsonl", rng=0)
        open_convex(service)
        checkpointer = Checkpointer(service, tmp_path / "ck", keep=2)
        for _ in range(5):
            checkpointer.checkpoint()
        assert len(checkpointer.checkpoints()) == 2
        # generations keep increasing: the newest name sorts last
        assert checkpointer.latest().endswith("checkpoint-00000004.json")
        service.close()

    def test_new_checkpointer_resumes_stamp(self, crashed_deployment):
        env = crashed_deployment
        restored = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                        ledger_path=env["ledger"])
        fresh = Checkpointer(restored, env["checkpoints"])
        assert fresh.last_stamp == checkpoint_stamp(env["snapshot"])
        restored.close()


class TestCrashInjection:
    def test_torn_checkpoint_tmp_ignored(self, crashed_deployment):
        """A crash mid-write of the next checkpoint leaves only a .tmp
        artifact; discovery must keep using the last durable one."""
        env = crashed_deployment
        torn = os.path.join(env["checkpoints"],
                            "checkpoint-00000001.json.tmp")
        with open(torn, "w") as handle:
            handle.write('{"format": "repro.serve/v1", "sess')  # torn
        restored = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                        ledger_path=env["ledger"])
        assert records_by_session(restored) == env["expected"]
        restored.close()

    def test_torn_journal_suffix_after_checkpoint(self, crashed_deployment):
        """The classic artifact: the process died mid-append after the
        checkpoint. The torn spend was never acted on; everything before
        it must restore exactly."""
        env = crashed_deployment
        healed = replay_ledger(env["ledger"])  # pre-tear authority
        with open(env["ledger"], "a") as handle:
            handle.write('{"seq": %d, "kind": "spend", "session": "%s", '
                         '"epsilon": 0.5' % (healed.last_seq + 1,
                                             env["sids"][0]))
        restored = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                        ledger_path=env["ledger"])
        assert records_by_session(restored) == env["expected"]
        restored.close()

    def test_kill_at_every_byte_of_the_suffix(self, crashed_deployment,
                                              tmp_path):
        """Truncate the journal at EVERY byte offset past the checkpoint
        stamp and restore: totals must equal an independent replay of
        the surviving complete records — never a crash, never a
        double-count, never a lost journaled spend."""
        env = crashed_deployment
        content = open(env["ledger"], "rb").read()
        stamp = checkpoint_stamp(env["snapshot"])
        # Byte offset where the suffix begins (first record past stamp).
        marker = b'{"seq":%d,' % (stamp + 1)
        start = content.index(marker)
        work = tmp_path / "kill"
        work.mkdir()
        cut_ledger = work / "budget.jsonl"
        for cut in range(start, len(content) + 1):
            with open(cut_ledger, "wb") as handle:
                handle.write(content[:cut])
            survivors = content[:cut]
            keep = survivors.rfind(b"\n") + 1
            authority = replay_ledger_bytes(work, survivors[:keep])
            restored = Checkpointer.restore(env["dataset"],
                                            env["checkpoints"],
                                            ledger_path=cut_ledger)
            for sid in env["sids"]:
                got = restored.session(sid).accountant.to_records()
                expected = authority.spends.get(sid, [])
                assert [strip_seq(r) for r in expected] == got, (
                    f"cut at byte {cut}: session {sid} diverged"
                )
            restored.close()

    def test_crash_before_rotation_swap(self, crashed_deployment,
                                        monkeypatch):
        """Kill between writing the compacted tmp file and the swap: the
        live journal is untouched, the tmp is stale, and a retried
        compact (or a plain restore) works."""
        env = crashed_deployment
        restored = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                        ledger_path=env["ledger"])

        def boom(src, dst):
            raise OSError("injected crash before swap")

        import repro.serve.ledger as ledger_module
        monkeypatch.setattr(os, "link", boom)
        monkeypatch.setattr(ledger_module, "_copy_durable", boom)
        with pytest.raises(OSError, match="injected"):
            restored.ledger.compact()
        monkeypatch.undo()
        # the ledger reopened its handle onto the (old) live journal
        loss = random_quadratic_family(env["dataset"].universe, 1,
                                       rng=41)[0]
        restored.submit(env["sids"][0], loss)
        expected = records_by_session(restored)
        restored.close()
        second = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                      ledger_path=env["ledger"])
        assert records_by_session(second) == expected
        archive = second.ledger.compact()  # the retry
        assert os.path.exists(archive)
        assert records_by_session(second) == expected
        second.close()

    def test_crash_between_archive_link_and_swap(self, crashed_deployment,
                                                 monkeypatch):
        """Kill after hard-linking the archive but before the rename:
        the journal at `path` is still the old one (no instant where it
        is missing), the archive is a stale duplicate, and a retried
        compact overwrites it."""
        env = crashed_deployment
        restored = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                        ledger_path=env["ledger"])
        expected = records_by_session(restored)
        real_replace = os.replace

        def boom(src, dst):
            raise OSError("injected crash after archive link")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="injected"):
            restored.ledger.compact()
        monkeypatch.setattr(os, "replace", real_replace)
        stale = [name for name in os.listdir(env["ledger"].parent)
                 if name.endswith(".archive")]
        assert stale  # the orphaned archive hard link
        assert records_by_session(restored) == expected
        archive = restored.ledger.compact()  # retry reclaims the name
        assert os.path.basename(archive) in stale
        restored.close()
        second = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                      ledger_path=env["ledger"])
        assert records_by_session(second) == expected
        second.close()

    def test_restore_after_completed_rotation(self, crashed_deployment):
        """A checkpoint stamped BEFORE a rotation cannot suffix-replay
        (the rotation folded its records into baselines); restore must
        detect this and fall back to full-replay authority, exactly."""
        env = crashed_deployment
        with BudgetLedger(env["ledger"]) as ledger:
            ledger.compact()
        state = replay_ledger(env["ledger"])
        assert state.compacted_through > checkpoint_stamp(env["snapshot"])
        restored = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                        ledger_path=env["ledger"])
        assert records_by_session(restored) == env["expected"]
        restored.close()

    def test_checkpointer_compact_then_restore(self, crashed_deployment):
        """The steady-state cycle: restore, compact (which re-stamps),
        crash again, restore — bitwise across the whole cycle."""
        env = crashed_deployment
        service = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                       ledger_path=env["ledger"])
        checkpointer = Checkpointer(service, env["checkpoints"])
        path, archive = checkpointer.compact()
        assert os.path.exists(path) and os.path.exists(archive)
        # post-rotation stamp is PAST the rotation header: suffix mode
        assert checkpoint_stamp(path) >= \
            replay_ledger(env["ledger"]).compacted_through
        service.close()
        again = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                     ledger_path=env["ledger"])
        assert records_by_session(again) == env["expected"]
        again.close()


class TestCompactionEquivalence:
    """compact() ∘ restore ≡ restore on the uncompacted journal."""

    @pytest.mark.parametrize("seed", range(6))
    def test_property_random_histories(self, tmp_path, seed):
        import numpy as np
        rng = np.random.default_rng(seed)
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path, fsync=False) as ledger:
            sessions = [f"s{i}" for i in range(int(rng.integers(1, 5)))]
            for sid in sessions:
                ledger.append_open(sid, "pmw-convex", {"alpha": 0.3})
            for _ in range(int(rng.integers(0, 120))):
                sid = sessions[int(rng.integers(len(sessions)))]
                ledger.append_spends(sid, [{
                    "epsilon": float(rng.choice([0.1, 0.25, 1e-3])),
                    "delta": float(rng.choice([0.0, 1e-9])),
                    "label": str(rng.choice(["oracle:a", "oracle:b", ""])),
                }])
            for sid in sessions:
                if rng.random() < 0.3:
                    ledger.append_close(sid)
        before = replay_ledger(path)
        with BudgetLedger(path) as ledger:
            ledger.compact()
        after = replay_ledger(path)
        assert set(after.opens) == set(before.opens)
        assert after.closed == before.closed
        for sid in before.opens:
            assert [strip_seq(r) for r in after.spends.get(sid, [])] == \
                [strip_seq(r) for r in before.spends.get(sid, [])]
            assert after.accountant_for(sid).total_basic() == \
                before.accountant_for(sid).total_basic()
            assert after.accountant_for(sid).total_advanced(1e-6) == \
                before.accountant_for(sid).total_advanced(1e-6)

    def test_double_compaction(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "pmw-convex", {})
            ledger.append_spends("s1", [{"epsilon": 0.1, "delta": 0.0}] * 7)
            first = ledger.compact()
            ledger.append_spends("s1", [{"epsilon": 0.2, "delta": 0.0}])
            second = ledger.compact()
        assert first != second
        state = replay_ledger(path)
        accountant = state.accountant_for("s1")
        assert accountant.num_spends == 8
        assert accountant.total_basic().epsilon == pytest.approx(0.9)

    def test_compact_empty_ledger(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            archive = ledger.compact()
            ledger.append_open("s1", "pmw-convex", {})
        assert os.path.exists(archive)
        assert replay_ledger(path).session_ids == ["s1"]


class TestSuffixReplay:
    def test_from_seq_skips_prefix(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "pmw-convex", {})
            ledger.append_spends("s1", [{"epsilon": 0.1, "delta": 0.0}] * 4)
            ledger.append_spends("s1", [{"epsilon": 0.7, "delta": 0.0}])
        suffix = replay_ledger(path, from_seq=4)
        assert suffix.last_seq == 5
        assert [r["epsilon"] for r in suffix.spends["s1"]] == [0.7]
        assert "s1" not in suffix.opens  # open is in the skipped prefix

    def test_from_seq_at_end_is_empty(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "pmw-convex", {})
        suffix = replay_ledger(path, from_seq=0)
        assert suffix.last_seq == 0
        assert not suffix.spends and not suffix.opens

    def test_from_seq_detects_midfile_gap(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        path.write_text(
            '{"seq": 0, "kind": "open", "session": "s1", '
            '"mechanism": "m", "params": {}}\n'
            '{"seq": 3, "kind": "close", "session": "s1"}\n'
        )
        with pytest.raises(ValidationError, match="sequence gap"):
            replay_ledger(path, from_seq=0)

    def test_rotated_file_opens_at_nonzero_seq(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "pmw-convex", {})
            ledger.append_spends("s1", [{"epsilon": 0.1, "delta": 0.0}])
            ledger.compact()
        state = replay_ledger(path)
        assert state.compacted_through == 1
        assert state.accountant_for("s1").num_spends == 1
        # but a plain file starting at nonzero seq is still a gap
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"seq": 5, "kind": "close", "session": "x"}\n')
        with pytest.raises(ValidationError, match="sequence gap"):
            replay_ledger(bad)


class TestRestorePathBugfixes:
    """Regression tests for the satellite restart-path bugs."""

    def test_stamped_snapshot_without_ledger_fails_loudly(
            self, cube_dataset, tmp_path):
        """A snapshot taken against a ledger must not silently restore
        without it — spends journaled after the snapshot would vanish."""
        snap = tmp_path / "service.json"
        service = PMWService(cube_dataset,
                             ledger_path=tmp_path / "b.jsonl", rng=0)
        open_convex(service)
        service.snapshot(snap)
        service.close()
        with pytest.raises(ValidationError, match="under-report"):
            PMWService.restore(cube_dataset, snapshot=snap)

    def test_ledger_behind_stamp_fails_loudly(self, cube_dataset,
                                              tmp_path):
        """Restoring a stamped snapshot against a shorter (wrong) ledger
        must refuse rather than under-report the crash window."""
        snap = tmp_path / "service.json"
        ledger_path = tmp_path / "b.jsonl"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        sid = open_convex(service)
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=1)
        service.answer_batch((sid, losses))
        service.snapshot(snap)
        service.close()
        # "wrong ledger": an earlier backup missing the recent records
        # (keep only the open record, so last_seq < the snapshot stamp)
        content = open(ledger_path, "rb").read()
        lines = content.splitlines(keepends=True)
        with open(ledger_path, "wb") as handle:
            handle.writelines(lines[:1])
        with pytest.raises(ValidationError, match="not the ledger"):
            PMWService.restore(cube_dataset, snapshot=snap,
                               ledger_path=ledger_path)

    def test_post_snapshot_spends_survive_restore(self, cube_dataset,
                                                  tmp_path):
        """The satellite bug: spends journaled after the snapshot (the
        crash window) must surface in the restored accountant — as
        records, not just totals."""
        snap = tmp_path / "service.json"
        ledger_path = tmp_path / "b.jsonl"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        sid = open_convex(service)
        losses = random_quadratic_family(cube_dataset.universe, 6, rng=2)
        service.answer_batch((sid, losses[:2]))
        service.snapshot(snap)
        service.answer_batch((sid, losses[2:]))  # the crash window
        expected = service.session(sid).accountant.to_records()
        service.close()
        restored = PMWService.restore(cube_dataset, snapshot=snap,
                                      ledger_path=ledger_path)
        assert restored.session(sid).accountant.to_records() == expected
        restored.close()

    def test_session_counter_derived_from_replayed_ids(self, cube_dataset,
                                                       tmp_path):
        """An explicit id that LOOKS auto-minted must not make a
        post-restore open_session collide with it."""
        ledger_path = tmp_path / "b.jsonl"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        open_convex(service, session_id="pmw-convex-0002")
        service.close()
        restored = PMWService.restore(cube_dataset,
                                      ledger_path=ledger_path)
        fresh = open_convex(restored)  # pre-fix: ValidationError collision
        assert fresh != "pmw-convex-0002"
        assert set(restored.session_ids) == {"pmw-convex-0002", fresh}
        restored.close()

    def test_counter_also_hardened_on_snapshot_restore(self, cube_dataset,
                                                       tmp_path):
        snap = tmp_path / "service.json"
        service = PMWService(cube_dataset, rng=0)
        open_convex(service, session_id="pmw-convex-0005")
        service.snapshot(snap)
        restored = PMWService.restore(cube_dataset, snapshot=snap)
        fresh = open_convex(restored)
        assert fresh not in restored.session_ids[:-1]
        assert fresh != "pmw-convex-0005"


class TestServiceClose:
    def test_close_releases_ledger_handle(self, cube_dataset, tmp_path):
        service = PMWService(cube_dataset,
                             ledger_path=tmp_path / "b.jsonl", rng=0)
        handle = service.ledger._file
        assert not handle.closed
        service.close()
        assert handle.closed
        service.close()  # idempotent

    def test_context_manager(self, cube_dataset, tmp_path):
        with PMWService(cube_dataset, ledger_path=tmp_path / "b.jsonl",
                        rng=0) as service:
            sid = open_convex(service)
            assert sid in service.session_ids
        assert service.closed

    def test_closed_service_refuses_serving(self, cube_dataset, tmp_path):
        service = PMWService(cube_dataset,
                             ledger_path=tmp_path / "b.jsonl", rng=0)
        sid = open_convex(service)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        service.close()
        with pytest.raises(ValidationError, match="service is closed"):
            service.submit(sid, loss)
        with pytest.raises(ValidationError, match="service is closed"):
            open_convex(service)
        # read-only surfaces still work
        assert sid in service.budget_report()

    def test_gateway_shutdown_closes_service(self, cube_dataset,
                                             tmp_path):
        service = PMWService(cube_dataset,
                             ledger_path=tmp_path / "b.jsonl", rng=0)
        sid = open_convex(service)
        gateway = service.gateway(workers=2)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        gateway.submit(sid, loss)
        gateway.shutdown()
        assert gateway.closed
        assert service.closed
        assert service.ledger._file.closed

    def test_many_short_lived_services_leak_no_handles(self, cube_dataset,
                                                       tmp_path):
        import resource
        for index in range(30):
            with PMWService(cube_dataset,
                            ledger_path=tmp_path / f"b{index}.jsonl",
                            rng=0):
                pass
        soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
        assert soft > 0  # the loop itself not raising is the assertion


class TestDurabilityHelpers:
    def test_fsync_dir_on_file_and_directory(self, tmp_path):
        target = tmp_path / "x.txt"
        target.write_text("hello")
        fsync_dir(target)       # file: fsyncs its parent
        fsync_dir(tmp_path)     # directory: fsyncs itself

    def test_snapshot_leaves_no_tmp_and_is_stamped(self, cube_dataset,
                                                   tmp_path):
        ledger_path = tmp_path / "b.jsonl"
        snap = tmp_path / "service.json"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        open_convex(service)
        service.snapshot(snap)
        assert not os.path.exists(str(snap) + ".tmp")
        stamp = json.loads(snap.read_text())["ledger_seq"]
        assert stamp == service.ledger.last_seq
        service.close()

    def test_ledgerless_snapshot_not_stamped(self, cube_dataset,
                                             tmp_path):
        service = PMWService(cube_dataset, rng=0)
        open_convex(service)
        state = service.snapshot(tmp_path / "s.json")
        assert state["ledger_seq"] is None
        # and restoring it without a ledger stays legal
        PMWService.restore(cube_dataset, snapshot=tmp_path / "s.json")


class TestGatewayQuiesce:
    def test_quiesce_blocks_execution_not_admission(self, cube_dataset):
        import threading
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=3)
        with service.gateway(workers=2) as gateway:
            with gateway.quiesce():
                futures = [gateway.submit_async(sid, loss)
                           for loss in losses]
                # admitted but not executed: no spends can land
                assert gateway.in_flight == len(losses)
                assert all(not f.done() for f in futures)
                before = service.session(sid).accountant.num_spends
            results = [f.result(timeout=30) for f in futures]
            assert len(results) == len(losses)
            assert service.session(sid).accountant.num_spends >= before
        assert threading.active_count() >= 1

    def test_quiesce_waits_for_claimed_batches(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=5)
        with service.gateway(workers=2) as gateway:
            futures = [gateway.submit_async(sid, loss) for loss in losses]
            with gateway.quiesce():
                # everything claimed before the quiesce has settled
                claimed_done = [f for f in futures if f.done()]
                for future in claimed_done:
                    future.result()
            for future in futures:
                future.result(timeout=30)

    def test_checkpoint_under_load_is_consistent(self, cube_dataset,
                                                 tmp_path):
        """Checkpoints taken through a quiescing Checkpointer while
        analysts flood the gateway must restore to exactly the totals
        the journal had at the stamp."""
        import threading
        ledger_path = tmp_path / "b.jsonl"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        sids = [open_convex(service) for _ in range(3)]
        losses = random_quadratic_family(cube_dataset.universe, 8, rng=6)
        with service.gateway(workers=3, max_queue_depth=256) as gateway:
            checkpointer = Checkpointer(service, tmp_path / "ck",
                                        gateway=gateway)

            def flood(sid):
                for loss in losses:
                    gateway.submit(sid, loss)

            threads = [threading.Thread(target=flood, args=(sid,))
                       for sid in sids]
            for thread in threads:
                thread.start()
            path = checkpointer.checkpoint()  # mid-load, quiesced
            for thread in threads:
                thread.join()
            gateway.drain()
        stamp = checkpoint_stamp(path)
        snapshot = json.loads(open(path).read())
        at_stamp = replay_ledger(ledger_path)
        for sid in sids:
            record = snapshot["sessions"][sid]
            journaled_at_stamp = [
                strip_seq(r) for r in at_stamp.spends.get(sid, [])
                if r["seq"] <= stamp
            ]
            from repro.dp.accountant import expand_records
            snapshotted = expand_records(
                record["mechanism_snapshot"]["accountant"]["records"])
            assert snapshotted == journaled_at_stamp
        expected = records_by_session(service)
        service.close()
        restored = Checkpointer.restore(cube_dataset, tmp_path / "ck",
                                        ledger_path=ledger_path)
        assert records_by_session(restored) == expected
        restored.close()


def strip_seq(record):
    return {key: value for key, value in record.items() if key != "seq"}


def replay_ledger_bytes(workdir, content):
    """Replay a byte string as if it were the surviving journal (an
    empty file replays to an empty state)."""
    scratch = os.path.join(workdir, "authority.jsonl")
    with open(scratch, "wb") as handle:
        handle.write(content)
    return replay_ledger(scratch)


class TestOpenTimeValidation:
    def test_corrupt_journal_refused_at_open(self, tmp_path):
        """Appending onto a gapped/corrupt journal must fail at open
        (while a backup is fresh), not at the next restore."""
        path = tmp_path / "budget.jsonl"
        path.write_text(
            '{"seq": 0, "kind": "open", "session": "s1", '
            '"mechanism": "m", "params": {}}\n'
            '{"seq": 4, "kind": "close", "session": "s1"}\n'
        )
        with pytest.raises(ValidationError, match="sequence gap"):
            BudgetLedger(path)
        # a caller that has just replayed may skip the scan
        ledger = BudgetLedger(path, validate=False)
        ledger.close()

    def test_restore_skips_revalidation_but_still_replays(
            self, crashed_deployment):
        """restore passes validate=False (its replay already checked
        the range it trusts) and still restores exactly."""
        env = crashed_deployment
        restored = Checkpointer.restore(env["dataset"], env["checkpoints"],
                                        ledger_path=env["ledger"])
        assert records_by_session(restored) == env["expected"]
        restored.close()

    def test_cross_device_archive_fallback(self, tmp_path, monkeypatch):
        """compact(archive_dir=) must survive a filesystem where
        os.link raises (EXDEV) by durably copying instead."""
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "m", {})
            ledger.append_spends("s1", [{"epsilon": 0.1, "delta": 0.0}] * 3)
            before = replay_ledger(path)

            def exdev(src, dst):
                raise OSError(18, "Invalid cross-device link")

            monkeypatch.setattr(os, "link", exdev)
            archive = ledger.compact(archive_dir=tmp_path / "backup")
        assert os.path.exists(archive)
        assert replay_ledger(archive).last_seq == before.last_seq
        after = replay_ledger(path)
        assert after.accountant_for("s1").total_basic() == \
            before.accountant_for("s1").total_basic()


class TestSnapshotFormatBump:
    def test_mechanism_snapshots_write_v3(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        record = service.session(sid).snapshot()
        assert record["mechanism_snapshot"]["format"] == "repro.pmw_cm/v3"

    def test_v2_plain_records_still_restore(self, cube_dataset):
        """Pre-RLE snapshots (plain accountant records) must keep
        restoring bit-for-bit on the accepted-formats path."""
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        session = service.session(sid)
        record = session.snapshot()
        snap = record["mechanism_snapshot"]
        from repro.dp.accountant import expand_records
        snap["format"] = "repro.pmw_cm/v2"
        snap["accountant"]["records"] = expand_records(
            snap["accountant"]["records"])
        mechanism = service.registry.restore(
            record["mechanism"], snap, cube_dataset,
            **{k: v for k, v in record["params"].items()})
        assert mechanism.accountant.to_records() == \
            session.accountant.to_records()


class TestCloseSynchronization:
    def test_close_during_concurrent_serving_never_loses_a_spend(
            self, concentrated_dataset, tmp_path):
        """close() racing live submits: every round either completes
        (spend journaled before the handle goes away) or is refused
        cleanly — never a raw EBADF, never an accountant spend the
        journal missed."""
        import threading
        ledger_path = tmp_path / "b.jsonl"
        service = PMWService(concentrated_dataset,
                             ledger_path=ledger_path, rng=0)
        sids = [open_convex(service, noise_multiplier=0.0)
                for _ in range(3)]
        losses = random_quadratic_family(concentrated_dataset.universe,
                                         20, rng=7)
        unexpected = []
        barrier = threading.Barrier(4)

        def hammer(sid):
            barrier.wait()
            for loss in losses:
                try:
                    service.submit(sid, loss, on_halt="hypothesis")
                except ValidationError:
                    return  # clean refusal: service closed underneath us
                except Exception as error:  # EBADF/ValueError = the bug
                    unexpected.append(error)
                    return

        threads = [threading.Thread(target=hammer, args=(sid,))
                   for sid in sids]
        for thread in threads:
            thread.start()
        barrier.wait()
        service.close()  # races the in-flight rounds
        for thread in threads:
            thread.join()
        assert not unexpected, unexpected
        # every accountant spend that happened made it to the journal
        state = replay_ledger(ledger_path)
        for sid in sids:
            live = service.session(sid).accountant.to_records()
            journaled = [strip_seq(r) for r in state.spends.get(sid, [])]
            assert journaled == live

    def test_open_session_refused_after_close(self, cube_dataset,
                                              tmp_path):
        service = PMWService(cube_dataset,
                             ledger_path=tmp_path / "b.jsonl", rng=0)
        service.close()
        with pytest.raises(ValidationError, match="service is closed"):
            open_convex(service)

    def test_closed_ledger_append_fails_loudly(self, tmp_path):
        ledger = BudgetLedger(tmp_path / "b.jsonl")
        ledger.close()
        with pytest.raises(ValidationError, match="ledger is closed"):
            ledger.append_open("s1", "m", {})


class TestQuiesceFromWorker:
    def test_quiesce_on_worker_thread_raises_not_deadlocks(
            self, cube_dataset):
        """maybe_checkpoint wired into a future done-callback runs on a
        worker thread; quiesce() must refuse loudly instead of waiting
        on its own worker forever."""
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=8)[0]
        caught = []
        with service.gateway(workers=1) as gateway:
            def bad_callback(future):
                try:
                    with gateway.quiesce(timeout=5):
                        pass
                except ValidationError as error:
                    caught.append(error)

            future = gateway.submit_async(sid, loss)
            future.add_done_callback(bad_callback)
            future.result(timeout=30)
            gateway.drain(timeout=30)
        assert caught and "worker thread" in str(caught[0])


class TestWorkerThreadGuards:
    def test_maybe_checkpoint_on_worker_refuses_before_lock(
            self, cube_dataset, tmp_path):
        """Reproduces the cross-lock deadlock: a worker done-callback
        calls maybe_checkpoint while an external thread holds the
        checkpointer lock inside quiesce(). The worker must be refused
        BEFORE it blocks on the checkpointer lock."""
        import threading
        service = PMWService(cube_dataset,
                             ledger_path=tmp_path / "b.jsonl", rng=0)
        sid = open_convex(service)
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=9)
        caught = []
        with service.gateway(workers=1) as gateway:
            checkpointer = Checkpointer(service, tmp_path / "ck",
                                        gateway=gateway, every_records=1)

            def bad_callback(future):
                try:
                    checkpointer.maybe_checkpoint()
                except ValidationError as error:
                    caught.append(error)

            # External checkpoint running concurrently with callbacks:
            # pre-fix, the callback blocks on the checkpointer lock and
            # the checkpoint blocks on the callback's worker — forever.
            futures = []
            for loss in losses:
                future = gateway.submit_async(sid, loss)
                future.add_done_callback(bad_callback)
                futures.append(future)
            external = threading.Thread(target=checkpointer.checkpoint)
            external.start()
            for future in futures:
                future.result(timeout=30)
            external.join(timeout=30)
            assert not external.is_alive()
        assert caught and "worker thread" in str(caught[0])
        service.close()

    def test_compact_seq_advances_even_if_dir_fsync_raises(
            self, tmp_path, monkeypatch):
        """A directory-fsync failure after the rename must not leave the
        in-memory seq colliding with the rotation header."""
        import repro.serve.ledger as ledger_module
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "m", {})
            ledger.append_spends("s1", [{"epsilon": 0.1, "delta": 0.0}] * 3)

            real_replace = os.replace
            def replace_then_boom(src, dst):
                real_replace(src, dst)
                monkeypatch.setattr(ledger_module, "fsync_dir", boom)
            def boom(target):
                raise OSError("injected dir-fsync failure")
            monkeypatch.setattr(os, "replace", replace_then_boom)
            with pytest.raises(OSError, match="injected"):
                ledger.compact()
            monkeypatch.undo()
            # the rotation landed; appending must continue cleanly
            ledger.append_spends("s1", [{"epsilon": 0.2, "delta": 0.0}])
        state = replay_ledger(path)
        accountant = state.accountant_for("s1")
        assert accountant.num_spends == 4
        assert accountant.total_basic().epsilon == pytest.approx(0.5)
