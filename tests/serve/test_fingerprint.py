"""Tests for canonical loss fingerprints."""

import numpy as np
import pytest

from repro.exceptions import LossSpecificationError
from repro.losses.fingerprint import fingerprint_of
from repro.losses.linear import LinearQuery, LinearQueryAsCM
from repro.losses.logistic import LogisticLoss
from repro.losses.quadratic import QuadraticLoss, RidgeRegularized
from repro.losses.squared import SquaredLoss
from repro.optimize.projections import Box, L2Ball


class TestStability:
    def test_equal_parameters_equal_fingerprint(self):
        a = LogisticLoss(L2Ball(3))
        b = LogisticLoss(L2Ball(3))
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_name_is_cosmetic(self):
        a = LogisticLoss(L2Ball(3), name="alice's query")
        b = LogisticLoss(L2Ball(3), name="bob's query")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_is_hex_digest(self):
        digest = LogisticLoss(L2Ball(3)).fingerprint()
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    def test_repeated_calls_stable(self):
        loss = SquaredLoss(L2Ball(2))
        assert loss.fingerprint() == loss.fingerprint()


class TestDiscrimination:
    def test_different_class_differs(self):
        assert (LogisticLoss(L2Ball(3)).fingerprint()
                != SquaredLoss(L2Ball(3)).fingerprint())

    def test_different_domain_differs(self):
        assert (LogisticLoss(L2Ball(3)).fingerprint()
                != LogisticLoss(L2Ball(4)).fingerprint())
        assert (LogisticLoss(L2Ball(3, radius=1.0)).fingerprint()
                != LogisticLoss(L2Ball(3, radius=2.0)).fingerprint())

    def test_different_scalar_parameter_differs(self):
        assert (SquaredLoss(L2Ball(2), normalization=0.25).fingerprint()
                != SquaredLoss(L2Ball(2), normalization=0.5).fingerprint())

    def test_rotation_matrix_differs(self):
        rng = np.random.default_rng(0)
        r1 = np.eye(3)
        r2 = rng.standard_normal((3, 3))
        assert (LogisticLoss(L2Ball(3), rotation=r1).fingerprint()
                != LogisticLoss(L2Ball(3), rotation=r2).fingerprint())

    def test_tiny_float_difference_differs(self):
        """IEEE-754 bytes are hashed, not repr: 1 ulp matters."""
        base = 0.25
        bumped = np.nextafter(base, 1.0)
        assert (SquaredLoss(L2Ball(2), normalization=base).fingerprint()
                != SquaredLoss(L2Ball(2), normalization=bumped).fingerprint())


class TestNestedObjects:
    def test_linear_query_fingerprint(self):
        table = np.linspace(0.0, 1.0, 8)
        a = LinearQuery(table, name="q1")
        b = LinearQuery(table.copy(), name="q2")
        assert a.fingerprint() == b.fingerprint()
        c = LinearQuery(np.ones(8))
        assert a.fingerprint() != c.fingerprint()

    def test_linear_query_as_cm_recurses(self):
        q1 = LinearQuery(np.linspace(0.0, 1.0, 8))
        q2 = LinearQuery(np.zeros(8))
        assert (LinearQueryAsCM(q1).fingerprint()
                != LinearQueryAsCM(q2).fingerprint())

    def test_ridge_wrapper_recurses(self):
        base = SquaredLoss(L2Ball(2))
        assert (RidgeRegularized(base, lam=0.5).fingerprint()
                != RidgeRegularized(base, lam=1.0).fingerprint())
        assert (RidgeRegularized(base, lam=0.5).fingerprint()
                != base.fingerprint())

    def test_box_domain_supported(self):
        loss = QuadraticLoss(Box.unit(2))
        assert loss.fingerprint() == QuadraticLoss(Box.unit(2)).fingerprint()


class TestErrors:
    def test_unfingerprintable_object_raises(self):
        with pytest.raises(LossSpecificationError, match="fingerprint"):
            fingerprint_of(object())

    def test_object_dtype_array_raises(self):
        """tobytes() on object arrays would hash pointers — refuse."""
        with pytest.raises(LossSpecificationError, match="object-dtype"):
            fingerprint_of(np.array([1, "two", 3.0], dtype=object))

    def test_fingerprint_state_hook(self):
        class Custom:
            def __init__(self, value):
                self.value = value

            def fingerprint_state(self):
                return {"value": self.value}

        assert fingerprint_of(Custom(1.0)) == fingerprint_of(Custom(1.0))
        assert fingerprint_of(Custom(1.0)) != fingerprint_of(Custom(2.0))


class TestMemoization:
    def test_digest_memoized_and_excluded_from_state(self):
        a = LogisticLoss(L2Ball(3))
        before = a.fingerprint()
        assert a._fingerprint_digest == before
        # a twin that never memoized still matches (the memo attr is
        # excluded from the hashed state)
        b = LogisticLoss(L2Ball(3))
        assert b.fingerprint() == before

    def test_nested_loss_memoization_does_not_change_parent(self):
        base1 = SquaredLoss(L2Ball(2))
        base1.fingerprint()  # memoize the inner loss
        base2 = SquaredLoss(L2Ball(2))
        from repro.losses.quadratic import RidgeRegularized
        assert (RidgeRegularized(base1, lam=0.5).fingerprint()
                == RidgeRegularized(base2, lam=0.5).fingerprint())

    def test_linear_query_memoized(self):
        q = LinearQuery(np.linspace(0.0, 1.0, 8))
        assert q.fingerprint() == q.fingerprint()
        assert q._fingerprint_digest is not None
