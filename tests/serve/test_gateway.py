"""Tests for the concurrent request gateway (`repro.serve.gateway`).

Covers the four gateway contracts: per-session serialization under a
cross-session worker pool, admission control (queue depth, in-flight
bound, deadlines) with typed shedding, batch coalescing into the planned
serving path, and the drain/shutdown protocol's ledger exactness.
"""

import threading
import time

import numpy as np
import pytest

from repro.dp.accountant import PrivacyAccountant
from repro.exceptions import (
    LossSpecificationError,
    Overloaded,
    RequestTimeout,
    ValidationError,
)
from repro.losses.families import random_quadratic_family
from repro.serve.gateway import ServiceGateway
from repro.serve.ledger import replay_ledger
from repro.serve.metrics import GatewayMetrics, LatencyHistogram
from repro.serve.registry import MechanismRegistry
from repro.serve.service import PMWService


# -- stub plumbing ------------------------------------------------------------


class StubAnswer:
    def __init__(self, value, from_update, query_index):
        self.value = value
        self.from_update = from_update
        self.query_index = query_index


class StubQuery:
    """Fingerprintable no-math query (the stub mechanism keys on it)."""

    def __init__(self, key):
        self.key = key

    def fingerprint(self):
        return f"stub:{self.key}"


class OpaqueQuery(StubQuery):
    """Unfingerprintable: cannot ride the cache or in-batch dedup."""

    def fingerprint(self):
        raise LossSpecificationError("opaque")


class StubMechanism:
    """Records every round's (key, start, end) and detects interleaving.

    ``gate`` (an Event) blocks each round until set — the tests use it to
    hold a worker mid-batch deterministically; ``started`` is set when a
    round begins executing. ``epsilon_per_round`` makes rounds paid, so
    ledger tests see real spends.
    """

    def __init__(self, *, delay=0.0, gate=None, started=None,
                 epsilon_per_round=0.0, barrier=None):
        self.accountant = PrivacyAccountant()
        self.halted = False
        self.delay = delay
        self.gate = gate
        self.started = started
        self.barrier = barrier
        self.epsilon_per_round = epsilon_per_round
        self.calls = []
        self.overlaps = 0
        self._active = 0
        self._probe = threading.Lock()
        self._index = 0

    def answer(self, query):
        with self._probe:
            self._active += 1
            if self._active > 1:
                self.overlaps += 1
        start = time.monotonic()
        if self.started is not None:
            self.started.set()
        if self.gate is not None:
            assert self.gate.wait(10.0), "test gate never opened"
        if self.barrier is not None:
            self.barrier.wait(timeout=10.0)
        if self.delay:
            time.sleep(self.delay)
        if self.epsilon_per_round:
            self.accountant.spend(self.epsilon_per_round, 0.0, label="stub")
        index = self._index
        self._index += 1
        with self._probe:
            self._active -= 1
            self.calls.append((query.key, start, time.monotonic()))
        return StubAnswer(float(index), self.epsilon_per_round > 0, index)


def stub_service(dataset, mechanisms, *, ledger_path=None):
    """A PMWService whose sessions wrap the given stub mechanisms."""
    registry = MechanismRegistry()
    pool = list(mechanisms)

    @registry.register("stub")
    def _build(dataset, *, rng=None, **params):
        return pool.pop(0)

    service = PMWService(dataset, registry=registry, ledger_path=ledger_path,
                         rng=0)
    sids = [service.open_session("stub") for _ in mechanisms]
    return service, sids


def open_convex(service, **overrides):
    params = dict(oracle="non-private", scale=4.0, alpha=0.3, beta=0.1,
                  epsilon=2.0, delta=1e-6, schedule="calibrated",
                  max_updates=4, solver_steps=60, noise_multiplier=0.0)
    params.update(overrides)
    return service.open_session("pmw-convex", **params)


# -- construction / validation ------------------------------------------------


class TestConstruction:
    @pytest.mark.parametrize("knobs", [
        dict(workers=0), dict(max_queue_depth=0), dict(max_in_flight=0),
        dict(max_coalesce=0), dict(default_timeout=0.0),
        dict(on_halt="explode"),
    ])
    def test_bad_knobs_rejected(self, cube_dataset, knobs):
        service, _ = stub_service(cube_dataset, [StubMechanism()])
        with pytest.raises(ValidationError):
            ServiceGateway(service, **knobs)

    def test_unknown_session_fails_fast(self, cube_dataset):
        service, _ = stub_service(cube_dataset, [StubMechanism()])
        with service.gateway(workers=1) as gateway:
            with pytest.raises(ValidationError, match="unknown session"):
                gateway.submit_async("ghost", StubQuery("q"))

    def test_closed_session_fails_fast(self, cube_dataset):
        service, (sid,) = stub_service(cube_dataset, [StubMechanism()])
        service.close_session(sid)
        with service.gateway(workers=1) as gateway:
            with pytest.raises(ValidationError, match="closed"):
                gateway.submit_async(sid, StubQuery("q"))

    def test_closed_gateway_sheds(self, cube_dataset):
        service, (sid,) = stub_service(cube_dataset, [StubMechanism()])
        gateway = service.gateway(workers=1)
        gateway.close()
        with pytest.raises(Overloaded, match="draining"):
            gateway.submit(sid, StubQuery("q"))
        assert gateway.metrics.sheds["shutdown"] == 1


# -- serialization and concurrency -------------------------------------------


class TestSerialization:
    def test_per_session_rounds_never_interleave(self, cube_dataset):
        """Stress: many workers, many submitters, one session — the
        mechanism's privacy-state mutations must stay strictly serial."""
        mechanism = StubMechanism(delay=0.001)
        service, (sid,) = stub_service(cube_dataset, [mechanism])
        with service.gateway(workers=6, max_queue_depth=1000,
                             max_coalesce=4) as gateway:
            futures = []
            sink = threading.Lock()

            def flood(offset):
                local = [gateway.submit_async(sid, StubQuery(f"{offset}-{i}"))
                         for i in range(25)]
                with sink:
                    futures.extend(local)

            threads = [threading.Thread(target=flood, args=(t,))
                       for t in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [future.result(timeout=30) for future in futures]
        assert len(results) == 100
        assert mechanism.overlaps == 0
        # intervals must be pairwise disjoint, not just overlap-free by
        # the probe's sampling: check end_i <= start_{i+1} in call order
        calls = sorted(mechanism.calls, key=lambda call: call[1])
        for (_, _, end), (_, start, _) in zip(calls, calls[1:]):
            assert end <= start

    def test_single_submitter_is_fifo(self, cube_dataset):
        mechanism = StubMechanism()
        service, (sid,) = stub_service(cube_dataset, [mechanism])
        with service.gateway(workers=4, max_queue_depth=100) as gateway:
            futures = [gateway.submit_async(sid, StubQuery(str(i)))
                       for i in range(30)]
            for future in futures:
                future.result(timeout=30)
        assert [key for key, _, _ in mechanism.calls] \
            == [str(i) for i in range(30)]

    def test_sessions_run_concurrently(self, cube_dataset):
        """A shared barrier inside both mechanisms deadlocks unless two
        sessions execute at the same time on different workers."""
        barrier = threading.Barrier(2, timeout=10.0)
        mechanisms = [StubMechanism(barrier=barrier),
                      StubMechanism(barrier=barrier)]
        service, sids = stub_service(cube_dataset, mechanisms)
        with service.gateway(workers=2) as gateway:
            futures = [gateway.submit_async(sid, StubQuery("q"))
                       for sid in sids]
            for future in futures:
                future.result(timeout=10)

    def test_matches_serial_service_exactly(self, concentrated_dataset):
        """Deterministic twins: gateway answers == plain serial submits."""
        serial = PMWService(concentrated_dataset, rng=7)
        gated = PMWService(concentrated_dataset, rng=7)
        sid_s = open_convex(serial)
        sid_g = open_convex(gated)
        losses = random_quadratic_family(concentrated_dataset.universe, 6,
                                         rng=8)
        stream = losses + [losses[0], losses[3]]
        expected = [serial.submit(sid_s, loss, on_halt="hypothesis")
                    for loss in stream]
        with gated.gateway(workers=3, max_coalesce=4) as gateway:
            futures = [gateway.submit_async(sid_g, loss) for loss in stream]
            got = [future.result(timeout=60) for future in futures]
        for have, want in zip(got, expected):
            np.testing.assert_allclose(np.asarray(have.value),
                                       np.asarray(want.value), atol=1e-10)
            assert have.epsilon_spent == want.epsilon_spent


# -- admission control --------------------------------------------------------


class TestAdmissionControl:
    def _blocked_gateway(self, dataset, **knobs):
        """One worker held mid-round on a gate; returns the pieces."""
        gate = threading.Event()
        started = threading.Event()
        mechanism = StubMechanism(gate=gate, started=started)
        service, (sid,) = stub_service(dataset, [mechanism])
        gateway = service.gateway(workers=1, **knobs)
        first = gateway.submit_async(sid, StubQuery("first"))
        assert started.wait(5.0)
        return gateway, sid, gate, first

    def test_queue_depth_sheds_overload(self, cube_dataset):
        gateway, sid, gate, first = self._blocked_gateway(
            cube_dataset, max_queue_depth=3)
        queued = [gateway.submit_async(sid, StubQuery(f"q{i}"))
                  for i in range(3)]
        with pytest.raises(Overloaded, match="queue is full") as shed:
            gateway.submit_async(sid, StubQuery("overflow"))
        assert shed.value.session_id == sid
        assert shed.value.reason == "overload"
        gate.set()
        for future in [first, *queued]:
            future.result(timeout=10)
        gateway.close()
        assert gateway.metrics.sheds["overload"] == 1
        assert gateway.metrics.completed == 4

    def test_in_flight_bound_sheds_overload(self, cube_dataset):
        gateway, sid, gate, first = self._blocked_gateway(
            cube_dataset, max_queue_depth=50, max_in_flight=2)
        second = gateway.submit_async(sid, StubQuery("second"))
        with pytest.raises(Overloaded, match="max_in_flight"):
            gateway.submit_async(sid, StubQuery("third"))
        gate.set()
        first.result(timeout=10)
        second.result(timeout=10)
        gateway.close()

    def test_unclaimed_timeout_sheds(self, cube_dataset):
        gateway, sid, gate, first = self._blocked_gateway(
            cube_dataset, max_queue_depth=10)
        started = time.monotonic()
        with pytest.raises(RequestTimeout):
            gateway.submit(sid, StubQuery("stuck"), timeout=0.2)
        assert time.monotonic() - started < 5.0
        gate.set()
        first.result(timeout=10)
        gateway.close()
        assert gateway.metrics.sheds["timeout"] == 1
        # the shed request never reached the mechanism
        assert gateway.metrics.completed == 1

    def test_claimed_request_survives_waiter_timeout(self, cube_dataset):
        """Once claimed, a round runs to completion and its answer is
        delivered — a timed-out waiter still gets the (paid-for) result."""
        gate = threading.Event()
        started = threading.Event()
        mechanism = StubMechanism(gate=gate, started=started)
        service, (sid,) = stub_service(cube_dataset, [mechanism])

        def release():
            assert started.wait(10.0)  # the request is claimed for sure
            time.sleep(1.5)            # outlive the waiter's 1s timeout
            gate.set()

        releaser = threading.Thread(target=release)
        releaser.start()
        with service.gateway(workers=1) as gateway:
            result = gateway.submit(sid, StubQuery("slow"), timeout=1.0)
        releaser.join()
        assert result.value == 0.0
        assert gateway.metrics.sheds["timeout"] == 0

    def test_cancelled_future_does_not_kill_the_worker(self, cube_dataset):
        """A client cancelling a queued future must not poison the pool:
        the request is dropped at claim time and later requests on the
        same (sole) worker still get served."""
        gate = threading.Event()
        started = threading.Event()
        mechanism = StubMechanism(gate=gate, started=started)
        service, (sid,) = stub_service(cube_dataset, [mechanism])
        gateway = service.gateway(workers=1, max_queue_depth=10)
        head = gateway.submit_async(sid, StubQuery("head"))
        assert started.wait(5.0)
        doomed = gateway.submit_async(sid, StubQuery("doomed"))
        survivor = gateway.submit_async(sid, StubQuery("survivor"))
        assert doomed.cancel()
        gate.set()
        head.result(timeout=10)
        assert survivor.result(timeout=10).source in ("update", "no-update")
        # the cancelled request never reached the mechanism
        assert [key for key, _, _ in mechanism.calls] == ["head", "survivor"]
        gateway.close()
        assert gateway.metrics.sheds["cancelled"] == 1
        assert gateway.in_flight == 0

    def test_shed_callback_may_reenter_the_gateway(self, cube_dataset):
        """Done callbacks run synchronously on the settling thread; a
        retry-on-shed callback that calls back into the gateway must not
        deadlock (sheds settle outside the gateway lock)."""
        gate = threading.Event()
        started = threading.Event()
        mechanism = StubMechanism(gate=gate, started=started)
        service, (sid,) = stub_service(cube_dataset, [mechanism])
        gateway = service.gateway(workers=1, max_queue_depth=10)
        retried = []

        def retry(future):
            if future.exception() is not None:
                retried.append(gateway.submit_async(sid, StubQuery("retry")))

        head = gateway.submit_async(sid, StubQuery("head"))
        assert started.wait(5.0)
        stale = gateway.submit_async(sid, StubQuery("stale"), timeout=0.05)
        stale.add_done_callback(retry)
        time.sleep(0.1)  # expire while the worker is gated
        gate.set()
        head.result(timeout=10)
        with pytest.raises(RequestTimeout):
            stale.result(timeout=10)
        assert len(retried) == 1
        assert retried[0].result(timeout=10).source in ("update", "no-update")
        gateway.close()

    def test_expired_requests_shed_at_claim_time(self, cube_dataset):
        gateway, sid, gate, first = self._blocked_gateway(
            cube_dataset, max_queue_depth=10)
        stale = gateway.submit_async(sid, StubQuery("stale"), timeout=0.05)
        time.sleep(0.1)  # expire while the worker is still gated
        gate.set()
        first.result(timeout=10)
        with pytest.raises(RequestTimeout):
            stale.result(timeout=10)
        gateway.close()
        assert gateway.metrics.sheds["timeout"] == 1


# -- coalescing ---------------------------------------------------------------


class TestCoalescing:
    def test_queued_requests_merge_into_one_batch(self, cube_dataset):
        gate = threading.Event()
        started = threading.Event()
        mechanism = StubMechanism(gate=gate, started=started)
        service, (sid,) = stub_service(cube_dataset, [mechanism])
        with service.gateway(workers=1, max_coalesce=8) as gateway:
            first = gateway.submit_async(sid, StubQuery("a"))
            assert started.wait(5.0)
            queued = [gateway.submit_async(sid, StubQuery(key))
                      for key in ("b", "c", "d", "b")]
            gate.set()
            first.result(timeout=10)
            results = [future.result(timeout=10) for future in queued]
        snapshot = gateway.metrics.snapshot()
        assert snapshot["batches"] == 2  # the solo head + one merged batch
        assert snapshot["coalesced_batches"] == 1
        assert snapshot["coalesced_requests"] == 4
        # the in-batch duplicate rode the dedup lane, not a fresh round
        assert results[3].source == "cache"
        assert [key for key, _, _ in mechanism.calls] == ["a", "b", "c", "d"]

    def test_unfingerprintable_queries_still_served(self, cube_dataset):
        mechanism = StubMechanism()
        service, (sid,) = stub_service(cube_dataset, [mechanism])
        with service.gateway(workers=1) as gateway:
            result = gateway.submit(sid, OpaqueQuery("x"))
        assert result.fingerprint == ""
        assert result.source in ("update", "no-update")

    def test_failed_batch_fails_all_its_requests(self, cube_dataset):
        class ExplodingMechanism(StubMechanism):
            def answer(self, query):
                raise RuntimeError("kaboom")

        service, (sid,) = stub_service(cube_dataset, [ExplodingMechanism()])
        gateway = service.gateway(workers=1, on_halt="raise")
        future = gateway.submit_async(sid, StubQuery("boom"))
        with pytest.raises(RuntimeError, match="kaboom"):
            future.result(timeout=10)
        gateway.close()
        assert gateway.metrics.failed == 1
        assert gateway.metrics.completed == 0

    def test_real_session_queue_pressure_coalesces(self, cube_dataset):
        """Hold the only worker on a stub session, pile real queries onto
        a pmw-convex session, release: the backlog must execute as one
        coalesced (engine-prewarmed) batch, not five solo rounds."""
        from repro.serve.registry import default_registry

        gate = threading.Event()
        started = threading.Event()
        stub = StubMechanism(gate=gate, started=started)
        registry = default_registry()

        @registry.register("stub")
        def _build(dataset, *, rng=None, **params):
            return stub

        service = PMWService(cube_dataset, registry=registry, rng=11)
        stub_sid = service.open_session("stub")
        real_sid = service.open_session(
            "pmw-convex", oracle="non-private", scale=4.0, alpha=0.3,
            beta=0.1, epsilon=2.0, delta=1e-6, max_updates=4,
            solver_steps=60, noise_multiplier=0.0)
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=12)

        with service.gateway(workers=1, max_coalesce=8) as gateway:
            head = gateway.submit_async(stub_sid, StubQuery("hold"))
            assert started.wait(5.0)
            futures = [gateway.submit_async(real_sid, loss)
                       for loss in losses]
            gate.set()
            head.result(timeout=10)
            for future in futures:
                future.result(timeout=60)
        snapshot = gateway.metrics.snapshot()
        assert snapshot["coalesced_batches"] == 1
        assert snapshot["coalesced_requests"] == 5
        assert snapshot["sessions"][real_sid]["completed"] == 5


# -- drain / shutdown / ledger exactness --------------------------------------


class TestDrainAndShutdown:
    def test_drain_settles_all(self, cube_dataset):
        mechanism = StubMechanism(delay=0.01)
        service, (sid,) = stub_service(cube_dataset, [mechanism])
        gateway = service.gateway(workers=2, max_queue_depth=100)
        futures = [gateway.submit_async(sid, StubQuery(str(i)))
                   for i in range(20)]
        assert gateway.drain(timeout=30)
        assert gateway.in_flight == 0
        assert all(future.done() for future in futures)
        gateway.close()
        assert gateway.closed

    def test_forced_close_sheds_unclaimed_only(self, cube_dataset):
        gate = threading.Event()
        started = threading.Event()
        mechanism = StubMechanism(gate=gate, started=started,
                                  epsilon_per_round=0.125)
        service, (sid,) = stub_service(cube_dataset, [mechanism])
        gateway = service.gateway(workers=1, max_queue_depth=10,
                                  max_coalesce=1)
        claimed = gateway.submit_async(sid, StubQuery("claimed"))
        assert started.wait(5.0)
        doomed = [gateway.submit_async(sid, StubQuery(f"q{i}"))
                  for i in range(4)]

        closer = threading.Thread(
            target=lambda: gateway.close(drain=False))
        closer.start()
        time.sleep(0.05)  # close() is now settling the claimed round
        gate.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        # the claimed round completed and delivered
        assert claimed.result(timeout=1).value == 0.0
        # every unclaimed request failed with the typed shutdown shed
        for future in doomed:
            with pytest.raises(Overloaded, match="shutdown"):
                future.result(timeout=1)
        assert gateway.metrics.sheds["shutdown"] == 4
        # exactly one paid round ran
        assert mechanism.accountant.total_basic().epsilon == 0.125

    def test_forced_close_wakes_drain_waiters(self, cube_dataset):
        """close(drain=False) may empty the gateway; a concurrent
        drain() waiter must be woken, not left on the condition."""
        gate = threading.Event()
        started = threading.Event()
        mechanism = StubMechanism(gate=gate, started=started)
        service, (sid,) = stub_service(cube_dataset, [mechanism])
        gateway = service.gateway(workers=1, max_queue_depth=10,
                                  max_coalesce=1)
        head = gateway.submit_async(sid, StubQuery("head"))
        assert started.wait(5.0)
        for index in range(3):
            gateway.submit_async(sid, StubQuery(f"q{index}"))
        outcome = {}
        waiter = threading.Thread(
            target=lambda: outcome.setdefault("idle",
                                              gateway.drain(timeout=10)))
        waiter.start()
        closer = threading.Thread(target=lambda: gateway.close(drain=False))
        closer.start()
        time.sleep(0.05)
        gate.set()
        waiter.join(timeout=10)
        closer.join(timeout=10)
        assert not waiter.is_alive() and not closer.is_alive()
        assert outcome["idle"] is True
        assert head.result(timeout=1).value == 0.0

    def test_ledger_exact_after_shed_drain_cycle(self, concentrated_dataset,
                                                 tmp_path):
        """Acceptance: forced shed + drain cycles never lose or invent a
        write-ahead spend — replayed totals equal live totals exactly."""
        ledger_path = tmp_path / "budget.jsonl"
        service = PMWService(concentrated_dataset, rng=3,
                             ledger_path=str(ledger_path))
        sids = [open_convex(service, max_updates=3) for _ in range(3)]
        losses = random_quadratic_family(concentrated_dataset.universe, 8,
                                         rng=4)

        # Cycle 1: flood a tight gateway, then force a non-draining close
        # mid-stream — some requests complete, some shed.
        gateway = service.gateway(workers=2, max_queue_depth=3,
                                  max_coalesce=2)
        futures = []
        for sid in sids:
            for loss in losses:
                try:
                    futures.append(gateway.submit_async(sid, loss))
                except Overloaded:
                    pass  # admission shed: never touched mechanism state
        deadline = time.monotonic() + 10.0
        while gateway.metrics.batches == 0 and time.monotonic() < deadline:
            time.sleep(0.005)  # let the workers claim some of the flood
        gateway.close(drain=False)
        outcomes = {"done": 0, "shed": 0}
        for future in futures:
            try:
                future.result(timeout=1)
                outcomes["done"] += 1
            except Overloaded:
                outcomes["shed"] += 1
        assert outcomes["done"] > 0  # claimed batches finished

        # Cycle 2: a fresh gateway drains cleanly over the same service.
        with service.gateway(workers=2) as second:
            more = [second.submit_async(sid, losses[0]) for sid in sids]
            for future in more:
                future.result(timeout=60)

        state = replay_ledger(str(ledger_path))
        for sid in sids:
            live = service.session(sid).accountant.total_basic()
            replayed = state.accountant_for(sid).total_basic()
            assert replayed.epsilon == live.epsilon
            assert replayed.delta == live.delta


# -- metrics ------------------------------------------------------------------


class TestMetrics:
    def test_latency_histogram_quantiles(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        for value in (0.001, 0.002, 0.004, 0.008, 10.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.max == 10.0
        assert histogram.quantile(0.0) <= histogram.quantile(1.0)
        assert histogram.quantile(0.5) >= 0.002
        with pytest.raises(ValidationError):
            histogram.quantile(1.5)

    def test_histogram_overflow_bucket(self):
        histogram = LatencyHistogram()
        histogram.observe(10_000.0)
        assert histogram.overflow == 1
        snap = histogram.snapshot()
        assert snap["buckets"][-1]["le_seconds"] is None

    def test_registry_snapshot_is_json_ready(self):
        import json

        metrics = GatewayMetrics()
        metrics.record_submit("s1", depth=1)
        metrics.record_claim("s1", [0.001], depth=0)
        metrics.record_batch("s1", size=2, sources=["cache", "update"],
                             latencies=[0.002, 0.003])
        metrics.record_shed("overload", "s1")
        with pytest.raises(ValidationError, match="unknown shed kind"):
            metrics.record_shed("cosmic-rays")
        snap = json.loads(metrics.to_json())
        assert snap["submitted"] == 1
        assert snap["completed"] == 2
        assert snap["coalesced_batches"] == 1
        assert snap["sources"] == {"cache": 1, "update": 1}
        assert snap["sessions"]["s1"]["shed"] == 1
        assert metrics.cache_hits == 1
        assert "p99" in metrics.describe()

    def test_to_json_writes_file(self, tmp_path):
        metrics = GatewayMetrics()
        path = tmp_path / "metrics.json"
        text = metrics.to_json(path)
        assert path.read_text().strip() == text.strip()

    def test_concurrent_recording_loses_no_increments(self):
        """8 threads hammer every record_* path concurrently; totals
        must come out exact — the thread-safety bug this PR fixes was
        unlocked read-modify-write on the counters."""
        metrics = GatewayMetrics()
        threads_n, per_thread = 8, 500

        def hammer(thread_index):
            sid = f"s{thread_index % 3}"  # sessions shared across threads
            for index in range(per_thread):
                metrics.record_submit(sid, depth=index % 7)
                metrics.record_claim(sid, [0.001], depth=index % 5)
                metrics.record_batch(sid, size=2,
                                     sources=["cache", "update"],
                                     latencies=[0.002, 0.003])
                metrics.record_shed("overload", sid)
                metrics.record_failure(sid, 1)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = threads_n * per_thread
        assert metrics.submitted == total
        assert metrics.completed == 2 * total
        assert metrics.failed == total
        assert metrics.batches == total
        assert metrics.coalesced_batches == total
        assert metrics.coalesced_requests == 2 * total
        assert metrics.sheds["overload"] == total
        assert metrics.sources == {"cache": total, "update": total}
        assert metrics.queue_wait.count == total
        assert metrics.end_to_end.count == 2 * total
        snap = metrics.snapshot()
        assert sum(entry["submitted"]
                   for entry in snap["sessions"].values()) == total
