"""Query interning across the shard RPC boundary.

Three layers, matching how the protocol is built:

1. **Tables** — :class:`InternTable` / :class:`InternMirror` implement
   the *same* LRU discipline; a hypothesis-driven lockstep test proves
   the mirror's define/reference decisions never send a reference the
   worker cannot resolve, across arbitrary access patterns and
   evictions.
2. **Codec** — first sight of a query ships as a definition
   (``_T_QDEF``), repeats as a 16-byte reference (``_T_QREF``); a
   reference decoded against a fresh table raises the typed
   :class:`InternMiss` that drives the resend protocol.
3. **Deployment** — a worker restart invalidates its table; the
   supervisor's fresh-mirror-per-handle rule and the InternMiss resend
   path must both converge to correct (bitwise-replayed) answers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FrameError
from repro.losses.families import random_quadratic_family
from repro.losses.fingerprint import fingerprint_of
from repro.serve.shard import ShardedService, frames
from repro.serve.shard.interning import (
    InternMirror,
    InternMiss,
    InternTable,
    wire_fingerprint,
)

SHARD_PARAMS = dict(
    oracle="non-private", scale=4.0, alpha=0.3, beta=0.1, epsilon=2.0,
    delta=1e-6, schedule="calibrated", max_updates=4, solver_steps=30,
)


def fp(n: int) -> bytes:
    return n.to_bytes(16, "big")


class TestInternTable:
    def test_lru_evicts_least_recently_used(self):
        table = InternTable(capacity=2)
        table.define(fp(1), "one")
        table.define(fp(2), "two")
        table.lookup(fp(1))          # refresh 1; 2 is now oldest
        table.define(fp(3), "three")
        assert fp(2) not in table
        assert table.lookup(fp(1)) == "one"
        assert table.lookup(fp(3)) == "three"

    def test_define_is_an_upsert_refreshing_recency(self):
        table = InternTable(capacity=2)
        table.define(fp(1), "one")
        table.define(fp(2), "two")
        table.define(fp(1), "one-again")  # refresh, not a new slot
        table.define(fp(3), "three")
        assert fp(2) not in table
        assert table.lookup(fp(1)) == "one-again"

    def test_unknown_fingerprint_raises_typed_miss(self):
        table = InternTable()
        with pytest.raises(InternMiss) as info:
            table.lookup(fp(7))
        assert info.value.fingerprint_hex == fp(7).hex()

    def test_intern_miss_survives_pickling(self):
        import pickle

        miss = pickle.loads(pickle.dumps(InternMiss(fp(9).hex())))
        assert miss.fingerprint_hex == fp(9).hex()


class TestInternMirror:
    def test_note_defines_once_then_references(self):
        mirror = InternMirror()
        assert mirror.note(fp(1)) is True
        assert mirror.note(fp(1)) is False
        assert mirror.note(fp(1), force_define=True) is True

    def test_reset_forgets_everything(self):
        mirror = InternMirror()
        mirror.note(fp(1))
        mirror.reset()
        assert len(mirror) == 0
        assert mirror.note(fp(1)) is True

    @given(accesses=st.lists(st.integers(min_value=0, max_value=12),
                             max_size=80),
           capacity=st.integers(min_value=1, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_mirror_and_table_stay_in_lockstep(self, accesses, capacity):
        # The protocol invariant: whenever the mirror says "reference
        # suffices", the worker's table must resolve it — across any
        # access pattern and any eviction pressure.
        mirror = InternMirror(capacity=capacity)
        table = InternTable(capacity=capacity)
        for n in accesses:
            if mirror.note(fp(n)):
                table.define(fp(n), n)
            else:
                assert table.lookup(fp(n)) == n
        assert len(mirror) == len(table)


class TestWireInterning:
    def queries(self, cube_dataset):
        return random_quadratic_family(cube_dataset.universe, 2, rng=11)

    def test_first_sight_defines_then_references(self, cube_dataset):
        queries = self.queries(cube_dataset)
        mirror = InternMirror()
        first = frames.encode_frame(
            frames.KIND_REQUEST, frames.VERBS["serve_batch"],
            [{"queries": queries}], intern=mirror.encoder())
        second = frames.encode_frame(
            frames.KIND_REQUEST, frames.VERBS["serve_batch"],
            [{"queries": queries}], intern=mirror.encoder())
        # Repeats travel as 16-byte fingerprints, not pickles.
        assert len(second) < len(first) / 2

        table = InternTable()
        decoded = frames.decode_frame(first, table=table).values[0]
        assert [fingerprint_of(q) for q in decoded["queries"]] \
            == [fingerprint_of(q) for q in queries]
        assert len(table) == 2
        replayed = frames.decode_frame(second, table=table).values[0]
        # References resolve to the very objects interned at first sight.
        assert all(a is b for a, b in zip(replayed["queries"],
                                          decoded["queries"]))

    def test_reference_against_fresh_table_misses_typed(self,
                                                        cube_dataset):
        queries = self.queries(cube_dataset)
        mirror = InternMirror()
        frames.encode_frame(
            frames.KIND_REQUEST, frames.VERBS["serve_batch"],
            [{"queries": queries}], intern=mirror.encoder())
        reference_only = frames.encode_frame(
            frames.KIND_REQUEST, frames.VERBS["serve_batch"],
            [{"queries": queries}], intern=mirror.encoder())
        with pytest.raises(InternMiss):  # the restarted-worker scenario
            frames.decode_frame(reference_only, table=InternTable())

    def test_definitions_are_refused_without_pickle(self, cube_dataset):
        queries = self.queries(cube_dataset)
        data = frames.encode_frame(
            frames.KIND_REQUEST, frames.VERBS["serve_batch"],
            [{"queries": queries}], intern=InternMirror().encoder())
        with pytest.raises(FrameError):
            frames.decode_frame(data, table=InternTable(),
                                allow_pickle=False)


class TestDeploymentInvalidation:
    def test_restart_invalidates_and_answers_stay_bitwise(
            self, cube_dataset, tmp_path):
        queries = random_quadratic_family(cube_dataset.universe, 3, rng=5)
        service = ShardedService(cube_dataset, tmp_path / "dep", shards=1,
                                 checkpoint_every=1, ledger_fsync=False,
                                 auto_restore=False, rng=0)
        try:
            sid = service.open_session("pmw-convex", session_id="an-00",
                                       rng=100, **SHARD_PARAMS)
            shard_id = service.shard_of(sid)
            before = service.serve_session_batch(sid, queries)
            assert service.ping(shard_id)["interned"] == len(queries)

            service.kill_shard(shard_id)
            service.restore_shard(shard_id)
            service.wait_alive(shard_id)
            # Fresh incarnation: empty worker table, empty mirror.
            assert service.ping(shard_id)["interned"] == 0

            after = service.serve_session_batch(sid, queries)
            assert [r.fingerprint for r in after] \
                == [r.fingerprint for r in before]
            for old, new in zip(before, after):
                assert np.array_equal(np.asarray(old.value),
                                      np.asarray(new.value))
            # The replay re-interned the queries on the new incarnation.
            assert service.ping(shard_id)["interned"] == len(queries)
        finally:
            service.close()

    def test_intern_miss_resend_recovers_transparently(
            self, cube_dataset, tmp_path):
        # Poison the mirror: make the supervisor believe the worker has
        # interned queries it has never seen, so the first serve goes
        # out as bare references, the worker answers InternMiss, and the
        # single force-define resend must still produce correct results.
        queries = random_quadratic_family(cube_dataset.universe, 3, rng=5)

        def serve_once(root, poison):
            service = ShardedService(cube_dataset, root, shards=1,
                                     ledger_fsync=False, rng=0)
            try:
                sid = service.open_session("pmw-convex",
                                           session_id="an-00", rng=100,
                                           **SHARD_PARAMS)
                if poison:
                    handle = service._handles[service.shard_of(sid)]
                    for query in queries:
                        handle.mirror.note(wire_fingerprint(query))
                results = service.serve_session_batch(sid, queries)
                # Recovery resent definitions: table is repopulated, and
                # an immediate replay hits the answer cache.
                assert service.ping(service.shard_of(sid))["interned"] \
                    == len(queries)
                replay = service.serve_session_batch(sid, queries)
                assert all(r.source == "cache" for r in replay)
                return results
            finally:
                service.close()

        poisoned = serve_once(tmp_path / "poisoned", poison=True)
        clean = serve_once(tmp_path / "clean", poison=False)
        assert [r.fingerprint for r in poisoned] \
            == [r.fingerprint for r in clean]
        for a, b in zip(poisoned, clean):
            assert np.array_equal(np.asarray(a.value), np.asarray(b.value))
