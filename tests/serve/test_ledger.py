"""Tests for the crash-safe budget ledger and accountant serialization."""

import json

import pytest

from repro.dp.accountant import PrivacyAccountant
from repro.exceptions import ValidationError
from repro.serve.ledger import BudgetLedger, replay_ledger


class TestAccountantRoundTrip:
    def test_spend_journal_rebuild_identical_totals(self):
        accountant = PrivacyAccountant()
        for index in range(7):
            accountant.spend(0.05, 1e-8, label=f"oracle:{index}")
        rebuilt = PrivacyAccountant.from_records(accountant.to_records())
        assert rebuilt.total_basic() == accountant.total_basic()
        assert (rebuilt.total_advanced(1e-6)
                == accountant.total_advanced(1e-6))
        assert rebuilt.num_spends == accountant.num_spends

    def test_heterogeneous_history_round_trips(self):
        accountant = PrivacyAccountant()
        accountant.spend(0.5, 1e-7, label="sparse-vector")
        accountant.spend(0.01, 0.0, label="oracle:a")
        rebuilt = PrivacyAccountant.from_records(accountant.to_records())
        assert rebuilt.total_basic() == accountant.total_basic()
        # heterogeneous history falls back to basic in both
        assert (rebuilt.total_advanced(1e-6)
                == accountant.total_advanced(1e-6))

    def test_records_json_serializable(self):
        accountant = PrivacyAccountant()
        accountant.spend(0.1, 1e-9, label="x")
        text = json.dumps(accountant.to_records())
        rebuilt = PrivacyAccountant.from_records(json.loads(text))
        assert rebuilt.total_basic() == accountant.total_basic()

    def test_budget_restored_via_kwargs(self):
        accountant = PrivacyAccountant(epsilon_budget=1.0)
        accountant.spend(0.9)
        rebuilt = PrivacyAccountant.from_records(
            accountant.to_records(), epsilon_budget=1.0)
        assert rebuilt.remaining_epsilon() == pytest.approx(0.1)

    def test_empty_round_trip(self):
        rebuilt = PrivacyAccountant.from_records([])
        assert rebuilt.num_spends == 0


class TestLedgerAppendReplay:
    def test_open_spend_close_replay(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "pmw-convex", {"alpha": 0.3},
                               analyst="alice", dataset="default")
            ledger.append_spends("s1", [
                {"epsilon": 1.0, "delta": 5e-7, "label": "sparse-vector"},
                {"epsilon": 0.05, "delta": 0.0, "label": "oracle:q"},
            ])
            ledger.append_close("s1")
        state = replay_ledger(path)
        assert state.session_ids == ["s1"]
        assert state.opens["s1"]["params"] == {"alpha": 0.3}
        assert "s1" in state.closed
        accountant = state.accountant_for("s1")
        assert accountant.num_spends == 2
        assert accountant.total_basic().epsilon == pytest.approx(1.05)

    def test_seq_continues_across_reopen(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "pmw-linear", {})
        with BudgetLedger(path) as ledger:
            ledger.append_spends("s1", [{"epsilon": 0.1, "delta": 0.0}])
        state = replay_ledger(path)
        assert state.last_seq == 1
        assert state.accountant_for("s1").num_spends == 1

    def test_multiple_sessions_interleaved(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("a", "pmw-convex", {})
            ledger.append_open("b", "pmw-convex", {})
            ledger.append_spends("a", [{"epsilon": 0.1, "delta": 0.0}])
            ledger.append_spends("b", [{"epsilon": 0.2, "delta": 0.0}])
            ledger.append_spends("a", [{"epsilon": 0.3, "delta": 0.0}])
        state = replay_ledger(path)
        assert state.accountant_for("a").total_basic().epsilon == \
            pytest.approx(0.4)
        assert state.accountant_for("b").total_basic().epsilon == \
            pytest.approx(0.2)

    def test_unknown_session_accountant_raises(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "pmw-convex", {})
        with pytest.raises(ValidationError, match="no 'open' record"):
            replay_ledger(path).accountant_for("ghost")


class TestCrashSafety:
    def _write_lines(self, path, lines):
        path.write_text("\n".join(lines) + "\n")

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "pmw-convex", {})
            ledger.append_spends("s1", [{"epsilon": 0.1, "delta": 0.0}])
        # simulate a crash mid-write of the next record
        with open(path, "a") as handle:
            handle.write('{"seq": 2, "kind": "spend", "sess')
        state = replay_ledger(path)
        assert state.last_seq == 1
        assert state.accountant_for("s1").num_spends == 1

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        self._write_lines(path, [
            '{"seq": 0, "kind": "open", "session": "s1", '
            '"mechanism": "m", "params": {}}',
            'garbage not json',
            '{"seq": 2, "kind": "close", "session": "s1"}',
        ])
        with pytest.raises(ValidationError, match="corrupt"):
            replay_ledger(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        self._write_lines(path, [
            '{"seq": 0, "kind": "open", "session": "s1", '
            '"mechanism": "m", "params": {}}',
            '{"seq": 5, "kind": "close", "session": "s1"}',
        ])
        with pytest.raises(ValidationError, match="sequence gap"):
            replay_ledger(path)

    def test_torn_but_parseable_final_line_dropped_by_replay(self,
                                                             tmp_path):
        """Replay and reopen must agree on the torn-tail criterion: a
        final line that is valid JSON but lacks its newline was torn
        mid-write and must be dropped by BOTH, or a restore would count a
        spend the next reopen truncates."""
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "pmw-convex", {})
            ledger.append_spends("s1", [{"epsilon": 0.1, "delta": 0.0}])
        with open(path, "a") as handle:  # complete JSON, torn newline
            handle.write('{"seq":2,"kind":"spend","session":"s1",'
                         '"epsilon":0.5,"delta":0.0,"label":"x"}')
        replayed = replay_ledger(path)
        assert replayed.accountant_for("s1").total_basic().epsilon == \
            pytest.approx(0.1)  # the torn 0.5 spend is NOT counted
        with BudgetLedger(path) as ledger:  # reopen truncates the same line
            pass
        assert replay_ledger(path).last_seq == 1

    def test_torn_reopen_continues_after_dropped_line(self, tmp_path):
        """A ledger reopened over a torn tail reuses the dropped seq."""
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "pmw-convex", {})
        with open(path, "a") as handle:
            handle.write('{"seq": 1, "kind":')  # torn
        with BudgetLedger(path) as ledger:
            ledger.append_spends("s1", [{"epsilon": 0.1, "delta": 0.0}])
        state = replay_ledger(path)
        assert state.last_seq == 1
        assert state.accountant_for("s1").num_spends == 1

    def test_unjournalable_params_marked(self, tmp_path):
        path = tmp_path / "budget.jsonl"
        with BudgetLedger(path) as ledger:
            ledger.append_open("s1", "pmw-convex", {"oracle": object()})
        record = replay_ledger(path).opens["s1"]
        assert "__unjournalable__" in record["params"]["oracle"]
