"""Tests for batch planning and cross-session concurrency."""

import threading
import time

import pytest

from repro.core.pmw_cm import PrivateMWConvex
from repro.erm.oracle import NonPrivateOracle
from repro.losses.families import random_quadratic_family
from repro.serve.cache import AnswerCache, CachedAnswer
from repro.serve.planner import concurrent_map, plan_batch
from repro.serve.session import Session


def make_session(dataset, **overrides):
    params = dict(scale=4.0, alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
                  schedule="calibrated", max_updates=8, solver_steps=120,
                  rng=0)
    params.update(overrides)
    mechanism = PrivateMWConvex(dataset, NonPrivateOracle(120), **params)
    return Session("s1", mechanism)


class TestPlanBatch:
    def test_fresh_batch_all_mechanism(self, cube_dataset):
        session = make_session(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=0)
        plan = plan_batch(session, losses)
        assert plan.mechanism == [0, 1, 2, 3]
        assert not plan.cached and not plan.duplicates and not plan.hypothesis
        assert plan.free_fraction == 0.0

    def test_duplicates_detected(self, cube_dataset):
        session = make_session(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 2, rng=0)
        batch = [losses[0], losses[1], losses[0], losses[1], losses[0]]
        plan = plan_batch(session, batch)
        assert plan.mechanism == [0, 1]
        assert plan.duplicates == {2: 0, 3: 1, 4: 0}
        assert plan.free_fraction == pytest.approx(3 / 5)

    def test_rebuilt_equal_losses_are_duplicates(self, cube_dataset):
        """Fingerprint-based dedup: equal parameters, distinct objects."""
        session = make_session(cube_dataset)
        a = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        b = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        plan = plan_batch(session, [a, b])
        assert plan.duplicates == {1: 0}

    def test_cache_hits_partitioned(self, cube_dataset):
        session = make_session(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=0)
        cache = AnswerCache()
        cache.put("s1", losses[1].fingerprint(),
                  CachedAnswer(1.0, "no-update", 0))
        plan = plan_batch(session, losses, cache=cache)
        assert plan.cached == [1]
        assert plan.mechanism == [0, 2]

    def test_halted_session_goes_hypothesis(self, concentrated_dataset):
        session = make_session(concentrated_dataset, max_updates=1,
                               noise_multiplier=0.0)
        losses = random_quadratic_family(concentrated_dataset.universe, 3,
                                         rng=1)
        session.answer(losses[0])  # forces the single update -> halt
        assert session.halted
        plan = plan_batch(session, losses[1:])
        assert plan.hypothesis == [0, 1]
        assert not plan.mechanism
        assert plan.free_fraction == 1.0

    def test_describe_mentions_lanes(self, cube_dataset):
        session = make_session(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 2, rng=0)
        text = plan_batch(session, losses).describe()
        assert "2 queries" in text and "mechanism" in text


class TestConcurrentMap:
    def test_results_keyed_by_session(self):
        out = concurrent_map(lambda sid, qs: (sid, sum(qs)),
                             {"a": [1, 2], "b": [3, 4]}, max_workers=4)
        assert out == {"a": ("a", 3), "b": ("b", 7)}

    def test_empty_batches(self):
        assert concurrent_map(lambda sid, qs: None, {}) == {}

    def test_exceptions_propagate(self):
        def worker(sid, qs):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            concurrent_map(worker, {"a": [], "b": []}, max_workers=2)

    def test_actually_concurrent(self):
        barrier = threading.Barrier(3, timeout=5.0)

        def worker(sid, qs):
            barrier.wait()  # deadlocks unless all three run in parallel
            return sid

        out = concurrent_map(worker, {"a": [], "b": [], "c": []},
                             max_workers=3)
        assert set(out) == {"a", "b", "c"}

    def test_single_batch_runs_inline(self):
        main_thread = threading.current_thread()
        out = concurrent_map(
            lambda sid, qs: threading.current_thread() is main_thread,
            {"a": []},
        )
        assert out == {"a": True}

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_nonpositive_max_workers_rejected(self, bad):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError, match="max_workers"):
            concurrent_map(lambda sid, qs: None, {"a": []}, max_workers=bad)

    def test_max_workers_one_equals_serial(self):
        """max_workers=1 is the serial path: inline, in dict order."""
        main_thread = threading.current_thread()
        order = []

        def worker(sid, qs):
            order.append(sid)
            return threading.current_thread() is main_thread

        out = concurrent_map(worker, {"b": [], "a": [], "c": []},
                             max_workers=1)
        assert out == {"b": True, "a": True, "c": True}
        assert order == ["b", "a", "c"]

    def test_raising_worker_does_not_truncate_others(self):
        """One failing session propagates, but every other submitted
        worker still runs to completion (the pool drains before the
        exception surfaces) — no mechanism stream is cut mid-batch."""
        completed = []

        def worker(sid, qs):
            if sid == "poison":
                raise RuntimeError("boom")
            time.sleep(0.05)  # still running when poison's error surfaces
            completed.append(sid)
            return sid

        with pytest.raises(RuntimeError, match="boom"):
            concurrent_map(worker,
                           {"poison": [], "alive-1": [], "alive-2": []},
                           max_workers=3)
        assert sorted(completed) == ["alive-1", "alive-2"]
