"""Tests for the mechanism registry and oracle specs."""

import pytest

from repro.core.pmw_cm import PrivateMWConvex
from repro.core.pmw_linear import PrivateMWLinear
from repro.erm.noisy_sgd import NoisyGradientDescentOracle
from repro.erm.oracle import NonPrivateOracle
from repro.exceptions import ValidationError
from repro.serve.registry import (
    MechanismRegistry,
    build_oracle,
    default_registry,
)


class TestBuildOracle:
    def test_name_spec(self):
        oracle = build_oracle("noisy-sgd", 1.0, 1e-6)
        assert isinstance(oracle, NoisyGradientDescentOracle)

    def test_dict_spec_with_extras(self):
        oracle = build_oracle({"name": "non-private", "solver_steps": 17},
                              1.0, 1e-6)
        assert isinstance(oracle, NonPrivateOracle)
        assert oracle.solver_steps == 17

    def test_instance_passthrough(self):
        instance = NonPrivateOracle(50)
        assert build_oracle(instance, 1.0, 1e-6) is instance

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError, match="unknown oracle"):
            build_oracle("perfect-oracle", 1.0, 1e-6)

    def test_dict_without_name_raises(self):
        with pytest.raises(ValidationError, match="'name'"):
            build_oracle({"steps": 3}, 1.0, 1e-6)


class TestDefaultRegistry:
    def test_builtins_present(self):
        registry = default_registry()
        assert "pmw-convex" in registry
        assert "pmw-linear" in registry
        assert registry.names() == ["pmw-convex", "pmw-linear"]

    def test_create_pmw_convex(self, cube_dataset, serve_params):
        registry = default_registry()
        mechanism = registry.create("pmw-convex", cube_dataset, rng=0,
                                    **serve_params)
        assert isinstance(mechanism, PrivateMWConvex)

    def test_create_pmw_linear(self, cube_dataset):
        registry = default_registry()
        mechanism = registry.create("pmw-linear", cube_dataset, rng=0,
                                    alpha=0.2, epsilon=1.0, delta=1e-6,
                                    max_updates=5)
        assert isinstance(mechanism, PrivateMWLinear)

    def test_unknown_mechanism_raises(self, cube_dataset):
        with pytest.raises(ValidationError, match="unknown mechanism"):
            default_registry().create("mwem-deluxe", cube_dataset)

    def test_describe_lists_builtins(self):
        text = default_registry().describe()
        assert "pmw-convex" in text and "pmw-linear" in text


class TestPluggability:
    def test_register_by_decorator_and_create(self, cube_dataset):
        registry = MechanismRegistry()

        @registry.register("stub", description="test stub")
        def build_stub(dataset, *, rng=None, **params):
            return ("stub-mechanism", dataset.n, params)

        built = registry.create("stub", cube_dataset, alpha=0.1)
        assert built == ("stub-mechanism", 300, {"alpha": 0.1})

    def test_duplicate_name_raises(self):
        registry = MechanismRegistry()
        registry.register("m", lambda dataset, **kw: None)
        with pytest.raises(ValidationError, match="already registered"):
            registry.register("m", lambda dataset, **kw: None)

    def test_restore_unsupported_raises(self, cube_dataset):
        registry = MechanismRegistry()
        registry.register("m", lambda dataset, **kw: None)
        with pytest.raises(ValidationError, match="snapshot restore"):
            registry.restore("m", {}, cube_dataset)
