"""Tests for `repro.serve.resilience` and the resilience plumbing.

Covers the deadline object and its wire crossing, the circuit-breaker
state machine, full-jitter backoff bounds, the `Shed` exception
hierarchy's machine-readable reasons, the `ResilientClient` retry loop
(breaker fast-fail, idempotency-key reuse, deadline bounding), the
service-side exactly-once answer journal (replay, restore, compaction),
and the gateway's priority lanes + deadline-aware admission.
"""

import random
import threading
import time

import numpy as np
import pytest

from repro.exceptions import (
    DeadlineUnmeetable,
    Overloaded,
    RequestTimeout,
    Shed,
    ShardUnavailable,
    ValidationError,
)
from repro.losses.families import random_quadratic_family
from repro.serve.ledger import (
    decode_answer_value,
    encode_answer_value,
    replay_ledger,
)
from repro.serve.metrics import GatewayMetrics
from repro.serve.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    Deadline,
    ResilientClient,
    full_jitter_delay,
)
from repro.serve.service import PMWService


def open_convex(service, **overrides):
    params = dict(oracle="non-private", scale=4.0, alpha=0.3, beta=0.1,
                  epsilon=2.0, delta=1e-6, schedule="calibrated",
                  max_updates=4, solver_steps=60, noise_multiplier=0.0)
    params.update(overrides)
    return service.open_session("pmw-convex", **params)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- Deadline -----------------------------------------------------------------


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == pytest.approx(-0.5)

    def test_wire_round_trip_preserves_remaining(self):
        sender = FakeClock(100.0)
        receiver = FakeClock(7.0)  # monotonic clocks never align
        deadline = Deadline.after(3.0, clock=sender)
        sender.advance(1.0)
        rebuilt = Deadline.from_wire(deadline.to_wire(), clock=receiver)
        assert rebuilt.remaining() == pytest.approx(2.0)

    def test_wire_none_maps_to_none(self):
        assert Deadline.from_wire(None) is None

    def test_expired_deadline_wires_as_zero(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(5.0)
        assert deadline.to_wire() == 0.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_nonfinite_budget_rejected(self, bad):
        with pytest.raises(ValidationError):
            Deadline.after(bad)


# -- CircuitBreaker -----------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_open_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_clears_the_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_reset_after_moves_open_to_half_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(4.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_allows_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()       # claims the probe slot
        assert not breaker.allow()   # second caller is refused
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after=1.0,
                                 clock=clock)
        breaker.trip()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()  # one failure suffices in half-open
        assert breaker.state == OPEN

    def test_note_restore_skips_the_wait(self):
        breaker = CircuitBreaker(failure_threshold=1,
                                 reset_after=float("inf"),
                                 clock=FakeClock())
        breaker.trip()
        assert breaker.state == OPEN
        breaker.note_restore()
        assert breaker.state == HALF_OPEN

    def test_note_restore_is_a_noop_when_closed(self):
        breaker = CircuitBreaker(clock=FakeClock())
        breaker.note_restore()
        assert breaker.state == CLOSED

    @pytest.mark.parametrize("knobs", [
        dict(failure_threshold=0), dict(reset_after=-1.0),
    ])
    def test_bad_knobs_rejected(self, knobs):
        with pytest.raises(ValidationError):
            CircuitBreaker(**knobs)


# -- full-jitter backoff ------------------------------------------------------


class TestFullJitter:
    def test_delays_bounded_by_exponential_cap(self):
        rng = random.Random(0)
        for attempt in range(10):
            for _ in range(50):
                delay = full_jitter_delay(attempt, base=0.05, cap=2.0,
                                          rng=rng)
                assert 0.0 <= delay <= min(2.0, 0.05 * 2 ** attempt)

    def test_seeded_rng_is_deterministic(self):
        a = [full_jitter_delay(n, base=0.1, cap=5.0, rng=random.Random(7))
             for n in range(5)]
        b = [full_jitter_delay(n, base=0.1, cap=5.0, rng=random.Random(7))
             for n in range(5)]
        assert a == b


# -- Shed hierarchy -----------------------------------------------------------


class TestShedHierarchy:
    def test_all_sheds_carry_machine_readable_reasons(self):
        cases = [
            (Overloaded("x", session_id="s"), "overload"),
            (RequestTimeout("x", session_id="s", waited=1.0), "timeout"),
            (DeadlineUnmeetable("x", session_id="s"), "deadline"),
            (ShardUnavailable("x", shard_id="shard-00", reason="dead"),
             "dead"),
        ]
        for exc, reason in cases:
            assert isinstance(exc, Shed)
            assert exc.reason == reason

    def test_deadline_unmeetable_reports_the_gap(self):
        exc = DeadlineUnmeetable("x", session_id="s",
                                 deadline_remaining=0.1,
                                 estimated_wait=2.5)
        assert exc.deadline_remaining == 0.1
        assert exc.estimated_wait == 2.5


# -- ResilientClient ----------------------------------------------------------


class FlakyTarget:
    """Fails the first ``failures`` submits, then answers."""

    def __init__(self, failures, *, exc=None):
        self.failures = failures
        self.exc = exc
        self.calls = []

    def shard_of(self, session_id):
        return "shard-00"

    def submit(self, session_id, query, *, idempotency_key=None,
               deadline=None, **kwargs):
        self.calls.append(idempotency_key)
        if len(self.calls) <= self.failures:
            raise self.exc or ShardUnavailable(
                "down", shard_id="shard-00", reason="died-in-flight")
        return f"answer:{query}"


def make_client(target, **overrides):
    knobs = dict(rng=0, sleep=lambda seconds: None, client_id="test")
    knobs.update(overrides)
    return ResilientClient(target, **knobs)


class TestResilientClient:
    def test_retries_until_success(self):
        target = FlakyTarget(failures=2)
        client = make_client(target, max_attempts=5)
        assert client.submit("s", "q") == "answer:q"
        assert len(target.calls) == 3
        assert client.stats["retries"] >= 2
        assert client.stats["successes"] == 1

    def test_same_idempotency_key_on_every_attempt(self):
        target = FlakyTarget(failures=3)
        client = make_client(target, max_attempts=6, breaker_failures=10)
        client.submit("s", "q")
        assert len(set(target.calls)) == 1
        assert target.calls[0].startswith("test:")

    def test_fresh_requests_get_fresh_keys(self):
        target = FlakyTarget(failures=0)
        client = make_client(target)
        client.submit("s", "a")
        client.submit("s", "b")
        assert len(set(target.calls)) == 2

    def test_exhausted_attempts_raise_the_last_error(self):
        target = FlakyTarget(failures=99)
        client = make_client(target, max_attempts=3, breaker_failures=10)
        with pytest.raises(ShardUnavailable):
            client.submit("s", "q")
        assert len(target.calls) == 3

    def test_open_breaker_fails_fast_without_touching_target(self):
        target = FlakyTarget(failures=99)
        client = make_client(target, max_attempts=4, breaker_failures=2,
                             breaker_reset=1e9)
        with pytest.raises(ShardUnavailable):
            client.submit("s", "q")
        calls_before = len(target.calls)
        assert client.breaker_states["shard-00"] == OPEN
        with pytest.raises(ShardUnavailable) as excinfo:
            client.submit("s", "q2")
        assert excinfo.value.reason == "breaker-open"
        assert len(target.calls) == calls_before  # never reached the shard
        assert client.stats["breaker_fast_fails"] >= 1

    def test_note_restore_lets_a_probe_through(self):
        target = FlakyTarget(failures=99)
        client = make_client(target, max_attempts=2, breaker_failures=1,
                             breaker_reset=1e9)
        with pytest.raises(ShardUnavailable):
            client.submit("s", "q")
        target.failures = 0  # the shard came back
        client.note_restore("shard-00")
        assert client.breaker_states["shard-00"] == HALF_OPEN
        assert client.submit("s", "q2").startswith("answer:")
        assert client.breaker_states["shard-00"] == CLOSED

    def test_overloaded_is_retried_but_not_a_breaker_failure(self):
        target = FlakyTarget(failures=2, exc=Overloaded("busy"))
        client = make_client(target, max_attempts=5, breaker_failures=1)
        assert client.submit("s", "q") == "answer:q"
        assert client.breaker_states["shard-00"] == CLOSED

    def test_deadline_bounds_the_retry_loop(self):
        clock = FakeClock()

        def sleeping(seconds):
            clock.advance(seconds)

        target = FlakyTarget(failures=99)
        client = make_client(target, max_attempts=50, base_delay=0.5,
                             max_delay=0.5, breaker_failures=100,
                             sleep=sleeping, clock=clock)
        with pytest.raises(ShardUnavailable):
            client.submit("s", "q", deadline=2.0)
        assert len(target.calls) < 50  # the deadline cut the loop short

    def test_expired_deadline_raises_without_an_attempt(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(2.0)
        target = FlakyTarget(failures=0)
        client = make_client(target, clock=clock)
        with pytest.raises(DeadlineUnmeetable):
            client.submit("s", "q", deadline=deadline)
        assert target.calls == []

    def test_unsharded_target_uses_one_breaker(self):
        class Bare:
            def submit(self, session_id, query, **kwargs):
                raise ShardUnavailable("down")

        client = make_client(Bare(), max_attempts=2, breaker_failures=10)
        with pytest.raises(ShardUnavailable):
            client.submit("s", "q")
        assert "service" in client.breaker_states

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValidationError):
            ResilientClient(FlakyTarget(0), max_attempts=0)


# -- answer-value encoding ----------------------------------------------------


class TestAnswerEncoding:
    def test_float_round_trips_bitwise(self):
        value = 0.1 + 0.2  # a float with untidy digits
        assert decode_answer_value(encode_answer_value(value)) == value

    def test_ndarray_round_trips_bitwise(self):
        value = np.random.default_rng(3).normal(size=(4, 2))
        decoded = decode_answer_value(encode_answer_value(value))
        assert decoded.dtype == value.dtype
        assert decoded.shape == value.shape
        assert np.array_equal(decoded, value)


# -- service-side exactly-once ------------------------------------------------


class TestServiceIdempotency:
    def _query(self, universe, seed=0):
        return random_quadratic_family(universe, 1, rng=seed)[0]

    def test_replay_is_bitwise_and_free(self, cube_dataset, tmp_path):
        with PMWService(cube_dataset,
                        ledger_path=tmp_path / "ledger.jsonl") as service:
            sid = open_convex(service)
            query = self._query(cube_dataset.universe)
            first = service.submit(sid, query, idempotency_key="c:0")
            accountant = service.session(sid).accountant
            spent_after_first = accountant.total_basic().epsilon
            replay = service.submit(sid, query, idempotency_key="c:0")
            assert np.array_equal(np.asarray(replay.value),
                                  np.asarray(first.value))
            assert replay.source == first.source
            assert replay.epsilon_spent == first.epsilon_spent
            assert accountant.total_basic().epsilon == spent_after_first

    def test_replay_survives_restart_via_ledger(self, cube_dataset,
                                                tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        with PMWService(cube_dataset, ledger_path=ledger_path) as service:
            sid = open_convex(service, rng=5)
            query = self._query(cube_dataset.universe)
            first = service.submit(sid, query, idempotency_key="c:0")
            total = service.session(sid).accountant.total_basic().epsilon
        restored = PMWService.restore(cube_dataset,
                                      ledger_path=ledger_path)
        with restored:
            replay = restored.submit(sid, query, idempotency_key="c:0")
            assert np.array_equal(np.asarray(replay.value),
                                  np.asarray(first.value))
            # The replay re-charged nothing.
            restored_total = restored.session(
                sid).accountant.total_basic().epsilon
            assert restored_total == total

    def test_cross_session_key_reuse_rejected(self, cube_dataset, tmp_path):
        with PMWService(cube_dataset,
                        ledger_path=tmp_path / "ledger.jsonl") as service:
            sid_a = open_convex(service)
            sid_b = open_convex(service)
            query = self._query(cube_dataset.universe)
            service.submit(sid_a, query, idempotency_key="c:0")
            with pytest.raises(ValidationError):
                service.submit(sid_b, query, idempotency_key="c:0")

    def test_batch_keys_partition_replayed_and_fresh(self, cube_dataset,
                                                     tmp_path):
        with PMWService(cube_dataset,
                        ledger_path=tmp_path / "ledger.jsonl") as service:
            sid = open_convex(service)
            queries = random_quadratic_family(cube_dataset.universe, 2,
                                              rng=1)
            first = service.serve_session_batch(
                sid, queries, idempotency_keys=["k:0", "k:1"])
            # Replay one key alongside a fresh unkeyed query.
            fresh = self._query(cube_dataset.universe, seed=9)
            second = service.serve_session_batch(
                sid, [queries[0], fresh], idempotency_keys=["k:0", None])
            assert np.array_equal(np.asarray(second[0].value),
                                  np.asarray(first[0].value))

    def test_batch_key_length_mismatch_rejected(self, cube_dataset,
                                                tmp_path):
        with PMWService(cube_dataset,
                        ledger_path=tmp_path / "ledger.jsonl") as service:
            sid = open_convex(service)
            queries = random_quadratic_family(cube_dataset.universe, 2,
                                              rng=1)
            with pytest.raises(ValidationError):
                service.serve_session_batch(sid, queries,
                                            idempotency_keys=["k:0"])

    def test_answers_survive_compaction(self, cube_dataset, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        with PMWService(cube_dataset, ledger_path=ledger_path) as service:
            sid = open_convex(service, rng=5)
            query = self._query(cube_dataset.universe)
            first = service.submit(sid, query, idempotency_key="c:0")
            service.ledger.compact()
        state = replay_ledger(ledger_path)
        assert "c:0" in state.answers
        restored = PMWService.restore(cube_dataset,
                                      ledger_path=ledger_path)
        with restored:
            replay = restored.submit(sid, query, idempotency_key="c:0")
            assert np.array_equal(np.asarray(replay.value),
                                  np.asarray(first.value))

    def test_unkeyed_requests_journal_nothing(self, cube_dataset,
                                              tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        with PMWService(cube_dataset, ledger_path=ledger_path) as service:
            sid = open_convex(service)
            service.submit(sid, self._query(cube_dataset.universe))
        assert replay_ledger(ledger_path).answers == {}


# -- gateway lanes + deadline admission ---------------------------------------


class TestGatewayLanes:
    def test_cached_queries_autoclassify_fast(self, cube_dataset):
        with PMWService(cube_dataset) as service:
            sid = open_convex(service)
            query = random_quadratic_family(cube_dataset.universe, 1,
                                            rng=0)[0]
            with service.gateway(workers=2) as gateway:
                gateway.submit(sid, query)          # first: bulk, fills cache
                gateway.submit(sid, query)          # now cached: fast lane
                snapshot = gateway.metrics.snapshot()
            lanes = snapshot["queue_wait_lanes"]
            assert lanes["bulk"]["count"] >= 1
            assert lanes["fast"]["count"] >= 1

    def test_explicit_lane_pins_and_validates(self, cube_dataset):
        with PMWService(cube_dataset) as service:
            sid = open_convex(service)
            query = random_quadratic_family(cube_dataset.universe, 1,
                                            rng=0)[0]
            with service.gateway(workers=2) as gateway:
                gateway.submit(sid, query, lane="fast")
                with pytest.raises(ValidationError):
                    gateway.submit(sid, query, lane="warp")
                assert gateway.metrics.snapshot()[
                    "queue_wait_lanes"]["fast"]["count"] == 1

    def test_fast_workers_knob_validated(self, cube_dataset):
        with PMWService(cube_dataset) as service:
            with pytest.raises(ValidationError):
                service.gateway(workers=2, fast_workers=2)
            with pytest.raises(ValidationError):
                service.gateway(workers=2, fast_workers=-1)

    def test_reserved_fast_worker_skips_bulk_under_load(self, cube_dataset):
        """With one general worker wedged in a bulk batch, a fast-lane
        request still completes promptly on the reserved worker."""
        with PMWService(cube_dataset) as service:
            sid_bulk = open_convex(service)
            sid_fast = open_convex(service)
            query = random_quadratic_family(cube_dataset.universe, 1,
                                            rng=0)[0]
            release = threading.Event()
            original = service.serve_session_batch

            def slow_batch(session_id, queries, **kwargs):
                if session_id == sid_bulk:
                    release.wait(10.0)
                return original(session_id, queries, **kwargs)

            service.serve_session_batch = slow_batch
            try:
                with service.gateway(workers=2, fast_workers=1) as gateway:
                    blocked = gateway.submit_async(sid_bulk, query,
                                                   lane="bulk")
                    result = gateway.submit(sid_fast, query, lane="fast",
                                            timeout=5.0)
                    assert result.session_id == sid_fast
                    release.set()
                    blocked.result(timeout=10.0)
            finally:
                release.set()
                service.serve_session_batch = original

    def test_expired_deadline_sheds_at_enqueue(self, cube_dataset):
        clock = FakeClock()
        with PMWService(cube_dataset) as service:
            sid = open_convex(service)
            query = random_quadratic_family(cube_dataset.universe, 1,
                                            rng=0)[0]
            deadline = Deadline.after(0.5, clock=clock)
            clock.advance(1.0)
            with service.gateway(workers=1) as gateway:
                with pytest.raises(DeadlineUnmeetable):
                    gateway.submit(sid, query, deadline=deadline)
                snapshot = gateway.metrics.snapshot()
            assert snapshot["shed"]["deadline"] == 1

    def test_doomed_deadline_sheds_under_pressure(self, cube_dataset):
        """Queue-wait history says p-quantile wait >> deadline: shed at
        enqueue with the estimate attached, instead of queueing."""
        with PMWService(cube_dataset) as service:
            sid = open_convex(service)
            query = random_quadratic_family(cube_dataset.universe, 1,
                                            rng=0)[0]
            release = threading.Event()
            original = service.serve_session_batch

            def slow_batch(session_id, queries, **kwargs):
                release.wait(10.0)
                return original(session_id, queries, **kwargs)

            service.serve_session_batch = slow_batch
            try:
                with service.gateway(workers=1,
                                     admission_min_samples=4) as gateway:
                    # Seed the bulk lane's wait history: p90 ~ 3s.
                    for _ in range(8):
                        gateway.metrics.record_claim(
                            sid, [3.0], 0, lane="bulk")
                    wedged = gateway.submit_async(sid, query)  # occupies
                    with pytest.raises(DeadlineUnmeetable) as excinfo:
                        gateway.submit(sid, query, deadline=0.05)
                    assert excinfo.value.estimated_wait > 0.05
                    release.set()
                    wedged.result(timeout=10.0)
            finally:
                release.set()
                service.serve_session_batch = original

    def test_generous_deadline_admitted_under_pressure(self, cube_dataset):
        with PMWService(cube_dataset) as service:
            sid = open_convex(service)
            query = random_quadratic_family(cube_dataset.universe, 1,
                                            rng=0)[0]
            with service.gateway(workers=1,
                                 admission_min_samples=4) as gateway:
                for _ in range(8):
                    gateway.metrics.record_claim(sid, [0.001], 0,
                                                 lane="bulk")
                result = gateway.submit(sid, query, deadline=30.0)
                assert result.session_id == sid

    def test_estimated_queue_wait_needs_min_samples(self):
        metrics = GatewayMetrics()
        assert metrics.estimated_queue_wait("bulk", min_samples=4) is None
        for _ in range(4):
            metrics.record_claim("s", [1.0], 0, lane="bulk")
        estimate = metrics.estimated_queue_wait("bulk", min_samples=4)
        assert estimate == pytest.approx(1.0, rel=0.5)

    def test_idempotency_key_flows_through_gateway(self, cube_dataset):
        with PMWService(cube_dataset) as service:
            sid = open_convex(service)
            query = random_quadratic_family(cube_dataset.universe, 1,
                                            rng=0)[0]
            with service.gateway(workers=1) as gateway:
                first = gateway.submit(sid, query, idempotency_key="g:0")
                replay = gateway.submit(sid, query, idempotency_key="g:0")
            assert np.array_equal(np.asarray(replay.value),
                                  np.asarray(first.value))
            assert replay.epsilon_spent == first.epsilon_spent


# -- resilient client over a real gateway -------------------------------------


class TestClientOverGateway:
    def test_exactly_once_through_the_full_local_stack(self, cube_dataset):
        """ResilientClient -> gateway -> service: a mid-flight failure
        injected after the service journaled the answer must replay, not
        re-serve — totals bitwise-equal to a crash-free oracle."""
        query = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        with PMWService(cube_dataset, rng=7) as oracle:
            sid_o = open_convex(oracle)
            expected = oracle.submit(sid_o, query, on_halt="hypothesis")
            oracle_total = oracle.session(
                sid_o).accountant.total_basic().epsilon
        with PMWService(cube_dataset, rng=7) as service:
            sid = open_convex(service)
            with service.gateway(workers=1) as gateway:
                failures = {"left": 1}
                original = gateway.submit

                def flaky_submit(session_id, q, **kwargs):
                    result = original(session_id, q, **kwargs)
                    if failures["left"]:
                        failures["left"] -= 1
                        # Reply "lost" after the service released it.
                        raise ShardUnavailable("reply lost",
                                               reason="died-in-flight")
                    return result

                gateway.submit = flaky_submit
                client = make_client(gateway, max_attempts=4)
                result = client.submit(sid, query)
                assert client.stats["attempts"] == 2
            total = service.session(sid).accountant.total_basic().epsilon
            # One logical request, one spend — the retry replayed.
            assert total == oracle_total
            assert np.array_equal(np.asarray(result.value),
                                  np.asarray(expected.value))
