"""Tests for the PMWService front door: serving, budgets, crash recovery."""

import os

import numpy as np
import pytest

from repro.exceptions import (
    MechanismHalted,
    PrivacyBudgetExhausted,
    ValidationError,
)
from repro.losses.families import (
    random_linear_queries,
    random_quadratic_family,
)
from repro.serve.service import PMWService


def open_convex(service, **overrides):
    params = dict(oracle="non-private", scale=4.0, alpha=0.3, beta=0.1,
                  epsilon=2.0, delta=1e-6, schedule="calibrated",
                  max_updates=8, solver_steps=120)
    params.update(overrides)
    return service.open_session("pmw-convex", analyst="alice", **params)


class TestSessions:
    def test_open_and_lookup(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        assert sid in service.session_ids
        assert service.session(sid).analyst == "alice"

    def test_session_ids_unique(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        assert open_convex(service) != open_convex(service)

    def test_explicit_session_id_collision(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        open_convex(service, session_id="mine")
        with pytest.raises(ValidationError, match="already in use"):
            open_convex(service, session_id="mine")

    def test_unknown_session(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        with pytest.raises(ValidationError, match="unknown session"):
            service.session("ghost")

    def test_named_datasets(self, cube_dataset, concentrated_dataset):
        service = PMWService(
            {"skewed": concentrated_dataset, "plain": cube_dataset}, rng=0)
        sid = open_convex(service, dataset="plain")
        assert service.session(sid).dataset == "plain"
        with pytest.raises(ValidationError, match="dataset name required"):
            open_convex(service)  # ambiguous: two datasets, no default

    def test_close_session(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        service.submit(sid, loss)
        service.close_session(sid, drop_cache=True)
        assert service.session(sid).closed
        with pytest.raises(ValidationError, match="closed"):
            service.submit(sid, loss)

    def test_closed_session_not_served_from_cache(self, cube_dataset):
        """close() means no more answers — not even cached replays."""
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        service.submit(sid, loss)
        # keep the entries: the refusal must come from the state check,
        # not from an empty cache
        service.close_session(sid, drop_cache=False)
        with pytest.raises(ValidationError, match="closed"):
            service.submit(sid, loss)
        with pytest.raises(ValidationError, match="closed"):
            service.answer_batch((sid, [loss]))


class TestServing:
    def test_submit_and_cache_idempotence(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=1)[0]
        first = service.submit(sid, loss)
        second = service.submit(sid, loss)
        assert second.source == "cache"
        assert second.free
        np.testing.assert_array_equal(first.value, second.value)

    def test_batch_lanes_and_order(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=2)
        batch = [losses[0], losses[1], losses[0], losses[2], losses[1]]
        results = service.answer_batch((sid, batch))
        assert len(results) == 5
        assert results[2].source == "cache"
        assert results[4].source == "cache"
        np.testing.assert_array_equal(results[2].value, results[0].value)
        # mechanism lane preserved stream order
        assert results[0].query_index == 0
        assert results[1].query_index == 1
        assert results[3].query_index == 2

    def test_multi_session_batch(self, cube_dataset, concentrated_dataset):
        service = PMWService(
            {"default": cube_dataset, "skewed": concentrated_dataset}, rng=0)
        a = open_convex(service, dataset="default")
        b = open_convex(service, dataset="skewed")
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=3)
        results = service.answer_batch({a: losses, b: losses},
                                       max_workers=2)
        assert set(results) == {a, b}
        assert all(len(r) == 3 for r in results.values())
        # sessions are independent streams
        assert [r.query_index for r in results[a]] == [0, 1, 2]
        assert [r.query_index for r in results[b]] == [0, 1, 2]

    def test_empty_batch_dict(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        assert service.answer_batch({}) == {}

    def test_empty_query_list_for_session(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        assert service.answer_batch({sid: []}) == {sid: []}
        assert service.answer_batch((sid, [])) == []

    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_answer_batch_rejects_nonpositive_workers(self, cube_dataset,
                                                      bad):
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        with pytest.raises(ValidationError, match="max_workers"):
            service.answer_batch({sid: [loss]}, max_workers=bad)
        # shedding happened at validation: nothing entered the stream
        assert service.session(sid).queries_served == 0

    def test_answer_batch_single_worker_matches_serial(self, cube_dataset):
        """max_workers=1 must be byte-identical to a serial loop of
        per-session batches, in dict order."""
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=9)

        def run(max_workers):
            service = PMWService(cube_dataset, rng=21)
            a = open_convex(service)
            b = open_convex(service)
            if max_workers is None:  # the reference: explicit serial calls
                out = {sid: service.serve_session_batch(sid, losses)
                       for sid in (a, b)}
            else:
                out = service.answer_batch({a: losses, b: losses},
                                           max_workers=max_workers)
            return [(r.source, np.asarray(r.value))
                    for sid in (a, b) for r in out[sid]]

        serial = run(None)
        pooled = run(1)
        for (source_a, value_a), (source_b, value_b) in zip(serial, pooled):
            assert source_a == source_b
            np.testing.assert_array_equal(value_a, value_b)

    def test_failing_session_leaves_others_complete(self, cube_dataset):
        """A worker raising mid-batch (closed session) propagates, but
        the other sessions' streams still run to completion."""
        service = PMWService(cube_dataset, rng=0)
        healthy = open_convex(service)
        broken = open_convex(service)
        service.close_session(broken)
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=5)
        with pytest.raises(ValidationError, match="closed"):
            service.answer_batch({broken: losses, healthy: losses},
                                 max_workers=2)
        assert service.session(healthy).queries_served == 3
        assert service.session(broken).queries_served == 0

    def test_linear_session_serving(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        sid = service.open_session("pmw-linear", alpha=0.2, epsilon=1.0,
                                   delta=1e-6, max_updates=5)
        queries = random_linear_queries(cube_dataset.universe, 3, rng=0)
        results = service.answer_batch((sid, queries + [queries[0]]))
        assert isinstance(results[0].value, float)
        assert results[3].source == "cache"
        assert results[3].value == results[0].value

    def test_on_halt_hypothesis_keeps_batch_total(self, concentrated_dataset):
        service = PMWService(concentrated_dataset, rng=0)
        sid = open_convex(service, max_updates=2, noise_multiplier=0.0)
        losses = random_quadratic_family(concentrated_dataset.universe, 6,
                                         rng=1)
        results = service.answer_batch((sid, losses), on_halt="hypothesis")
        assert len(results) == 6
        assert any(r.source == "hypothesis" for r in results)
        assert all(r.free for r in results if r.source == "hypothesis")

    def test_on_halt_raise_propagates(self, concentrated_dataset):
        service = PMWService(concentrated_dataset, rng=0)
        sid = open_convex(service, max_updates=1, noise_multiplier=0.0)
        losses = random_quadratic_family(concentrated_dataset.universe, 5,
                                         rng=1)
        with pytest.raises(MechanismHalted):
            service.answer_batch((sid, losses), on_halt="raise")

    def test_invalid_on_halt(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        with pytest.raises(ValidationError, match="on_halt"):
            service.submit(sid, loss, on_halt="explode")

    def test_first_query_cost_excludes_construction_spend(self,
                                                          cube_dataset):
        """Without a ledger, the sparse vector's lifetime spend must not be
        billed to the first query's marginal cost."""
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)  # no ledger_path
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        result = service.submit(sid, loss)
        if result.source == "no-update":
            assert result.epsilon_spent == 0.0
            assert result.free
        else:
            # an update bills exactly the oracle's per-round epsilon
            oracle_eps = service.session(sid).mechanism.config.oracle_epsilon
            assert result.epsilon_spent == pytest.approx(oracle_eps)

    def test_unfingerprintable_query_served_uncached(self, cube_dataset):
        """A custom loss the mechanism tolerates must not crash the serve
        layer — it is served, just never cached or deduplicated."""
        from repro.losses.quadratic import QuadraticLoss
        from repro.optimize.projections import L2Ball

        class CallableLoss(QuadraticLoss):
            def __init__(self, domain):
                super().__init__(domain)
                self.hook = lambda x: x

        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        loss = CallableLoss(L2Ball(cube_dataset.universe.dim))
        plain = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        first = service.submit(sid, loss)
        assert first.fingerprint == ""
        second = service.submit(sid, loss)
        assert second.source != "cache"  # uncacheable, answered again
        # and a batch mixing it with normal queries survives intact
        results = service.answer_batch((sid, [plain, loss, plain]))
        assert len(results) == 3
        assert results[2].source == "cache"  # normal dedup still works

    def test_concurrent_duplicate_submits_spend_once(self, cube_dataset):
        """Racing duplicate submissions must collapse onto one mechanism
        round (double-checked cache under the session lock)."""
        import threading
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=3)[0]
        results = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            results.append(service.submit(sid, loss))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        mechanism_rounds = [r for r in results if r.source != "cache"]
        assert len(mechanism_rounds) == 1
        assert service.session(sid).mechanism.queries_answered == 1

    def test_update_rounds_report_their_cost(self, concentrated_dataset):
        service = PMWService(concentrated_dataset, rng=0)
        sid = open_convex(service, noise_multiplier=0.0)
        loss = random_quadratic_family(concentrated_dataset.universe, 1,
                                       rng=1)[0]
        result = service.submit(sid, loss)
        assert result.source == "update"
        assert result.epsilon_spent > 0.0
        assert not result.free


class TestBudgets:
    def test_budget_armed_and_enforced(self, concentrated_dataset):
        service = PMWService(concentrated_dataset, rng=0)
        sid = open_convex(service, noise_multiplier=0.0,
                          epsilon_budget=1.01)
        # sparse vector took eps=1 at open; the first update should trip
        # the 1.01 odometer
        losses = random_quadratic_family(concentrated_dataset.universe, 4,
                                         rng=1)
        with pytest.raises(PrivacyBudgetExhausted):
            for loss in losses:
                service.submit(sid, loss)

    def test_budget_below_construction_cost_rejected(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        with pytest.raises(PrivacyBudgetExhausted):
            open_convex(service, epsilon_budget=0.5)  # SV alone costs 1.0

    def test_delta_budget_below_construction_cost_rejected(self,
                                                           cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        with pytest.raises(PrivacyBudgetExhausted):
            open_convex(service, delta_budget=1e-9)  # SV delta is 5e-7

    def test_exhausted_budget_refused_before_consuming_update_slot(
            self, concentrated_dataset):
        """Budget exhaustion must be a clean pre-flight refusal: no update
        slot burned, no oracle run, mechanism state untouched."""
        service = PMWService(concentrated_dataset, rng=0)
        sid = open_convex(service, noise_multiplier=0.0,
                          epsilon_budget=1.01)  # SV=1.0; no oracle round fits
        session = service.session(sid)
        loss = random_quadratic_family(concentrated_dataset.universe, 1,
                                       rng=1)[0]
        with pytest.raises(PrivacyBudgetExhausted):
            service.submit(sid, loss)
        mechanism = session.mechanism
        assert mechanism.updates_performed == 0
        assert mechanism.queries_answered == 0
        assert mechanism._sparse_vector.above_count == 0
        assert not mechanism.halted
        # free paths still work
        theta = session.answer_from_hypothesis(loss)
        assert loss.domain.contains(theta, tol=1e-9)

    def test_budget_survives_snapshot_restore(self, cube_dataset, tmp_path):
        """An armed epsilon_budget must stay armed after a snapshot-only
        restore (no ledger): the odometer is part of the state."""
        snap_path = tmp_path / "service.json"
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service, epsilon_budget=1.2, delta_budget=1e-5)
        service.snapshot(snap_path)
        twin = PMWService.restore(cube_dataset, snapshot=snap_path)
        accountant = twin.session(sid).accountant
        assert accountant.epsilon_budget == 1.2
        assert accountant.delta_budget == 1e-5
        with pytest.raises(PrivacyBudgetExhausted):
            accountant.spend(0.5)  # 1.0 (SV) + 0.5 > 1.2

    def test_exhausted_budget_batch_falls_back_to_hypothesis(
            self, cube_dataset):
        """With on_halt="hypothesis", budget exhaustion must not abort the
        batch: every query is served from the free path."""
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service, epsilon_budget=1.0001)  # SV took 1.0
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=2)
        results = service.answer_batch((sid, losses), on_halt="hypothesis")
        assert len(results) == 4
        assert all(r.source == "hypothesis" and r.free for r in results)

    def test_refused_query_leaves_linear_counter_untouched(
            self, cube_dataset):
        """A budget-refused linear query must not burn a stream slot."""
        service = PMWService(cube_dataset, rng=0)
        sid = service.open_session("pmw-linear", alpha=0.01, epsilon=1.0,
                                   delta=1e-6, max_updates=5,
                                   noise_multiplier=0.0,
                                   epsilon_budget=0.5001)  # SV took 0.5
        queries = random_linear_queries(cube_dataset.universe, 3, rng=0)
        mechanism = service.session(sid).mechanism
        for query in queries:
            with pytest.raises(PrivacyBudgetExhausted):
                service.submit(sid, query)
        assert mechanism.queries_answered == 0

    def test_budget_report_mentions_sessions(self, cube_dataset):
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        report = service.budget_report()
        assert sid in report and "cache" in report


class TestCrashRecovery:
    def test_ledger_resume_exact_totals(self, cube_dataset, tmp_path):
        ledger_path = tmp_path / "budget.jsonl"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        sid = open_convex(service)
        losses = random_quadratic_family(cube_dataset.universe, 5, rng=4)
        service.answer_batch((sid, losses))
        expected = service.session(sid).accountant.total_basic()
        expected_advanced = service.session(sid).accountant.total_advanced(
            1e-7)
        del service  # crash: object gone, only the journal survives

        resumed = PMWService.restore(cube_dataset, ledger_path=ledger_path)
        accountant = resumed.session(sid).accountant
        assert accountant.total_basic() == expected
        assert accountant.total_advanced(1e-7) == expected_advanced

    def test_cold_resume_journals_restarted_sparse_vector_on_first_use(
            self, cube_dataset, tmp_path):
        """A ledger-only resume restarts the sparse-vector interaction;
        its lifetime budget must appear in the accountant AND the journal
        the first time the restarted mechanism serves a paid round —
        while totals at restore time stay exactly pre-crash."""
        ledger_path = tmp_path / "budget.jsonl"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        sid = open_convex(service)
        pre_crash = service.session(sid).accountant.total_basic()
        del service

        resumed = PMWService.restore(cube_dataset, ledger_path=ledger_path)
        session = resumed.session(sid)
        assert session.accountant.total_basic() == pre_crash  # exact
        assert session.pending_spends  # the new SV interaction is owed
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        resumed.submit(sid, loss)
        total = session.accountant.total_basic()
        sv_eps = session.mechanism.config.sv_epsilon
        assert total.epsilon >= pre_crash.epsilon + sv_eps - 1e-12
        journaled = resumed.ledger.replay().accountant_for(sid)
        assert journaled.total_basic() == total  # journal saw it too

    def test_snapshot_adopted_into_new_ledger(self, cube_dataset, tmp_path):
        """Restoring a ledger-less snapshot WITH a fresh ledger_path must
        journal opens + full histories, so the new ledger alone can
        reconstruct totals at the next restart."""
        snap_path = tmp_path / "service.json"
        new_ledger = tmp_path / "adopted.jsonl"
        service = PMWService(cube_dataset, rng=0)  # no ledger originally
        sid = open_convex(service)
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=9)
        service.answer_batch((sid, losses))
        service.snapshot(snap_path)
        expected = service.session(sid).accountant.total_basic()
        del service

        adopted = PMWService.restore(cube_dataset, snapshot=snap_path,
                                     ledger_path=new_ledger)
        assert adopted.session(sid).accountant.total_basic() == expected
        del adopted
        # second restart, ledger-only: nothing may have been lost
        third = PMWService.restore(cube_dataset, ledger_path=new_ledger)
        assert third.session(sid).accountant.total_basic() == expected

    def test_resumed_service_keeps_journaling(self, cube_dataset, tmp_path):
        ledger_path = tmp_path / "budget.jsonl"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        sid = open_convex(service)
        del service

        resumed = PMWService.restore(cube_dataset, ledger_path=ledger_path,
                                     rng=1)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        resumed.submit(sid, loss)
        sid2 = open_convex(resumed)
        assert sid2 != sid  # counter resumed past journaled sessions
        # a third process sees both sessions with full histories
        third = PMWService.restore(cube_dataset, ledger_path=ledger_path)
        assert set(third.session_ids) == {sid, sid2}

    def test_snapshot_restore_rejects_same_size_different_content(
            self, cube_dataset, tmp_path):
        """The snapshot path must pin dataset content like the ledger
        path does — same universe size is not identity."""
        snap_path = tmp_path / "service.json"
        service = PMWService(cube_dataset, rng=0)
        open_convex(service)
        service.snapshot(snap_path)
        other = type(cube_dataset)(cube_dataset.universe,
                                   (cube_dataset.indices + 1)
                                   % cube_dataset.universe.size)
        with pytest.raises(ValidationError, match="different data"):
            PMWService.restore(other, snapshot=snap_path)

    def test_snapshot_restore_full_state(self, cube_dataset, tmp_path):
        snap_path = tmp_path / "service.json"
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service)
        losses = random_quadratic_family(cube_dataset.universe, 6, rng=5)
        service.answer_batch((sid, losses[:4]))
        service.snapshot(snap_path)

        twin = PMWService.restore(cube_dataset, snapshot=snap_path)
        # cache is warm: an already-served loss is free
        hit = twin.submit(sid, losses[0])
        assert hit.source == "cache"
        # continuation matches the original bit-for-bit
        for loss in losses[4:]:
            a = service.submit(sid, loss)
            b = twin.submit(sid, loss)
            assert a.source == b.source
            np.testing.assert_array_equal(a.value, b.value)

    def test_snapshot_plus_ledger_ledger_wins(self, cube_dataset, tmp_path):
        """Spends journaled after the snapshot (the crash window) must
        surface in the restored accountant."""
        ledger_path = tmp_path / "budget.jsonl"
        snap_path = tmp_path / "service.json"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        sid = open_convex(service)
        service.snapshot(snap_path)
        # post-snapshot work, journaled but not snapshotted
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=6)
        service.answer_batch((sid, losses))
        expected = service.session(sid).accountant.total_basic()
        del service

        resumed = PMWService.restore(cube_dataset, snapshot=snap_path,
                                     ledger_path=ledger_path)
        assert resumed.session(sid).accountant.total_basic() == expected

    def test_post_snapshot_sessions_survive_combined_restore(
            self, cube_dataset, tmp_path):
        """Sessions opened after the snapshot exist only in the ledger;
        combined restore must revive them (with exact totals) and must not
        reissue their ids."""
        ledger_path = tmp_path / "budget.jsonl"
        snap_path = tmp_path / "service.json"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        sid_a = open_convex(service)
        service.snapshot(snap_path)
        sid_b = open_convex(service)  # post-snapshot, journal-only
        losses = random_quadratic_family(cube_dataset.universe, 3, rng=8)
        service.answer_batch((sid_b, losses))
        expected_b = service.session(sid_b).accountant.total_basic()
        del service

        resumed = PMWService.restore(cube_dataset, snapshot=snap_path,
                                     ledger_path=ledger_path)
        assert set(resumed.session_ids) == {sid_a, sid_b}
        assert resumed.session(sid_b).accountant.total_basic() == expected_b
        sid_c = open_convex(resumed)
        assert sid_c not in (sid_a, sid_b)

    def test_snapshot_with_live_oracle_param(self, cube_dataset, tmp_path):
        """A session opened with an oracle *instance* still snapshots (the
        param becomes an unjournalable marker); restore then demands
        params_override, and no .tmp file is left behind."""
        import os as _os
        from repro.erm.oracle import NonPrivateOracle
        snap_path = tmp_path / "service.json"
        service = PMWService(cube_dataset, rng=0)
        sid = open_convex(service, oracle=NonPrivateOracle(120))
        service.snapshot(snap_path)
        assert not _os.path.exists(str(snap_path) + ".tmp")
        with pytest.raises(ValidationError, match="params_override"):
            PMWService.restore(cube_dataset, snapshot=snap_path)
        twin = PMWService.restore(
            cube_dataset, snapshot=snap_path,
            params_override={sid: {"oracle": NonPrivateOracle(120)}},
        )
        assert sid in twin.session_ids

    def test_restore_needs_some_source(self, cube_dataset):
        with pytest.raises(ValidationError, match="snapshot"):
            PMWService.restore(cube_dataset)

    def test_empty_custom_cache_is_kept(self, cube_dataset):
        """An empty AnswerCache is falsy (it defines __len__); the service
        must still honor it rather than silently building its own."""
        from repro.serve.cache import AnswerCache
        custom = AnswerCache(max_entries=7)
        service = PMWService(cube_dataset, cache=custom, rng=0)
        assert service.cache is custom

    def test_ledger_resume_rejects_same_size_different_content(
            self, cube_dataset, tmp_path):
        """Universe size alone is not identity: the journaled content
        digest must refuse a different dataset of equal size."""
        ledger_path = tmp_path / "budget.jsonl"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        open_convex(service)
        del service
        other = type(cube_dataset)(cube_dataset.universe,
                                   (cube_dataset.indices + 1)
                                   % cube_dataset.universe.size)
        with pytest.raises(ValidationError, match="different data"):
            PMWService.restore(other, ledger_path=ledger_path)

    def test_ledger_resume_rejects_different_dataset(self, cube_dataset,
                                                     tmp_path):
        """The open record pins the universe size, so a ledger-only resume
        over the wrong dataset fails loudly."""
        from repro.data.builders import signed_cube
        from repro.data.dataset import Dataset
        ledger_path = tmp_path / "budget.jsonl"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        open_convex(service)
        del service
        other = Dataset.uniform_random(signed_cube(4), 50, rng=0)
        with pytest.raises(ValidationError, match="different data"):
            PMWService.restore(other, ledger_path=ledger_path)

    def test_closed_sessions_stay_closed(self, cube_dataset, tmp_path):
        ledger_path = tmp_path / "budget.jsonl"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        sid = open_convex(service)
        service.close_session(sid)
        del service
        resumed = PMWService.restore(cube_dataset, ledger_path=ledger_path)
        assert resumed.session(sid).closed

    def test_ledger_file_grows_before_answers(self, cube_dataset, tmp_path):
        """Write-ahead property: after any submit, the journal already
        contains every spend the accountant knows about."""
        ledger_path = tmp_path / "budget.jsonl"
        service = PMWService(cube_dataset, ledger_path=ledger_path, rng=0)
        sid = open_convex(service)
        losses = random_quadratic_family(cube_dataset.universe, 4, rng=7)
        for loss in losses:
            service.submit(sid, loss)
            journaled = service.ledger.replay().accountant_for(sid)
            live = service.session(sid).accountant
            assert journaled.total_basic() == live.total_basic()
        assert os.path.getsize(ledger_path) > 0
