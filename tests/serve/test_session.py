"""Tests for session lifecycle, journaling cursor, and snapshots."""

import numpy as np
import pytest

from repro.core.pmw_cm import PrivateMWConvex
from repro.core.pmw_linear import PrivateMWLinear
from repro.erm.oracle import NonPrivateOracle
from repro.exceptions import MechanismHalted, ValidationError
from repro.losses.families import random_quadratic_family
from repro.losses.families import random_linear_queries
from repro.serve.session import Session, query_fingerprint


def make_convex_session(dataset, session_id="s1", **overrides):
    params = dict(scale=4.0, alpha=0.3, beta=0.1, epsilon=2.0, delta=1e-6,
                  schedule="calibrated", max_updates=8, solver_steps=120,
                  rng=0)
    params.update(overrides)
    mechanism = PrivateMWConvex(dataset, NonPrivateOracle(120), **params)
    return Session(session_id, mechanism, mechanism_name="pmw-convex",
                   analyst="alice", dataset="default")


class TestLifecycle:
    def test_initial_state(self, cube_dataset):
        session = make_convex_session(cube_dataset)
        assert session.state == "open"
        assert not session.closed
        assert not session.halted

    def test_close_blocks_answers(self, cube_dataset):
        session = make_convex_session(cube_dataset)
        session.close()
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        with pytest.raises(ValidationError, match="closed"):
            session.answer(loss)
        with pytest.raises(ValidationError, match="closed"):
            session.answer_from_hypothesis(loss)

    def test_halt_surfaces_as_mechanism_halted(self, concentrated_dataset):
        session = make_convex_session(concentrated_dataset, max_updates=2,
                                      noise_multiplier=0.0)
        losses = random_quadratic_family(concentrated_dataset.universe, 8,
                                         rng=1)
        with pytest.raises(MechanismHalted):
            for loss in losses:
                session.answer(loss)
        assert session.halted
        # hypothesis path still works after halt
        theta = session.answer_from_hypothesis(losses[0])
        assert losses[0].domain.contains(theta, tol=1e-9)


class TestAnswerNormalization:
    def test_convex_answer_shape(self, cube_dataset):
        session = make_convex_session(cube_dataset)
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=2)[0]
        value, source, index = session.answer(loss)
        assert isinstance(value, np.ndarray)
        assert source in ("update", "no-update")
        assert index == 0

    def test_linear_answer_is_float(self, cube_dataset):
        mechanism = PrivateMWLinear(cube_dataset, alpha=0.2, epsilon=1.0,
                                    delta=1e-6, max_updates=5, rng=0)
        session = Session("lin", mechanism, mechanism_name="pmw-linear")
        query = random_linear_queries(cube_dataset.universe, 1, rng=0)[0]
        value, source, index = session.answer(query)
        assert isinstance(value, float)
        assert 0.0 <= value <= 1.0
        hyp = session.answer_from_hypothesis(query)
        assert isinstance(hyp, float)


class TestJournalCursor:
    def test_construction_spend_consumed_once(self, cube_dataset):
        session = make_convex_session(cube_dataset)
        first = session.consume_unjournaled()
        assert [r["label"] for r in first] == ["sparse-vector"]
        assert session.consume_unjournaled() == []

    def test_update_spend_surfaces(self, concentrated_dataset):
        session = make_convex_session(concentrated_dataset,
                                      noise_multiplier=0.0)
        session.consume_unjournaled()
        loss = random_quadratic_family(concentrated_dataset.universe, 1,
                                       rng=1)[0]
        value, source, _ = session.answer(loss)
        assert source == "update"  # forced by the concentrated dataset
        records = session.consume_unjournaled()
        assert len(records) == 1
        assert records[0]["label"].startswith("oracle:")
        assert records[0]["epsilon"] > 0.0


class TestSnapshotRestore:
    def test_round_trip_continues_identically(self, cube_dataset):
        session = make_convex_session(cube_dataset)
        losses = random_quadratic_family(cube_dataset.universe, 6, rng=3)
        for loss in losses[:3]:
            session.answer(loss)
        snapshot = session.snapshot()

        mechanism = PrivateMWConvex.restore(
            snapshot["mechanism_snapshot"], cube_dataset,
            NonPrivateOracle(120),
        )
        twin = Session.restore(snapshot, mechanism)
        assert twin.session_id == session.session_id
        assert twin.analyst == "alice"
        assert twin.dataset == "default"
        # identical continuation: same answers for the same stream
        for loss in losses[3:]:
            a, src_a, _ = session.answer(loss)
            b, src_b, _ = twin.answer(loss)
            assert src_a == src_b
            np.testing.assert_array_equal(a, b)

    def test_snapshot_is_json_serializable(self, cube_dataset):
        import json
        session = make_convex_session(cube_dataset)
        session.answer(random_quadratic_family(
            cube_dataset.universe, 1, rng=4)[0])
        text = json.dumps(session.snapshot())
        assert "mechanism_snapshot" in json.loads(text)

    def test_journal_cursor_survives(self, cube_dataset):
        session = make_convex_session(cube_dataset)
        session.consume_unjournaled()
        snapshot = session.snapshot()
        mechanism = PrivateMWConvex.restore(
            snapshot["mechanism_snapshot"], cube_dataset,
            NonPrivateOracle(120),
        )
        twin = Session.restore(snapshot, mechanism)
        assert twin.consume_unjournaled() == []


class TestFingerprintHelper:
    def test_loss_and_query_supported(self, cube_dataset):
        loss = random_quadratic_family(cube_dataset.universe, 1, rng=0)[0]
        query = random_linear_queries(cube_dataset.universe, 1, rng=0)[0]
        assert query_fingerprint(loss) == loss.fingerprint()
        assert query_fingerprint(query) == query.fingerprint()

    def test_unsupported_type_raises(self):
        with pytest.raises(ValidationError, match="no fingerprint"):
            query_fingerprint(42)
