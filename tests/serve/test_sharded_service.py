"""Integration tests for :class:`repro.serve.shard.ShardedService`.

Real worker processes, small datasets. Crash/failover *under load* is
the chaos suite's job (``tests/chaos/``); here we pin the supervisor's
contracts: routing and topology persistence, the serving surface the
gateway fronts, typed :class:`ShardUnavailable` shedding, per-shard
metrics aggregation, and teardown ordering (final shard telemetry is
captured before ledgers close).
"""

import os

import pytest

from repro.exceptions import ShardUnavailable, ValidationError
from repro.losses.families import random_quadratic_family
from repro.serve.shard import ConsistentHashRouter, ShardedService

#: Fast mechanism config for plumbing tests (mechanics, not accuracy).
SHARD_PARAMS = dict(
    oracle="non-private", scale=4.0, alpha=0.3, beta=0.1, epsilon=2.0,
    delta=1e-6, schedule="calibrated", max_updates=4, solver_steps=30,
)


@pytest.fixture
def sharded(cube_dataset, tmp_path):
    service = ShardedService(cube_dataset, tmp_path / "dep", shards=2,
                             checkpoint_every=4, ledger_fsync=False, rng=0)
    yield service
    service.close()


def open_analysts(service, count, *, prefix="an"):
    return [
        service.open_session("pmw-convex", session_id=f"{prefix}-{i:02d}",
                             analyst=f"{prefix}-{i:02d}", rng=1000 + i,
                             **SHARD_PARAMS)
        for i in range(count)
    ]


class TestRoutingAndSessions:
    def test_sessions_route_by_consistent_hash(self, sharded):
        sids = open_analysts(sharded, 8)
        router = ConsistentHashRouter(sharded.shard_ids)
        for sid in sids:
            assert sharded.shard_of(sid) == router.route(sid)

    def test_shards_own_disjoint_session_sets(self, sharded, cube_dataset):
        open_analysts(sharded, 8)
        per_shard = {
            shard_id: set(sharded._handles[shard_id].call("session_ids"))
            for shard_id in sharded.shard_ids
        }
        union = set().union(*per_shard.values())
        assert union == set(sharded.session_ids)
        assert sum(len(owned) for owned in per_shard.values()) == len(union)

    def test_serve_submit_and_close_session(self, sharded, cube_dataset):
        (sid,) = open_analysts(sharded, 1)
        queries = random_quadratic_family(cube_dataset.universe, 3, rng=7)
        results = sharded.serve_session_batch(sid, queries)
        assert len(results) == 3
        assert all(result.session_id == sid for result in results)
        single = sharded.submit(sid, queries[0])
        assert single.source == "cache"  # released answers replay free
        sharded.close_session(sid)
        assert sharded.session(sid).closed
        with pytest.raises(Exception):
            sharded.serve_session_batch(sid, queries)

    def test_duplicate_and_unknown_sessions_raise(self, sharded):
        open_analysts(sharded, 1)
        with pytest.raises(ValidationError):
            sharded.open_session("pmw-convex", session_id="an-00",
                                 **SHARD_PARAMS)
        with pytest.raises(ValidationError):
            sharded.session("nonexistent")

    def test_live_generator_rng_is_refused(self, sharded):
        import numpy as np

        with pytest.raises(ValidationError):
            sharded.open_session("pmw-convex",
                                 rng=np.random.default_rng(0),
                                 **SHARD_PARAMS)


class TestTopologyPersistence:
    def test_mismatched_reattach_is_refused(self, cube_dataset, tmp_path):
        first = ShardedService(cube_dataset, tmp_path / "dep", shards=2,
                               ledger_fsync=False)
        first.close()
        with pytest.raises(ValidationError):
            ShardedService(cube_dataset, tmp_path / "dep", shards=3,
                           ledger_fsync=False)

    def test_full_restart_restores_sessions(self, cube_dataset, tmp_path):
        queries = random_quadratic_family(cube_dataset.universe, 4, rng=3)
        first = ShardedService(cube_dataset, tmp_path / "dep", shards=2,
                               checkpoint_every=1, ledger_fsync=False, rng=0)
        sids = open_analysts(first, 4)
        for sid in sids:
            first.serve_session_batch(sid, queries)
        before = first.budget_records()
        first.close()

        second = ShardedService(cube_dataset, tmp_path / "dep", shards=2,
                                checkpoint_every=1, ledger_fsync=False,
                                rng=0)
        try:
            # Worker-side state (ledger + checkpoint) is the authority;
            # the new supervisor's stubs repopulate on demand, but the
            # restored accountants must be bitwise what we left.
            assert second.budget_records() == before
        finally:
            second.close()


class TestFailureShedding:
    def test_dead_shard_sheds_typed(self, cube_dataset, tmp_path):
        service = ShardedService(cube_dataset, tmp_path / "dep", shards=2,
                                 ledger_fsync=False, auto_restore=False)
        try:
            sids = open_analysts(service, 4)
            victim_shard = service.shard_of(sids[0])
            service.kill_shard(victim_shard)
            queries = random_quadratic_family(cube_dataset.universe, 2,
                                              rng=5)
            with pytest.raises(ShardUnavailable) as info:
                service.serve_session_batch(sids[0], queries)
            assert info.value.shard_id == victim_shard
            assert info.value.session_id == sids[0]
            # Sessions on the surviving shard keep serving.
            survivor = next(sid for sid in sids
                            if service.shard_of(sid) != victim_shard)
            assert len(service.serve_session_batch(survivor, queries)) == 2
            states = service.shard_states()
            assert states[victim_shard] is False
            assert sum(states.values()) == 1
        finally:
            service.close()

    def test_manual_restore_after_kill(self, cube_dataset, tmp_path):
        service = ShardedService(cube_dataset, tmp_path / "dep", shards=2,
                                 checkpoint_every=1, ledger_fsync=False,
                                 auto_restore=False)
        try:
            sids = open_analysts(service, 4)
            queries = random_quadratic_family(cube_dataset.universe, 3,
                                              rng=5)
            for sid in sids:
                service.serve_session_batch(sid, queries)
            before = service.budget_records()
            victim_shard = service.shard_of(sids[0])
            service.kill_shard(victim_shard)
            service.restore_shard(victim_shard)
            service.wait_alive(victim_shard)
            assert service.budget_records() == before
        finally:
            service.close()

    def test_closed_service_refuses_work(self, cube_dataset, tmp_path):
        service = ShardedService(cube_dataset, tmp_path / "dep", shards=2,
                                 ledger_fsync=False)
        sids = open_analysts(service, 1)
        service.close()
        service.close()  # idempotent
        with pytest.raises(ValidationError):
            service.open_session("pmw-convex", **SHARD_PARAMS)
        with pytest.raises(ValidationError):
            service.serve_session_batch(sids[0], [])


class TestMetricsAggregation:
    def test_snapshot_merges_shard_series_with_labels(self, sharded,
                                                      cube_dataset):
        sids = open_analysts(sharded, 6)
        queries = random_quadratic_family(cube_dataset.universe, 2, rng=9)
        for sid in sids:
            sharded.serve_session_batch(sid, queries)
        snapshot = sharded.metrics_snapshot()
        batch_counters = [record for record in snapshot["counters"]
                          if record["name"] == "shard.batches"]
        shards_seen = {record["labels"]["shard"]
                       for record in batch_counters}
        assert shards_seen == set(sharded.shard_ids)
        assert (sum(record["value"] for record in batch_counters)
                == len(sids))
        alive = [record for record in snapshot["gauges"]
                 if record["name"] == "shard.alive"]
        assert {record["labels"]["shard"]: record["value"]
                for record in alive} == {s: 1 for s in sharded.shard_ids}
        spent = [record for record in snapshot["gauges"]
                 if record["name"] == "budget.epsilon_spent"]
        assert {record["labels"]["session"] for record in spent} == set(sids)

    def test_aggregate_snapshot_sums_across_shards(self, sharded,
                                                   cube_dataset):
        sids = open_analysts(sharded, 6)
        queries = random_quadratic_family(cube_dataset.universe, 2, rng=9)
        for sid in sids:
            sharded.serve_session_batch(sid, queries)
        aggregate = sharded.metrics_snapshot(per_shard=False)
        requests = [record for record in aggregate["counters"]
                    if record["name"] == "shard.requests"
                    and record["labels"] == {}]
        assert len(requests) == 1
        assert requests[0]["value"] == len(sids) * len(queries)

    def test_final_telemetry_survives_close(self, cube_dataset, tmp_path):
        """The shutdown-ordering guarantee: the last per-shard pull
        happens before ledgers close, so a post-mortem snapshot still
        carries every shard's final numbers."""
        service = ShardedService(cube_dataset, tmp_path / "dep", shards=2,
                                 ledger_fsync=False)
        sids = open_analysts(service, 4)
        queries = random_quadratic_family(cube_dataset.universe, 2, rng=9)
        for sid in sids:
            service.serve_session_batch(sid, queries)
        service.close()
        snapshot = service.metrics_snapshot()
        batch_counters = [record for record in snapshot["counters"]
                          if record["name"] == "shard.batches"]
        assert (sum(record["value"] for record in batch_counters)
                == len(sids))
        spent = [record for record in snapshot["gauges"]
                 if record["name"] == "budget.epsilon_spent"]
        assert {record["labels"]["session"] for record in spent} == set(sids)


class TestGatewayFront:
    def test_gateway_serves_across_shards(self, sharded, cube_dataset):
        sids = open_analysts(sharded, 6)
        queries = random_quadratic_family(cube_dataset.universe, 3, rng=11)
        gateway = sharded.gateway(workers=4, max_queue_depth=32)
        try:
            futures = [gateway.submit_async(sid, query)
                       for sid in sids for query in queries]
            results = [future.result(timeout=60) for future in futures]
            assert all(result.value is not None for result in results)
        finally:
            gateway.close()
        assert (gateway.metrics.completed
                == len(sids) * len(queries))

    def test_gateway_propagates_shard_unavailable(self, cube_dataset,
                                                  tmp_path):
        service = ShardedService(cube_dataset, tmp_path / "dep", shards=2,
                                 ledger_fsync=False, auto_restore=False)
        try:
            sids = open_analysts(service, 4)
            victim_shard = service.shard_of(sids[0])
            gateway = service.gateway(workers=2)
            try:
                service.kill_shard(victim_shard)
                queries = random_quadratic_family(cube_dataset.universe, 1,
                                                  rng=13)
                future = gateway.submit_async(sids[0], queries[0])
                with pytest.raises(ShardUnavailable):
                    future.result(timeout=60)
            finally:
                gateway.close()
        finally:
            service.close()


class TestShardDirectories:
    def test_each_shard_owns_its_own_durability_stack(self, sharded,
                                                      cube_dataset):
        sids = open_analysts(sharded, 6)
        queries = random_quadratic_family(cube_dataset.universe, 2, rng=15)
        for sid in sids:
            sharded.serve_session_batch(sid, queries)
        paths = sharded.checkpoint()
        assert set(paths) == set(sharded.shard_ids)
        for shard_id in sharded.shard_ids:
            shard_dir = sharded.shard_dir(shard_id)
            assert os.path.exists(os.path.join(shard_dir, "budget.jsonl"))
            assert paths[shard_id].startswith(
                os.path.join(shard_dir, "checkpoints"))
