"""Regression: ``ServiceGateway.shutdown()`` must capture final gauges.

Before this PR, ``shutdown()`` closed the gateway and then the service
without a final :func:`~repro.obs.telemetry.publish_service` pull — so
a deployment whose last scrape predated the final batches archived
stale (or absent) budget/cache gauges. The contract now: after
``shutdown()`` returns, the gateway's registry holds domain gauges
reflecting the *final* quiesced service state, and services that
publish their own telemetry (the sharded service) are left alone.
"""

from repro.losses.families import random_quadratic_family
from repro.serve.service import PMWService


def gauges_by_name(registry, name):
    return {record["labels"].get("session"): record["value"]
            for record in registry.snapshot()["gauges"]
            if record["name"] == name}


class TestShutdownPublishesFinalTelemetry:
    def test_final_budget_gauges_land_without_manual_scrape(
            self, cube_dataset, serve_params):
        service = PMWService(cube_dataset)
        sid = service.open_session("pmw-convex", rng=5, **serve_params)
        queries = random_quadratic_family(cube_dataset.universe, 4, rng=2)
        gateway = service.gateway(workers=2)
        for query in queries:
            gateway.submit(sid, query)
        expected = service.session(sid).accountant.telemetry()
        gateway.shutdown()
        spent = gauges_by_name(gateway.metrics.registry,
                               "budget.epsilon_spent")
        assert spent[sid] == expected["epsilon_spent"]
        served = gauges_by_name(gateway.metrics.registry,
                                "session.queries_served")
        assert served[sid] == len(queries)

    def test_stale_mid_run_scrape_is_refreshed(self, cube_dataset,
                                               serve_params):
        from repro.obs.telemetry import publish_service

        service = PMWService(cube_dataset)
        sid = service.open_session("pmw-convex", rng=5, **serve_params)
        queries = random_quadratic_family(cube_dataset.universe, 6, rng=2)
        gateway = service.gateway(workers=2)
        for query in queries[:2]:
            gateway.submit(sid, query)
        publish_service(gateway.metrics.registry, service, gateway=gateway)
        stale = gauges_by_name(gateway.metrics.registry,
                               "session.queries_served")[sid]
        assert stale == 2
        for query in queries[2:]:
            gateway.submit(sid, query)
        gateway.shutdown()
        final = gauges_by_name(gateway.metrics.registry,
                               "session.queries_served")[sid]
        assert final == len(queries)

    def test_shutdown_skips_services_without_cache(self, cube_dataset,
                                                   serve_params):
        """A service that publishes its own telemetry (no ``cache``
        attribute — the sharded service's shape) must not be pulled by
        the gateway's shutdown hook."""

        class OpaqueService:
            def __init__(self, inner):
                self._inner = inner
                self.closed = False

            def session(self, sid):
                return self._inner.session(sid)

            def serve_session_batch(self, sid, queries, **kwargs):
                return self._inner.serve_session_batch(sid, queries,
                                                       **kwargs)

            def close(self):
                self.closed = True
                self._inner.close()

        inner = PMWService(cube_dataset)
        sid = inner.open_session("pmw-convex", rng=5, **serve_params)
        opaque = OpaqueService(inner)
        queries = random_quadratic_family(cube_dataset.universe, 2, rng=2)
        from repro.serve.gateway import ServiceGateway

        gateway = ServiceGateway(opaque, workers=1)
        for query in queries:
            gateway.submit(sid, query)
        gateway.shutdown()
        assert opaque.closed
        assert gauges_by_name(gateway.metrics.registry,
                              "budget.epsilon_spent") == {}
