"""Tests for the hypothesis-version-aware answer cache.

Two policies:

- ``"replay"`` (default): any released answer replays forever — the
  pre-existing, privacy-optimal semantics;
- ``"track-hypothesis"``: hypothesis-derived answers are stamped with the
  hypothesis version they were computed at, and a repeat query after an
  MW update gets a fresh round instead of a stale replay. Same-version
  repeats and oracle ("update") releases still hit.
"""

import numpy as np
import pytest

from repro.data.builders import interval_grid
from repro.data.dataset import Dataset
from repro.losses.linear import LinearQuery
from repro.serve.cache import AnswerCache, CachedAnswer
from repro.serve.service import PMWService
from repro.exceptions import ValidationError


@pytest.fixture
def line_universe():
    return interval_grid(20)


@pytest.fixture
def skewed_dataset(line_universe):
    """80% of the mass on element 0: indicator queries force updates."""
    indices = np.concatenate([np.zeros(160, dtype=int),
                              np.arange(20).repeat(2)])
    return Dataset(line_universe, indices)


def constant_query(universe, value=0.4, name="flat"):
    """Constant tables answer identically under every distribution, so
    the round always comes back bottom ("no-update")."""
    return LinearQuery(np.full(universe.size, value), name=name)


def indicator_query(universe, index=0, name="spike"):
    table = np.zeros(universe.size)
    table[index] = 1.0
    return LinearQuery(table, name=name)


def open_linear(service, **extra):
    return service.open_session(
        "pmw-linear", alpha=0.3, epsilon=2.0, delta=1e-6, max_updates=4,
        noise_multiplier=0.0, **extra,
    )


class TestTrackHypothesisPolicy:
    def test_same_version_repeat_hits_cache(self, skewed_dataset,
                                            line_universe):
        service = PMWService(skewed_dataset,
                             cache_policy="track-hypothesis", rng=0)
        sid = open_linear(service)
        flat = constant_query(line_universe)
        first = service.submit(sid, flat)
        assert first.source == "no-update"
        replay = service.submit(sid, flat)
        assert replay.source == "cache"
        assert replay.value == first.value

    def test_update_invalidates_hypothesis_derived_entries(
            self, skewed_dataset, line_universe):
        service = PMWService(skewed_dataset,
                             cache_policy="track-hypothesis", rng=0)
        sid = open_linear(service)
        flat = constant_query(line_universe)
        first = service.submit(sid, flat)
        assert first.source == "no-update"

        forced = service.submit(sid, indicator_query(line_universe))
        assert forced.source == "update"  # the hypothesis moved

        fresh = service.submit(sid, flat)
        assert fresh.source == "no-update"  # re-served, not replayed
        assert service.session(sid).hypothesis_version == 1

    def test_update_sourced_answers_replay_across_versions(
            self, skewed_dataset, line_universe):
        service = PMWService(skewed_dataset,
                             cache_policy="track-hypothesis", rng=0)
        sid = open_linear(service)
        spike = indicator_query(line_universe)
        first = service.submit(sid, spike)
        assert first.source == "update"

        # Force another update with a different query (the hypothesis
        # badly over-counts the tail once mass concentrated on 0)...
        tail = np.zeros(line_universe.size)
        tail[10:] = 1.0
        other = service.submit(sid, LinearQuery(tail, name="tail"))
        assert other.source == "update"
        # ...yet the original oracle release still replays: its value is
        # a (noisy) data-side answer, not a hypothesis readout.
        replay = service.submit(sid, spike)
        assert replay.source == "cache"
        assert replay.value == first.value

    def test_batch_planning_respects_staleness(self, skewed_dataset,
                                               line_universe):
        service = PMWService(skewed_dataset,
                             cache_policy="track-hypothesis", rng=0)
        sid = open_linear(service)
        flat = constant_query(line_universe)
        assert service.submit(sid, flat).source == "no-update"
        assert service.submit(sid,
                              indicator_query(line_universe)
                              ).source == "update"
        results = service.answer_batch((sid, [flat, flat]))
        # First occurrence re-serves at the new version; the in-batch
        # duplicate replays the fresh release.
        assert results[0].source == "no-update"
        assert results[1].source == "cache"

    def test_in_batch_duplicate_after_mid_batch_update_is_fresh(
            self, skewed_dataset, line_universe):
        """[flat, spike, flat] in ONE batch: the spike's MW update lands
        between the two flat occurrences, so the duplicate must be
        re-served at the new version, not replayed from the stale
        in-memory origin."""
        service = PMWService(skewed_dataset,
                             cache_policy="track-hypothesis", rng=0)
        sid = open_linear(service)
        flat = constant_query(line_universe)
        spike = indicator_query(line_universe)
        results = service.answer_batch((sid, [flat, spike, flat]))
        assert results[0].source == "no-update"
        assert results[1].source == "update"
        assert results[2].source == "no-update"  # fresh, not "cache"
        # And with no mid-batch update, the duplicate stays a free replay.
        replayed = service.answer_batch((sid, [flat, flat]))
        assert {r.source for r in replayed} <= {"cache", "no-update"}
        assert replayed[1].source == "cache"

    def test_evicted_same_version_duplicate_replays_for_free(
            self, skewed_dataset, line_universe):
        """A duplicate whose cache entry was LRU-evicted — but whose
        hypothesis version never moved — must replay the in-memory
        origin, not double-spend a mechanism round."""
        service = PMWService(skewed_dataset, cache_entries=2,
                             cache_policy="track-hypothesis", rng=0)
        sid = open_linear(service)
        # Five distinct bottom-round queries + a trailing duplicate of
        # the first: the tiny cache evicts q0's entry long before the
        # duplicate is reached, and no update ever lands.
        queries = [constant_query(line_universe, value=0.1 * (i + 1),
                                  name=f"flat{i}") for i in range(5)]
        batch = queries + [queries[0]]
        session = service.session(sid)
        before = session.accountant.num_spends
        results = service.answer_batch((sid, batch))
        assert all(r.source == "no-update" for r in results[:5])
        assert results[5].source == "cache"   # replayed, not re-served
        assert results[5].value == results[0].value
        # No extra accountant spends beyond the five mechanism rounds'
        # (all bottom: zero marginal spend either way, but the stream
        # must not have consumed a sixth slot).
        assert session.mechanism.queries_answered == 5
        assert session.accountant.num_spends == before


class TestReplayPolicy:
    def test_default_policy_replays_across_updates(self, skewed_dataset,
                                                   line_universe):
        service = PMWService(skewed_dataset, rng=0)  # policy: replay
        sid = open_linear(service)
        flat = constant_query(line_universe)
        first = service.submit(sid, flat)
        assert service.submit(sid,
                              indicator_query(line_universe)
                              ).source == "update"
        replay = service.submit(sid, flat)
        assert replay.source == "cache"
        assert replay.value == first.value

    def test_invalid_policy_rejected(self, skewed_dataset):
        with pytest.raises(ValidationError, match="cache_policy"):
            PMWService(skewed_dataset, cache_policy="sometimes")


class TestCacheVersionPlumbing:
    def test_entries_are_version_stamped(self, skewed_dataset,
                                         line_universe):
        service = PMWService(skewed_dataset,
                             cache_policy="track-hypothesis", rng=0)
        sid = open_linear(service)
        service.submit(sid, constant_query(line_universe))
        entry = service.cache.get(sid, constant_query(
            line_universe).fingerprint())
        assert entry.hypothesis_version == 0
        service.submit(sid, indicator_query(line_universe))
        spike_entry = service.cache.get(
            sid, indicator_query(line_universe).fingerprint())
        assert spike_entry.hypothesis_version is None  # oracle release

    def test_versioned_get_and_contains(self):
        cache = AnswerCache()
        cache.put("s", "fp", CachedAnswer(value=1.0, source="no-update",
                                          query_index=0,
                                          hypothesis_version=3))
        assert cache.get("s", "fp") is not None
        assert cache.get("s", "fp", version=3) is not None
        assert cache.get("s", "fp", version=4) is None
        assert cache.contains("s", "fp", version=3)
        assert not cache.contains("s", "fp", version=4)
        # Version-free entries hit under any requested version.
        cache.put("s", "fp2", CachedAnswer(value=2.0, source="update",
                                           query_index=1))
        assert cache.get("s", "fp2", version=99) is not None

    def test_stamps_survive_cache_state_round_trip(self):
        cache = AnswerCache()
        cache.put("s", "fp", CachedAnswer(value=np.array([1.0, 2.0]),
                                          source="no-update", query_index=0,
                                          hypothesis_version=2))
        restored = AnswerCache.from_state(cache.to_state())
        entry = restored.get("s", "fp", version=2)
        assert entry is not None and entry.hypothesis_version == 2
        assert restored.get("s", "fp", version=3) is None


class TestServiceSnapshotRoundTrip:
    def test_policy_and_stamps_survive_restore(self, skewed_dataset,
                                               line_universe, tmp_path):
        service = PMWService(skewed_dataset,
                             cache_policy="track-hypothesis", rng=0)
        sid = open_linear(service)
        flat = constant_query(line_universe)
        service.submit(sid, flat)
        state = service.snapshot(tmp_path / "snap.json")

        restored = PMWService.restore(skewed_dataset,
                                      snapshot=tmp_path / "snap.json",
                                      rng=0)
        assert restored.cache_policy == "track-hypothesis"
        assert restored.session(sid).hypothesis_version == 0
        assert restored.submit(sid, flat).source == "cache"
        # An update after restore still invalidates the stale entry.
        assert restored.submit(
            sid, indicator_query(line_universe)).source == "update"
        assert restored.submit(sid, flat).source == "no-update"

    def test_restore_can_override_policy(self, skewed_dataset,
                                         line_universe, tmp_path):
        service = PMWService(skewed_dataset, rng=0)
        sid = open_linear(service)
        service.submit(sid, constant_query(line_universe))
        service.snapshot(tmp_path / "snap.json")
        restored = PMWService.restore(skewed_dataset,
                                      snapshot=tmp_path / "snap.json",
                                      cache_policy="track-hypothesis",
                                      rng=0)
        assert restored.cache_policy == "track-hypothesis"
