"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    LossSpecificationError,
    MechanismHalted,
    OptimizationError,
    PrivacyBudgetExhausted,
    ReproError,
    UniverseError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_cls", [
        ValidationError, UniverseError, PrivacyBudgetExhausted,
        MechanismHalted, OptimizationError, LossSpecificationError,
    ])
    def test_all_derive_from_repro_error(self, exc_cls):
        assert issubclass(exc_cls, ReproError)

    def test_validation_error_is_value_error(self):
        """Callers using stdlib idioms still catch validation failures."""
        assert issubclass(ValidationError, ValueError)

    def test_budget_exhausted_carries_amounts(self):
        error = PrivacyBudgetExhausted("over budget", epsilon_spent=1.5,
                                       epsilon_budget=1.0)
        assert error.epsilon_spent == 1.5
        assert error.epsilon_budget == 1.0
        assert "over budget" in str(error)

    def test_budget_exhausted_defaults_nan(self):
        import math
        error = PrivacyBudgetExhausted("bare")
        assert math.isnan(error.epsilon_spent)

    def test_catch_all_pattern(self):
        """One except-clause covers every library error."""
        try:
            raise MechanismHalted("done")
        except ReproError as caught:
            assert isinstance(caught, MechanismHalted)
