"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="rng must be"):
            as_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_children_are_independent_streams(self):
        a, b = spawn_generators(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_from_seed(self):
        first = [g.random(3) for g in spawn_generators(9, 2)]
        second = [g.random(3) for g in spawn_generators(9, 2)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_zero_count_ok(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_generators(0, -1)
