"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_finite_array,
    check_positive,
    check_probability,
    check_unit_interval,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ValidationError, match="x must be"):
            check_positive(bad, "x")

    def test_coerces_int(self):
        value = check_positive(3, "x")
        assert isinstance(value, float) and value == 3.0


class TestCheckUnitInterval:
    def test_accepts_interior(self):
        assert check_unit_interval(0.3, "a") == 0.3

    def test_accepts_one(self):
        assert check_unit_interval(1.0, "a") == 1.0

    def test_rejects_zero_when_open(self):
        with pytest.raises(ValidationError):
            check_unit_interval(0.0, "a")

    def test_accepts_zero_when_closed(self):
        assert check_unit_interval(0.0, "a", open_left=False) == 0.0

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_unit_interval(1.5, "a")

    def test_error_mentions_bracket(self):
        with pytest.raises(ValidationError, match=r"\(0, 1\]"):
            check_unit_interval(2.0, "a")


class TestCheckProbability:
    def test_accepts_zero_and_one(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_probability(-0.1, "p")


class TestCheckFiniteArray:
    def test_accepts_and_coerces(self):
        out = check_finite_array([1, 2, 3], "v")
        assert out.dtype == float

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_finite_array([1.0, np.nan], "v")

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_finite_array([1.0, 2.0], "v", ndim=2)

    def test_empty_array_ok(self):
        out = check_finite_array([], "v")
        assert out.size == 0
