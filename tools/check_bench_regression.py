"""Benchmark-regression gate for the nightly workflow.

Two phases, composable:

- ``--run``: discover every ``benchmarks/bench_*.py`` that advertises a
  smoke mode (``--smoke`` and ``--json-dir`` in its source), run each
  into ``--candidate-dir``, producing fresh ``BENCH_*.smoke.json``
  documents.
- compare (always): for every candidate JSON with a committed baseline
  of the same name under ``benchmarks/results/``, diff the ``speedups``
  maps. A candidate speedup more than ``--tolerance`` (default 20%)
  below its baseline fails the run. Benchmarks may also publish
  ``gated_latencies_ms`` — lower-is-better latency SLOs (e.g. a
  fast-lane p99) gated the other way around: a candidate more than
  ``--tolerance`` *above* its baseline fails.

Speedups are ratios of twin runs on the same host, so they transfer
across machines far better than absolute seconds — that is what makes a
committed baseline meaningful on a fresh CI runner. Latency gates are
absolute and noisier; keep them coarse (SLO-scale ceilings, not
microsecond deltas).

Usage::

    python tools/check_bench_regression.py --run \
        --candidate-dir /tmp/bench-candidate --tolerance 0.20
    python tools/check_bench_regression.py --candidate-dir DIR  # diff only
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"
BASELINE_DIR = BENCH_DIR / "results"


def smoke_benchmarks():
    """Benchmarks that support the smoke+json protocol, sorted by name."""
    found = []
    for path in sorted(BENCH_DIR.glob("bench_*.py")):
        text = path.read_text()
        if "--smoke" in text and "--json-dir" in text:
            found.append(path)
    return found


def run_benchmarks(candidate_dir: pathlib.Path) -> int:
    candidate_dir.mkdir(parents=True, exist_ok=True)
    benches = smoke_benchmarks()
    if not benches:
        print("no smoke-capable benchmarks found", file=sys.stderr)
        return 1
    for bench in benches:
        print(f"== running {bench.name} --smoke")
        result = subprocess.run(
            [sys.executable, str(bench), "--smoke",
             "--json-dir", str(candidate_dir)],
            cwd=str(REPO),
        )
        if result.returncode != 0:
            print(f"FAIL: {bench.name} exited {result.returncode}",
                  file=sys.stderr)
            return result.returncode
    return 0


def compare(candidate_dir: pathlib.Path, tolerance: float) -> int:
    candidates = sorted(candidate_dir.glob("BENCH_*.json"))
    if not candidates:
        print(f"no candidate BENCH_*.json under {candidate_dir}",
              file=sys.stderr)
        return 1
    failures = 0
    compared = 0
    for candidate_path in candidates:
        baseline_path = BASELINE_DIR / candidate_path.name
        if not baseline_path.exists():
            print(f"-- {candidate_path.name}: no committed baseline, "
                  f"skipping (commit one to start gating it)")
            continue
        candidate = json.loads(candidate_path.read_text())
        baseline = json.loads(baseline_path.read_text())
        # Prefer the gated subset: benchmarks exclude informational
        # near-1.0x sections from it so the -tolerance floor only
        # guards sections with genuine headroom.
        gated = baseline.get("gated_speedups") or baseline.get(
            "speedups", {})
        fresh_map = candidate.get("gated_speedups") or candidate.get(
            "speedups", {})
        for section, base_speedup in sorted(gated.items()):
            fresh = fresh_map.get(section)
            if fresh is None:
                print(f"FAIL {candidate_path.name}:{section}: present in "
                      f"baseline but missing from the fresh run")
                failures += 1
                continue
            compared += 1
            floor = (1.0 - tolerance) * base_speedup
            verdict = "ok" if fresh >= floor else "REGRESSION"
            print(f"{verdict:>10}  {candidate_path.name}:{section}: "
                  f"fresh {fresh:.2f}x vs baseline {base_speedup:.2f}x "
                  f"(floor {floor:.2f}x)")
            if fresh < floor:
                failures += 1
        # Lower-is-better latency gates (milliseconds): fresh must stay
        # under (1 + tolerance) * baseline.
        gated_lat = baseline.get("gated_latencies_ms", {})
        fresh_lat = candidate.get("gated_latencies_ms", {})
        for section, base_ms in sorted(gated_lat.items()):
            fresh = fresh_lat.get(section)
            if fresh is None:
                print(f"FAIL {candidate_path.name}:{section}: latency gate "
                      f"present in baseline but missing from the fresh run")
                failures += 1
                continue
            compared += 1
            ceiling = (1.0 + tolerance) * base_ms
            verdict = "ok" if fresh <= ceiling else "REGRESSION"
            print(f"{verdict:>10}  {candidate_path.name}:{section}: "
                  f"fresh {fresh:.2f}ms vs baseline {base_ms:.2f}ms "
                  f"(ceiling {ceiling:.2f}ms)")
            if fresh > ceiling:
                failures += 1
    if compared == 0:
        print("no comparable speedups found", file=sys.stderr)
        return 1
    if failures:
        print(f"{failures} regression(s) beyond the "
              f"{tolerance:.0%} tolerance", file=sys.stderr)
        return 1
    print(f"all {compared} speedups within {tolerance:.0%} of baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run smoke benchmarks and gate on >tolerance "
                    "regressions against committed baselines.")
    parser.add_argument("--run", action="store_true",
                        help="run every smoke-capable benchmark first")
    parser.add_argument("--candidate-dir", type=pathlib.Path,
                        default=pathlib.Path("/tmp/bench-candidate"))
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional speedup drop (default .2)")
    args = parser.parse_args(argv)
    if args.run:
        code = run_benchmarks(args.candidate_dir)
        if code != 0:
            return code
    return compare(args.candidate_dir, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
