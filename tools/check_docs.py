#!/usr/bin/env python
"""Docs health check: intra-doc links resolve, fenced examples run.

Two failure classes this catches before they rot:

- **broken links** — every relative markdown link in ``docs/*.md`` and
  ``README.md`` must point at a file that exists (anchors are stripped;
  external ``http(s)``/``mailto`` links are not fetched);
- **stale examples** — every fenced ``python`` block is at least
  syntax-checked, and blocks containing ``>>>`` doctest markers are
  *executed* through :mod:`doctest` against the real package (``src/`` is
  put on ``sys.path``), so documented behaviour is verified behaviour.

Run directly (``python tools/check_docs.py``), via the tier-1 suite
(``tests/docs/test_docs_health.py``), or in CI (the ``docs`` job).
Exits nonzero with one line per failure.
"""

from __future__ import annotations

import doctest
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def _display(path: pathlib.Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:  # e.g. a test fixture outside the repo
        return str(path)


def documentation_files() -> list[pathlib.Path]:
    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    readme = REPO_ROOT / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def check_links(path: pathlib.Path, text: str) -> list[str]:
    failures = []
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            failures.append(
                f"{_display(path)}: broken link -> {target}"
            )
    return failures


def check_fences(path: pathlib.Path, text: str) -> list[str]:
    failures = []
    runner = doctest.DocTestRunner(verbose=False,
                                   optionflags=doctest.ELLIPSIS)
    parser = doctest.DocTestParser()
    for index, match in enumerate(FENCE_PATTERN.finditer(text)):
        code = match.group(1)
        label = f"{_display(path)}[python block {index}]"
        if ">>>" in code:
            test = parser.get_doctest(code, {}, label, str(path), 0)
            result = runner.run(test, clear_globs=True)
            if result.failed:
                failures.append(
                    f"{label}: {result.failed}/{result.attempted} doctest "
                    f"example(s) failed"
                )
        else:
            try:
                compile(code, label, "exec")
            except SyntaxError as error:
                failures.append(f"{label}: syntax error: {error}")
    return failures


def main() -> int:
    sys.path.insert(0, str(SRC))
    files = documentation_files()
    if not files:
        print("check_docs: no documentation files found", file=sys.stderr)
        return 1
    failures: list[str] = []
    examples = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        failures.extend(check_links(path, text))
        failures.extend(check_fences(path, text))
        examples += len(FENCE_PATTERN.findall(text))
    for failure in failures:
        print(f"check_docs: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"check_docs: {len(files)} file(s), {examples} fenced python "
          f"block(s) — links resolve, examples pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
