"""Wire-protocol compatibility gate for the shard frame codec.

The supervisor <-> worker pipe speaks the versioned binary frame format
of :mod:`repro.serve.shard.frames`. This tool is the CI tripwire that
keeps that format honest, in four passes:

1. **Round-trip fuzz** — a deterministic corpus (a hand-built value zoo
   plus seeded random nested structures) must survive
   ``encode_frame``/``decode_frame`` bit-exactly, including ndarray
   dtypes and shapes.
2. **Torn frames** — every proper prefix of every corpus frame must
   raise :class:`~repro.exceptions.FrameTruncated`. A shorter read can
   never produce a wrong value or an untyped exception.
3. **Bit flips** — flipping any single bit of a corpus frame must
   either still decode (flips in value payload bytes can be benign) or
   raise a typed :class:`~repro.exceptions.FrameError`; ``struct.error``
   / ``KeyError`` / ``MemoryError`` escaping the decoder is a bug.
   Decoding runs with ``allow_pickle=False`` so a flip can never reach
   ``pickle.loads``.
4. **Golden fixtures** — committed binary frames under
   ``tests/fixtures/wire/`` must byte-match what today's encoder
   produces for the same values AND decode (with ``allow_pickle=False``,
   proving them pickle-free) to the expected objects hardcoded below.
   A frame from a version-bumped encoder must be refused with
   :class:`~repro.exceptions.FrameVersionMismatch`.

If an intentional format change breaks the goldens: bump
``frames.VERSION``, regenerate with ``--regen``, and commit the new
fixtures in the same change — the fixtures are the protocol's paper
trail.

Usage::

    python tools/check_wire_protocol.py           # gate (CI)
    python tools/check_wire_protocol.py --regen   # rewrite fixtures
"""

import argparse
import pathlib
import sys

import numpy as np

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.exceptions import (  # noqa: E402
    FrameError,
    FrameTruncated,
    FrameVersionMismatch,
)
from repro.serve.shard import frames  # noqa: E402
from repro.serve.shard.frames import (  # noqa: E402
    KIND_REPLY_OK,
    KIND_REQUEST,
    VERBS,
    decode_frame,
    encode_frame,
)
from repro.serve.session import ServeResult  # noqa: E402

FIXTURE_DIR = REPO / "tests" / "fixtures" / "wire"

#: Random fuzz shape: number of generated frames and the per-frame cap
#: on flipped-bit trials (small frames are flipped exhaustively).
FUZZ_FRAMES = 24
MAX_FLIPS_PER_FRAME = 4096
SEED = 20_150_531  # PODS'15, why not


# -- corpus -------------------------------------------------------------------


def value_zoo():
    """One of everything the structural codec speaks."""
    return [
        None, True, False,
        0, -1, 2 ** 63 - 1, -(2 ** 63), 2 ** 200, -(2 ** 200),
        0.0, -0.0, 1.5e308, float("inf"), float("-inf"),
        "", "plain", "uniçødé ☃",
        b"", b"\x00\xff" * 8,
        [], [1, [2, [3, None]]],
        (), ("a", 1, (2.0,)),
        {}, {"k": "v", 1: [2], ("t", 3): {"nested": b"bytes"}},
        np.arange(12, dtype=np.float64).reshape(3, 4),
        np.array([], dtype=np.int32),
        np.array(7.25, dtype=np.float32),           # 0-d
        np.array([True, False, True]),
        np.array([1 + 2j, 3 - 4j], dtype=np.complex128),
        np.array([[1, 2], [3, 4]], dtype=np.int16).T,  # non-contiguous
        ServeResult(session_id="s", fingerprint="fp" * 8,
                    value=np.array([0.5, 0.25]), source="fresh",
                    query_index=3, epsilon_spent=0.125,
                    delta_spent=1e-9),
    ]


def random_value(rng, depth=0):
    roll = rng.integers(0, 9 if depth < 3 else 6)
    if roll == 0:
        return int(rng.integers(-(2 ** 40), 2 ** 40))
    if roll == 1:
        return float(rng.standard_normal())
    if roll == 2:
        return "".join(chr(c) for c in rng.integers(32, 1000, size=6))
    if roll == 3:
        return bytes(rng.integers(0, 256, size=8, dtype=np.uint8))
    if roll == 4:
        return None if rng.integers(0, 2) else bool(rng.integers(0, 2))
    if roll == 5:
        dtype = [np.float64, np.int64, np.uint8][rng.integers(0, 3)]
        return rng.integers(0, 100, size=(2, 3)).astype(dtype)
    size = int(rng.integers(0, 4))
    if roll == 6:
        return [random_value(rng, depth + 1) for _ in range(size)]
    if roll == 7:
        return tuple(random_value(rng, depth + 1) for _ in range(size))
    return {f"k{i}": random_value(rng, depth + 1) for i in range(size)}


def corpus_frames():
    """Deterministic encoded frames: the zoo + seeded random payloads."""
    rng = np.random.default_rng(SEED)
    out = [encode_frame(KIND_REPLY_OK, VERBS["metrics"], value_zoo())]
    for index in range(FUZZ_FRAMES):
        values = [random_value(rng)
                  for _ in range(int(rng.integers(0, 4)))]
        deadline = float(rng.uniform(0.1, 30)) \
            if rng.integers(0, 2) else None
        out.append(encode_frame(
            KIND_REQUEST, int(rng.integers(1, 12)), values,
            deadline=deadline,
            flags=frames.FLAG_IDEMPOTENT if index % 3 == 0 else 0))
    return out


# -- equality -----------------------------------------------------------------


def equal(left, right) -> bool:
    """Deep equality with dtype-exact ndarray comparison."""
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return (isinstance(left, np.ndarray)
                and isinstance(right, np.ndarray)
                and left.dtype == right.dtype
                and left.shape == right.shape
                and np.array_equal(left, right, equal_nan=False))
    if isinstance(left, ServeResult) or isinstance(right, ServeResult):
        return (type(left) is type(right)
                and all(equal(getattr(left, f), getattr(right, f))
                        for f in left.__dataclass_fields__))
    if type(left) is not type(right):
        return False
    if isinstance(left, (list, tuple)):
        return (len(left) == len(right)
                and all(equal(a, b) for a, b in zip(left, right)))
    if isinstance(left, dict):
        return (left.keys() == right.keys()
                and all(equal(v, right[k]) for k, v in left.items()))
    if isinstance(left, float):
        return (left == right and
                np.signbit(left) == np.signbit(right))
    return left == right


# -- passes -------------------------------------------------------------------


def check_round_trips() -> int:
    failures = 0
    rng = np.random.default_rng(SEED)
    cases = [value_zoo()]
    for _ in range(FUZZ_FRAMES):
        cases.append([random_value(rng)
                      for _ in range(int(rng.integers(1, 4)))])
    for index, values in enumerate(cases):
        data = encode_frame(KIND_REPLY_OK, VERBS["metrics"], values,
                            deadline=1.25)
        frame = decode_frame(data)
        if frame.deadline != 1.25 or not equal(list(frame.values),
                                               values):
            print(f"FAIL round-trip case {index}: decoded values differ")
            failures += 1
    print(f"round-trip: {len(cases)} frames bit-exact"
          if not failures else f"round-trip: {failures} failures")
    return failures


def check_torn_frames() -> int:
    failures = 0
    checked = 0
    for data in corpus_frames():
        for cut in range(len(data)):
            checked += 1
            try:
                decode_frame(data[:cut], allow_pickle=False)
            except FrameTruncated:
                continue
            except FrameError as exc:
                print(f"FAIL torn frame at byte {cut}/{len(data)}: "
                      f"{type(exc).__name__} instead of FrameTruncated")
            else:
                print(f"FAIL torn frame at byte {cut}/{len(data)}: "
                      f"decoded successfully")
            failures += 1
    print(f"torn frames: {checked} prefixes all FrameTruncated"
          if not failures else f"torn frames: {failures} failures")
    return failures


def check_bit_flips() -> int:
    failures = 0
    checked = 0
    rng = np.random.default_rng(SEED + 1)
    for data in corpus_frames():
        bits = len(data) * 8
        if bits <= MAX_FLIPS_PER_FRAME:
            positions = range(bits)
        else:
            positions = sorted(rng.choice(
                bits, size=MAX_FLIPS_PER_FRAME, replace=False))
        for bit in positions:
            flipped = bytearray(data)
            flipped[bit // 8] ^= 1 << (bit % 8)
            checked += 1
            try:
                decode_frame(bytes(flipped), allow_pickle=False)
            except FrameError:
                pass  # typed refusal: exactly what the supervisor needs
            except RecursionError:
                pass  # deep nesting from a flipped count is bounded
            except BaseException as exc:  # noqa: BLE001 - the assertion
                print(f"FAIL bit flip {bit}: untyped "
                      f"{type(exc).__name__}: {exc}")
                failures += 1
    print(f"bit flips: {checked} single-bit corruptions, all decoded "
          f"or refused with typed FrameError"
          if not failures else f"bit flips: {failures} failures")
    return failures


def check_version_mismatch() -> int:
    data = bytearray(encode_frame(KIND_REQUEST, VERBS["ping"], []))
    data[2] = frames.VERSION + 1
    try:
        decode_frame(bytes(data))
    except FrameVersionMismatch as exc:
        if exc.got == frames.VERSION + 1 and exc.expected == frames.VERSION:
            print("version mismatch: refused loudly with got/expected")
            return 0
        print(f"FAIL version mismatch: wrong attrs got={exc.got} "
              f"expected={exc.expected}")
        return 1
    except FrameError as exc:
        print(f"FAIL version mismatch: {type(exc).__name__} instead of "
              f"FrameVersionMismatch")
        return 1
    print("FAIL version mismatch: foreign version decoded successfully")
    return 1


# -- golden fixtures ----------------------------------------------------------


def golden_specs():
    """The committed fixtures: (name, kind, verb, values, deadline,
    flags). Pure structural values only — goldens must decode with
    ``allow_pickle=False``."""
    results = [
        ServeResult(session_id="an-00", fingerprint="ab" * 32,
                    value=np.array([0.125, -0.5, 0.75]), source="fresh",
                    query_index=0, epsilon_spent=0.25, delta_spent=0.0),
        ServeResult(session_id="an-00", fingerprint="cd" * 32,
                    value=np.array([1.0, 0.0, -1.0]), source="cache",
                    query_index=1, epsilon_spent=0.0, delta_spent=0.0),
    ]
    zoo = {
        "ints": [0, -(2 ** 63), 2 ** 63 - 1, 2 ** 100],
        "floats": (0.0, -0.0, float("inf"), 2.2250738585072014e-308),
        "text": "wire proto☃col",
        "blob": b"\x00\x01\xfe\xff",
        "matrix": np.arange(6, dtype=np.int32).reshape(2, 3),
        "empty": {"list": [], "tuple": (), "dict": {},
                  "array": np.array([], dtype=np.float64)},
    }
    return [
        ("request_serve_batch", KIND_REQUEST, VERBS["serve_batch"],
         [{"session_id": "an-00", "use_cache": True,
           "idempotency_keys": ["k-0", "k-1"]}],
         2.5, frames.FLAG_IDEMPOTENT),
        ("reply_serve_results", KIND_REPLY_OK, VERBS["serve_batch"],
         [results], None, 0),
        ("value_zoo", KIND_REPLY_OK, VERBS["metrics"], [zoo], None, 0),
    ]


def golden_bytes(spec) -> bytes:
    _, kind, verb, values, deadline, flags = spec
    return encode_frame(kind, verb, values, deadline=deadline,
                        flags=flags)


#: Committed negative golden: a frame stamped ``VERSION + 1`` whose
#: entire body is 0xff garbage. The decoder must refuse it with
#: :class:`FrameVersionMismatch` — any payload-shaped error
#: (``FrameCorrupt``) would prove it touched the body before checking
#: the version byte.
FOREIGN_GOLDEN = "request_ping_foreign_version"


def foreign_version_bytes() -> bytes:
    data = bytearray(encode_frame(KIND_REQUEST, VERBS["ping"], []))
    data[2] = frames.VERSION + 1
    body = frames._HEADER.size
    data[body:] = b"\xff" * max(32, len(data) - body)
    return bytes(data)


def regen_goldens() -> int:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for spec in golden_specs():
        path = FIXTURE_DIR / f"{spec[0]}.bin"
        path.write_bytes(golden_bytes(spec))
        print(f"wrote {path.relative_to(REPO)} ({path.stat().st_size} "
              f"bytes)")
    path = FIXTURE_DIR / f"{FOREIGN_GOLDEN}.bin"
    path.write_bytes(foreign_version_bytes())
    print(f"wrote {path.relative_to(REPO)} ({path.stat().st_size} "
          f"bytes, version {frames.VERSION + 1})")
    return 0


def check_foreign_golden() -> int:
    path = FIXTURE_DIR / f"{FOREIGN_GOLDEN}.bin"
    if not path.exists():
        print(f"FAIL foreign golden: {path.relative_to(REPO)} missing "
              f"— run with --regen and commit it")
        return 1
    committed = path.read_bytes()
    if committed != foreign_version_bytes():
        print("FAIL foreign golden: fixture out of date — regenerate "
              "after a VERSION bump")
        return 1
    try:
        decode_frame(committed, allow_pickle=False)
    except FrameVersionMismatch as exc:
        if (exc.got == frames.VERSION + 1
                and exc.expected == frames.VERSION):
            print("foreign golden: VERSION+1 frame refused before the "
                  "garbage body was interpreted")
            return 0
        print(f"FAIL foreign golden: wrong attrs got={exc.got} "
              f"expected={exc.expected}")
        return 1
    except FrameError as exc:
        print(f"FAIL foreign golden: {type(exc).__name__} — the decoder "
              f"read the body before checking the version byte")
        return 1
    print("FAIL foreign golden: foreign-version frame decoded")
    return 1


def check_goldens() -> int:
    failures = 0
    for spec in golden_specs():
        name, kind, verb, values, deadline, _ = spec
        path = FIXTURE_DIR / f"{name}.bin"
        if not path.exists():
            print(f"FAIL golden {name}: {path.relative_to(REPO)} "
                  f"missing — run with --regen and commit it")
            failures += 1
            continue
        committed = path.read_bytes()
        if committed != golden_bytes(spec):
            print(f"FAIL golden {name}: encoder output changed — wire "
                  f"format drifted without a VERSION bump")
            failures += 1
            continue
        frame = decode_frame(committed, allow_pickle=False)
        ok = (frame.kind == kind and frame.verb == verb
              and frame.deadline == deadline
              and equal(list(frame.values), values))
        if not ok:
            print(f"FAIL golden {name}: decoded frame differs from "
                  f"expected objects")
            failures += 1
    print(f"goldens: {len(golden_specs())} fixtures byte-stable and "
          f"pickle-free" if not failures
          else f"goldens: {failures} failures")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--regen", action="store_true",
                        help="rewrite the golden fixtures and exit")
    options = parser.parse_args(argv)
    if options.regen:
        return regen_goldens()
    failures = (check_round_trips() + check_torn_frames()
                + check_bit_flips() + check_version_mismatch()
                + check_goldens() + check_foreign_golden())
    if failures:
        print(f"{failures} wire-protocol failure(s)", file=sys.stderr)
        return 1
    print("wire protocol OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
